"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments whose setuptools lacks PEP-660 editable-wheel support
(the legacy path uses `setup.py develop`, which needs this file).
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
