"""Tests for candidate-set construction and MRR (Eq. 15)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Corpus, Record
from repro.eval import make_queries, mean_reciprocal_rank, query_rank


def eval_corpus(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return Corpus.from_records(
        Record(
            record_id=i,
            user=f"u{i % 5}",
            timestamp=float(rng.uniform(0, 24)),
            location=(float(rng.uniform(0, 10)), float(rng.uniform(0, 10))),
            words=(f"w{i % 7}", f"w{(i + 1) % 7}"),
        )
        for i in range(n)
    )


class OracleModel:
    """Ranks the ground truth first by construction."""

    def __init__(self):
        self.truth = None

    def score_candidates(self, *, target, candidates, **_observed):
        return np.asarray(
            [1.0 if c == self.truth else 0.0 for c in candidates]
        )


class RandomModel:
    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def score_candidates(self, *, target, candidates, **_observed):
        return self.rng.random(len(candidates))


class TestMakeQueries:
    def test_candidate_count(self):
        queries = make_queries(eval_corpus(), "location", n_noise=10, seed=0)
        for q in queries:
            assert len(q.candidates) == 11

    def test_truth_index_points_at_record_value(self):
        corpus = eval_corpus()
        queries = make_queries(corpus, "time", n_noise=5, seed=0)
        timestamps = {r.timestamp for r in corpus}
        for q in queries:
            assert q.candidates[q.truth_index] in timestamps

    def test_observed_modalities_set_correctly(self):
        queries = make_queries(eval_corpus(), "text", n_noise=5, seed=0)
        for q in queries:
            assert q.words is None
            assert q.time is not None and q.location is not None

    def test_max_queries_subsamples(self):
        queries = make_queries(
            eval_corpus(), "location", n_noise=5, max_queries=7, seed=0
        )
        assert len(queries) == 7

    def test_seeded_reproducibility(self):
        a = make_queries(eval_corpus(), "text", n_noise=5, seed=3)
        b = make_queries(eval_corpus(), "text", n_noise=5, seed=3)
        for qa, qb in zip(a, b):
            assert qa.candidates == qb.candidates
            assert qa.truth_index == qb.truth_index

    def test_truth_index_varies(self):
        queries = make_queries(eval_corpus(100), "location", n_noise=10, seed=0)
        positions = {q.truth_index for q in queries}
        assert len(positions) > 3  # not always the same slot

    @pytest.mark.parametrize("target", ["text", "location", "time"])
    def test_wordless_records_ineligible_for_every_target(self, target):
        """A record with an empty bag can neither be ranked (text is the
        ground truth) nor observed (location/time use the bag as evidence),
        so it must be excluded from queries AND noise pools everywhere."""
        records = list(eval_corpus(30))
        wordless_times = {100.0 + i for i in range(12)}
        records += [
            Record(
                record_id=500 + i,
                user="mute",
                timestamp=100.0 + i,
                location=(50.0 + i, 50.0),
                words=(),
            )
            for i in range(12)
        ]
        corpus = Corpus.from_records(records)
        queries = make_queries(corpus, target, n_noise=10, seed=0)
        assert len(queries) == 30
        for q in queries:
            if target == "text":
                assert all(len(bag) > 0 for bag in q.candidates)
            elif target == "time":
                assert not wordless_times.intersection(q.candidates)
                assert q.words  # observed bag is never empty
            else:
                assert all(loc[0] < 50.0 for loc in q.candidates)
                assert q.words

    def test_too_small_corpus_raises(self):
        with pytest.raises(ValueError, match="too small"):
            make_queries(eval_corpus(5), "text", n_noise=10, seed=0)

    def test_bad_target_raises(self):
        with pytest.raises(ValueError, match="target"):
            make_queries(eval_corpus(), "altitude", n_noise=3, seed=0)


class TestMrr:
    def test_oracle_scores_one(self):
        corpus = eval_corpus()
        queries = make_queries(corpus, "time", n_noise=10, seed=0)
        model = OracleModel()
        total = 0.0
        for q in queries:
            model.truth = q.candidates[q.truth_index]
            total += 1.0 / query_rank(model, q)
        assert total / len(queries) == pytest.approx(1.0)

    def test_random_model_near_expected(self):
        """E[1/rank] over 11 uniformly ranked candidates = H_11 / 11."""
        corpus = eval_corpus(200)
        queries = make_queries(corpus, "location", n_noise=10, seed=1)
        mrr = mean_reciprocal_rank(RandomModel(seed=2), queries)
        expected = sum(1.0 / r for r in range(1, 12)) / 11
        assert mrr == pytest.approx(expected, abs=0.08)

    def test_empty_queries_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            mean_reciprocal_rank(RandomModel(), [])

    def test_mrr_bounds(self):
        corpus = eval_corpus(60)
        queries = make_queries(corpus, "text", n_noise=10, seed=0)
        mrr = mean_reciprocal_rank(RandomModel(seed=5), queries)
        assert 1.0 / 11 <= mrr <= 1.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_rank_in_range(self, seed):
        corpus = eval_corpus(30, seed=seed)
        queries = make_queries(corpus, "time", n_noise=6, seed=seed)
        model = RandomModel(seed)
        for q in queries[:5]:
            assert 1 <= query_rank(model, q) <= 7


class TestHitsAtK:
    def test_oracle_hits_at_one(self):
        from repro.eval import hits_at_k

        corpus = eval_corpus()
        queries = make_queries(corpus, "time", n_noise=10, seed=0)
        model = OracleModel()
        hits = []
        for q in queries:
            model.truth = q.candidates[q.truth_index]
            hits.append(query_rank(model, q) <= 1)
        assert all(hits)

    def test_random_hits_at_k_matches_k_over_n(self):
        from repro.eval import hits_at_k

        corpus = eval_corpus(200)
        queries = make_queries(corpus, "location", n_noise=10, seed=1)
        h3 = hits_at_k(RandomModel(seed=2), queries, k=3)
        assert h3 == pytest.approx(3 / 11, abs=0.09)

    def test_monotone_in_k(self):
        from repro.eval import hits_at_k

        corpus = eval_corpus(80)
        queries = make_queries(corpus, "text", n_noise=10, seed=0)
        model = RandomModel(seed=4)
        values = [hits_at_k(model, queries, k=k) for k in (1, 3, 11)]
        assert values[0] <= values[1] <= values[2] == 1.0

    def test_rejects_bad_k(self):
        from repro.eval import hits_at_k

        corpus = eval_corpus(40)
        queries = make_queries(corpus, "time", n_noise=5, seed=0)
        with pytest.raises(ValueError, match="k must be"):
            hits_at_k(RandomModel(), queries, k=0)

    def test_rejects_empty_queries(self):
        from repro.eval import hits_at_k

        with pytest.raises(ValueError, match="non-empty"):
            hits_at_k(RandomModel(), [], k=1)
