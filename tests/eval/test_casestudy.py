"""Tests for the case-study ranking machinery (Figs. 5/8, Table 3)."""

import pytest

from repro.eval import case_study, find_venue_record
from tests.eval.test_mrr import RandomModel, eval_corpus


class TestFindVenueRecord:
    def test_finds_venue_record(self, dataset):
        record = find_venue_record(dataset.test)
        assert any(w.startswith("venue_") for w in record.words)
        assert len(record.words) >= 2

    def test_missing_prefix_raises(self):
        with pytest.raises(ValueError, match="no record"):
            find_venue_record(eval_corpus(), prefix="venue_")


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def corpus(self):
        return eval_corpus(60)

    def test_rows_cover_all_candidates(self, corpus):
        record = corpus[0]
        result = case_study(
            {"A": RandomModel(seed=1), "B": RandomModel(seed=2)},
            record,
            "text",
            corpus,
            n_noise=10,
            seed=0,
        )
        assert len(result.rows) == 11
        truth_rows = [r for r in result.rows if r.is_truth]
        assert len(truth_rows) == 1

    def test_each_model_ranks_are_permutations(self, corpus):
        result = case_study(
            {"A": RandomModel(seed=1), "B": RandomModel(seed=2)},
            corpus[0],
            "time",
            corpus,
            n_noise=10,
            seed=0,
        )
        for name in ("A", "B"):
            ranks = sorted(row.ranks[name] for row in result.rows)
            assert ranks == list(range(1, 12))

    def test_rows_sorted_by_first_model(self, corpus):
        result = case_study(
            {"A": RandomModel(seed=1), "B": RandomModel(seed=2)},
            corpus[0],
            "location",
            corpus,
            n_noise=8,
            seed=0,
        )
        first_ranks = [row.ranks["A"] for row in result.rows]
        assert first_ranks == sorted(first_ranks)

    def test_rank_of_truth(self, corpus):
        result = case_study(
            {"A": RandomModel(seed=3)},
            corpus[0],
            "text",
            corpus,
            n_noise=10,
            seed=0,
        )
        rank = result.rank_of_truth("A")
        assert 1 <= rank <= 11

    def test_truth_value_matches_record(self, corpus):
        record = corpus[0]
        result = case_study(
            {"A": RandomModel()}, record, "time", corpus, n_noise=5, seed=0
        )
        truth_row = next(r for r in result.rows if r.is_truth)
        assert truth_row.candidate == record.timestamp
