"""Tests for the Fig.-12 scalability harness."""

import pytest

from repro.core import ActorConfig
from repro.eval import edges_scaling, strong_scaling, time_training, weak_scaling


@pytest.fixture(scope="module")
def fast_config():
    return ActorConfig(dim=8, epochs=1, batch_size=64, seed=0)


class TestTimeTraining:
    def test_returns_positive_seconds(self, built, fast_config):
        seconds = time_training(
            built, fast_config, batches_per_epoch=2, n_threads=1
        )
        assert seconds > 0.0

    def test_does_not_mutate_config(self, built, fast_config):
        time_training(built, fast_config, batches_per_epoch=2, n_threads=2)
        assert fast_config.batches_per_epoch is None
        assert fast_config.n_threads == 1


class TestSweeps:
    def test_edges_scaling_points(self, built, fast_config):
        points = edges_scaling(
            built, fast_config, base_batches=1, multipliers=(1, 2)
        )
        assert [p.multiplier for p in points] == [1, 2]
        assert points[1].samples == 2 * points[0].samples
        assert all(p.seconds > 0 for p in points)

    def test_strong_scaling_points(self, built, fast_config):
        points = strong_scaling(
            built, fast_config, base_batches=1, thread_counts=(1, 2)
        )
        assert [p.threads for p in points] == [1, 2]
        # same workload at every thread count
        assert points[0].samples == points[1].samples

    def test_weak_scaling_points(self, built, fast_config):
        points = weak_scaling(
            built, fast_config, base_batches=1, steps=(1, 2)
        )
        assert [(p.threads, p.multiplier) for p in points] == [(1, 1), (2, 2)]
        assert points[1].samples == 2 * points[0].samples
