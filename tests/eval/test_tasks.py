"""Tests for the multi-model evaluation harness."""

import numpy as np
import pytest

from repro.eval import build_task_queries, evaluate_model, evaluate_models
from tests.eval.test_mrr import RandomModel, eval_corpus


class NoTimeModel(RandomModel):
    supports_time = False


class TestBuildTaskQueries:
    def test_all_three_tasks(self):
        queries = build_task_queries(eval_corpus(), n_noise=5, seed=0)
        assert set(queries) == {"text", "location", "time"}

    def test_max_queries_respected(self):
        queries = build_task_queries(
            eval_corpus(100), n_noise=5, max_queries=9, seed=0
        )
        for task_queries in queries.values():
            assert len(task_queries) == 9


class TestEvaluateModel:
    def test_all_tasks_scored(self):
        queries = build_task_queries(eval_corpus(), n_noise=5, seed=0)
        result = evaluate_model(RandomModel(), queries)
        assert set(result) == {"text", "location", "time"}
        for value in result.values():
            assert 0.0 < value <= 1.0

    def test_unsupported_time_gives_none(self):
        queries = build_task_queries(eval_corpus(), n_noise=5, seed=0)
        result = evaluate_model(NoTimeModel(), queries)
        assert result["time"] is None
        assert result["text"] is not None


class TestEvaluateModels:
    def test_multiple_models_share_queries(self):
        corpus = eval_corpus(80)
        results = evaluate_models(
            {"a": RandomModel(seed=1), "b": RandomModel(seed=1)},
            corpus,
            n_noise=5,
            max_queries=20,
            seed=0,
        )
        # identical models on identical queries -> identical MRR
        assert results["a"] == results["b"]

    def test_result_structure(self):
        results = evaluate_models(
            {"only": RandomModel()}, eval_corpus(), n_noise=5, seed=0
        )
        assert set(results) == {"only"}
        assert set(results["only"]) == {"text", "location", "time"}


class TestReporting:
    def test_format_table_basic(self):
        from repro.eval import format_table

        text = format_table(
            ["A", "B"], [["x", 1.23456], ["y", None]], title="T"
        )
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "1.2346" in text
        assert "/" in text  # None rendered as the paper's '/' marker

    def test_format_mrr_table_layout(self):
        from repro.eval import format_mrr_table

        table = format_mrr_table(
            {"LGTA": {"text": 0.5, "location": 0.4, "time": None}}
        )
        assert "LGTA" in table
        assert "Text" in table and "Location" in table and "Time" in table
        assert "/" in table

    def test_format_table_empty_rows(self):
        from repro.eval import format_table

        text = format_table(["H1", "H2"], [])
        assert "H1" in text
