"""Tests for bootstrap CIs and the paired permutation test."""

import numpy as np
import pytest

from repro.eval.stats import (
    bootstrap_mrr_ci,
    paired_permutation_test,
    reciprocal_ranks,
)
from tests.eval.test_mrr import RandomModel, eval_corpus
from repro.eval import make_queries


class TestReciprocalRanks:
    def test_values_in_range(self):
        corpus = eval_corpus(60)
        queries = make_queries(corpus, "time", n_noise=10, seed=0)
        rr = reciprocal_ranks(RandomModel(seed=1), queries)
        assert rr.shape == (len(queries),)
        assert ((rr >= 1.0 / 11) & (rr <= 1.0)).all()

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            reciprocal_ranks(RandomModel(), [])


class TestBootstrapCI:
    def test_interval_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        rr = rng.uniform(1 / 11, 1.0, size=100)
        ci = bootstrap_mrr_ci(rr, seed=1)
        assert ci.lower <= ci.mrr <= ci.upper

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = bootstrap_mrr_ci(rng.uniform(0, 1, 30), seed=2)
        large = bootstrap_mrr_ci(rng.uniform(0, 1, 3000), seed=2)
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_constant_data_gives_degenerate_interval(self):
        ci = bootstrap_mrr_ci(np.full(50, 0.5), seed=0)
        assert ci.lower == pytest.approx(0.5)
        assert ci.upper == pytest.approx(0.5)

    def test_wider_confidence_is_wider_interval(self):
        rng = np.random.default_rng(3)
        rr = rng.uniform(0, 1, 200)
        ci90 = bootstrap_mrr_ci(rr, confidence=0.90, seed=4)
        ci99 = bootstrap_mrr_ci(rr, confidence=0.99, seed=4)
        assert (ci99.upper - ci99.lower) >= (ci90.upper - ci90.lower)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mrr_ci(np.empty(0))
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_mrr_ci(np.ones(5), confidence=1.5)


class TestPairedPermutationTest:
    def test_identical_models_not_significant(self):
        rng = np.random.default_rng(0)
        rr = rng.uniform(1 / 11, 1.0, size=150)
        result = paired_permutation_test(rr, rr.copy(), seed=1)
        assert result.difference == pytest.approx(0.0)
        assert result.p_value > 0.5

    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(1)
        rr_strong = np.clip(rng.normal(0.8, 0.1, 150), 0.0909, 1.0)
        rr_weak = np.clip(rng.normal(0.4, 0.1, 150), 0.0909, 1.0)
        result = paired_permutation_test(rr_strong, rr_weak, seed=2)
        assert result.difference > 0.3
        assert result.p_value < 0.01

    def test_p_value_never_zero(self):
        result = paired_permutation_test(
            np.ones(20), np.full(20, 0.1), seed=0
        )
        assert result.p_value > 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, 80)
        b = rng.uniform(0, 1, 80)
        ab = paired_permutation_test(a, b, seed=5)
        ba = paired_permutation_test(b, a, seed=5)
        assert ab.difference == pytest.approx(-ba.difference)
        assert ab.p_value == pytest.approx(ba.p_value, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_permutation_test(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            paired_permutation_test(np.empty(0), np.empty(0))

    def test_end_to_end_with_models(self):
        corpus = eval_corpus(100)
        queries = make_queries(corpus, "location", n_noise=10, seed=0)
        rr_a = reciprocal_ranks(RandomModel(seed=1), queries)
        rr_b = reciprocal_ranks(RandomModel(seed=2), queries)
        result = paired_permutation_test(rr_a, rr_b, seed=3)
        # Two random models: no significant difference expected.
        assert result.p_value > 0.01
