"""Tests for the embedding-quality diagnostics."""

import pytest

from repro.eval.coherence import (
    temporal_alignment,
    topic_coherence,
    venue_localization,
)


class TestTopicCoherence:
    def test_trained_model_has_positive_gap(self, tiny_actor, dataset):
        report = topic_coherence(tiny_actor, dataset.city)
        assert report.name == "topic_coherence"
        assert report.detail["topics"] >= 2
        assert report.detail["within"] >= report.detail["cross"] - 0.2

    def test_score_is_within_minus_cross(self, tiny_actor, dataset):
        report = topic_coherence(tiny_actor, dataset.city)
        assert report.score == pytest.approx(
            report.detail["within"] - report.detail["cross"]
        )


class TestVenueLocalization:
    def test_report_fields(self, tiny_actor, dataset):
        report = venue_localization(tiny_actor, dataset.city)
        assert 0.0 <= report.score <= 1.0
        assert report.detail["median_km"] >= 0.0
        assert report.detail["n_venues"] > 0

    def test_max_venues_cap(self, tiny_actor, dataset):
        report = venue_localization(tiny_actor, dataset.city, max_venues=5)
        assert report.detail["n_venues"] <= 5


class TestTemporalAlignment:
    def test_report_fields(self, tiny_actor, dataset):
        report = temporal_alignment(tiny_actor, dataset.city)
        assert 0.0 <= report.score <= 1.0
        assert 0.0 <= report.detail["median_hours"] <= 12.0
        assert report.detail["n_topics"] > 0

    def test_circular_gap_bounded_by_half_period(self, tiny_actor, dataset):
        report = temporal_alignment(tiny_actor, dataset.city, k=1)
        assert report.detail["median_hours"] <= 12.0


class TestErrorPaths:
    def test_topic_coherence_needs_vocab_overlap(self, tiny_actor):
        class EmptyCity:
            topics = []

        with pytest.raises(ValueError, match="at least two topics"):
            topic_coherence(tiny_actor, EmptyCity())

    def test_venue_localization_needs_tokens(self, tiny_actor):
        class NoVenueCity:
            venues = []

        with pytest.raises(ValueError, match="venue tokens"):
            venue_localization(tiny_actor, NoVenueCity())

    def test_temporal_alignment_needs_topics(self, tiny_actor):
        class NoTopicCity:
            topics = []

        with pytest.raises(ValueError, match="signature"):
            temporal_alignment(tiny_actor, NoTopicCity())
