"""Tests for the Actor facade (fit, ablations, persistence)."""

import numpy as np
import pytest

from repro.core import Actor, ActorConfig
from repro.data import generate_dataset


class TestFit:
    def test_fit_returns_self_and_sets_state(self, tiny_actor):
        assert tiny_actor.is_fitted
        assert tiny_actor.center.shape == (
            tiny_actor.built.activity.n_nodes,
            tiny_actor.config.dim,
        )
        assert tiny_actor.trainer is not None

    def test_user_embeddings_pretrained_when_mentions_exist(self, tiny_actor):
        # the utgeo2011 preset has mentions -> LINE pretraining ran
        assert tiny_actor.user_embeddings is not None
        assert tiny_actor.user_embeddings.shape[1] == tiny_actor.config.dim

    def test_no_pretraining_without_mentions(self):
        data = generate_dataset("tweet", n_records=600, seed=0)
        model = Actor(
            ActorConfig(dim=8, epochs=1, batches_per_epoch=2, seed=0)
        ).fit(data.train)
        assert model.user_embeddings is None

    def test_no_pretraining_when_inter_disabled(self):
        data = generate_dataset("utgeo2011", n_records=600, seed=0)
        model = Actor(
            ActorConfig(
                dim=8, epochs=1, batches_per_epoch=2, use_inter=False, seed=0
            )
        ).fit(data.train)
        assert model.user_embeddings is None

    def test_seeded_fit_reproducible(self):
        data = generate_dataset("utgeo2011", n_records=600, seed=1)
        config = ActorConfig(
            dim=8, epochs=1, batches_per_epoch=2, line_samples=2000, seed=4
        )
        a = Actor(config).fit(data.train)
        b = Actor(config).fit(data.train)
        np.testing.assert_array_equal(a.center, b.center)

    def test_default_config_used_when_none(self):
        model = Actor()
        assert model.config.dim == ActorConfig().dim

    def test_supports_time_and_name(self):
        assert Actor.supports_time
        assert Actor.name == "ACTOR"


class TestAblations:
    def test_wo_intra_trains(self):
        data = generate_dataset("utgeo2011", n_records=600, seed=2)
        model = Actor(
            ActorConfig(
                dim=8,
                epochs=1,
                batches_per_epoch=2,
                use_intra_bow=False,
                line_samples=2000,
                seed=0,
            )
        ).fit(data.train)
        assert model.is_fitted
        task_names = {t.name for t in model.trainer.tasks}
        assert not any(n.startswith("bow:") for n in task_names)


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_actor, tmp_path, dataset):
        path = tmp_path / "actor.pkl"
        tiny_actor.save(path)
        loaded = Actor.load(path)
        np.testing.assert_array_equal(loaded.center, tiny_actor.center)
        record = dataset.test[0]
        original = tiny_actor.score_candidates(
            target="text",
            candidates=[record.words],
            time=record.timestamp,
            location=record.location,
        )
        reloaded = loaded.score_candidates(
            target="text",
            candidates=[record.words],
            time=record.timestamp,
            location=record.location,
        )
        np.testing.assert_allclose(original, reloaded)

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            Actor().save(tmp_path / "x.pkl")

    def test_load_wrong_type_raises(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        with path.open("wb") as handle:
            pickle.dump({"not": "an actor"}, handle)
        with pytest.raises(TypeError, match="Actor"):
            Actor.load(path)
