"""Tests for cosine scoring and the GraphEmbeddingModel query surface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import cosine_similarities, rank_descending, top_k


class TestCosineSimilarities:
    def test_identical_vector_scores_one(self):
        query = np.asarray([1.0, 2.0])
        scores = cosine_similarities(query, np.asarray([[2.0, 4.0]]))
        assert scores[0] == pytest.approx(1.0)

    def test_orthogonal_scores_zero(self):
        scores = cosine_similarities(
            np.asarray([1.0, 0.0]), np.asarray([[0.0, 1.0]])
        )
        assert scores[0] == pytest.approx(0.0)

    def test_opposite_scores_minus_one(self):
        scores = cosine_similarities(
            np.asarray([1.0, 0.0]), np.asarray([[-3.0, 0.0]])
        )
        assert scores[0] == pytest.approx(-1.0)

    def test_zero_query_gives_zeros(self):
        scores = cosine_similarities(np.zeros(2), np.ones((3, 2)))
        np.testing.assert_array_equal(scores, 0.0)

    def test_zero_rows_give_zero(self):
        scores = cosine_similarities(
            np.asarray([1.0, 0.0]),
            np.asarray([[0.0, 0.0], [1.0, 0.0]]),
        )
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        query=arrays(np.float64, 4, elements=st.floats(-5, 5)),
        matrix=arrays(np.float64, (6, 4), elements=st.floats(-5, 5)),
    )
    def test_property_bounded(self, query, matrix):
        scores = cosine_similarities(query, matrix)
        assert (scores >= -1.0 - 1e-9).all()
        assert (scores <= 1.0 + 1e-9).all()


class TestRankDescending:
    def test_simple_order(self):
        ranks = rank_descending(np.asarray([0.1, 0.9, 0.5]))
        np.testing.assert_array_equal(ranks, [3, 1, 2])

    def test_ties_stable(self):
        ranks = rank_descending(np.asarray([0.5, 0.5, 0.1]))
        np.testing.assert_array_equal(ranks, [1, 2, 3])

    def test_single_element(self):
        np.testing.assert_array_equal(rank_descending(np.asarray([7.0])), [1])

    @settings(max_examples=30, deadline=None)
    @given(scores=arrays(np.float64, 8, elements=st.floats(-10, 10)))
    def test_property_ranks_are_a_permutation(self, scores):
        ranks = rank_descending(scores)
        assert sorted(ranks.tolist()) == list(range(1, 9))

    @settings(max_examples=30, deadline=None)
    @given(
        scores=arrays(
            np.float64, 6, elements=st.floats(-10, 10), unique=True
        )
    )
    def test_property_higher_score_better_rank(self, scores):
        ranks = rank_descending(scores)
        best = int(np.argmax(scores))
        assert ranks[best] == 1


class TestTopK:
    def test_matches_reference_on_clean_scores(self):
        scores = np.asarray([0.1, 0.9, 0.5, 0.9, 0.3])
        np.testing.assert_array_equal(
            top_k(scores, 3), np.argsort(-scores, kind="stable")[:3]
        )

    def test_nan_regression_issue_example(self):
        # Before the fix a NaN in the argpartition prefix made `threshold`
        # NaN, every filter went False, and this returned [] instead of k
        # indices.
        scores = np.asarray([np.nan, np.nan, 0.9, 0.1, 0.2, 0.3])
        result = top_k(scores, 5)
        assert len(result) == 5
        np.testing.assert_array_equal(result, [2, 5, 4, 3, 0])
        np.testing.assert_array_equal(
            result, np.argsort(-scores, kind="stable")[:5]
        )

    def test_nan_ranks_after_every_finite_score(self):
        scores = np.asarray([np.nan, -0.5, 0.7, np.nan, -np.inf])
        np.testing.assert_array_equal(top_k(scores, 4), [2, 1, 4, 0])

    def test_all_nan_still_returns_k_indices(self):
        scores = np.asarray([np.nan, np.nan, np.nan])
        np.testing.assert_array_equal(top_k(scores, 2), [0, 1])

    def test_k_zero_and_k_beyond_n(self):
        scores = np.asarray([0.2, np.nan, 0.4])
        assert top_k(scores, 0).shape == (0,)
        np.testing.assert_array_equal(top_k(scores, 10), [2, 0, 1])

    @settings(max_examples=60, deadline=None)
    @given(
        scores=arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(
                allow_nan=True, allow_infinity=True, width=64
            ),
        ),
        k=st.integers(1, 25),
    )
    def test_property_equals_stable_sort_prefix(self, scores, k):
        np.testing.assert_array_equal(
            top_k(scores, k), np.argsort(-scores, kind="stable")[:k]
        )


class TestQuerySurface:
    """Exercises the trained tiny ACTOR's GraphEmbeddingModel methods."""

    def test_unit_vector_time(self, tiny_actor):
        vec = tiny_actor.unit_vector("time", 21.0)
        assert vec is not None
        assert vec.shape == (tiny_actor.dim,)

    def test_unit_vector_location(self, tiny_actor, dataset):
        loc = dataset.test[0].location
        vec = tiny_actor.unit_vector("location", loc)
        assert vec is not None

    def test_unit_vector_unknown_word_is_none(self, tiny_actor):
        assert tiny_actor.unit_vector("word", "zzz_never_seen") is None

    def test_unit_vector_known_word(self, tiny_actor):
        word = tiny_actor.built.vocab.words[0]
        assert tiny_actor.unit_vector("word", word) is not None

    def test_unit_vector_user(self, tiny_actor, dataset):
        user = dataset.train[0].user
        assert tiny_actor.unit_vector("user", user) is not None

    def test_unit_vector_bad_modality(self, tiny_actor):
        with pytest.raises(ValueError, match="modality"):
            tiny_actor.unit_vector("altitude", 3)

    def test_words_vector_empty_is_zero(self, tiny_actor):
        vec = tiny_actor.words_vector(["zzz_never_seen"])
        np.testing.assert_array_equal(vec, 0.0)

    def test_words_vector_averages(self, tiny_actor):
        w1, w2 = tiny_actor.built.vocab.words[:2]
        mean = tiny_actor.words_vector([w1, w2])
        expected = (
            tiny_actor.unit_vector("word", w1)
            + tiny_actor.unit_vector("word", w2)
        ) / 2
        np.testing.assert_allclose(mean, expected)

    def test_query_vector_combines_modalities(self, tiny_actor, dataset):
        record = dataset.test[0]
        query = tiny_actor.query_vector(
            time=record.timestamp, words=record.words
        )
        assert query.shape == (tiny_actor.dim,)
        assert np.linalg.norm(query) > 0

    def test_query_vector_empty_is_zero(self, tiny_actor):
        np.testing.assert_array_equal(
            tiny_actor.query_vector(), np.zeros(tiny_actor.dim)
        )

    def test_candidate_vector_targets(self, tiny_actor, dataset):
        record = dataset.test[0]
        assert tiny_actor.candidate_vector("text", record.words).shape == (
            tiny_actor.dim,
        )
        assert tiny_actor.candidate_vector(
            "location", record.location
        ).shape == (tiny_actor.dim,)
        assert tiny_actor.candidate_vector(
            "time", record.timestamp
        ).shape == (tiny_actor.dim,)

    def test_candidate_vector_bad_target(self, tiny_actor):
        with pytest.raises(ValueError, match="target"):
            tiny_actor.candidate_vector("weather", None)

    def test_score_candidates_shape(self, tiny_actor, dataset):
        records = dataset.test.records[:5]
        scores = tiny_actor.score_candidates(
            target="location",
            candidates=[r.location for r in records],
            time=records[0].timestamp,
            words=records[0].words,
        )
        assert scores.shape == (5,)
        assert np.isfinite(scores).all()

    def test_modality_vectors(self, tiny_actor):
        keys, matrix = tiny_actor.modality_vectors("word")
        assert len(keys) == matrix.shape[0]
        assert matrix.shape[1] == tiny_actor.dim

    def test_neighbors_returns_sorted_topk(self, tiny_actor):
        word = tiny_actor.built.vocab.words[0]
        query = tiny_actor.unit_vector("word", word)
        result = tiny_actor.neighbors(query, "word", k=5)
        assert len(result) == 5
        sims = [s for _k, s in result]
        assert sims == sorted(sims, reverse=True)
        assert result[0][0] == word  # the word itself is its own neighbor
