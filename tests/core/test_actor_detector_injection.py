"""Tests for injecting an alternative discretization into Actor.fit."""

import numpy as np
import pytest

from repro.core import Actor, ActorConfig
from repro.hotspots import GridDetector


@pytest.fixture(scope="module")
def grid_actor(dataset):
    config = ActorConfig(
        dim=16, epochs=2, batches_per_epoch=4, line_samples=5_000, seed=9
    )
    detector = GridDetector(cell_km=1.0, bucket_hours=2.0, min_support=3)
    return Actor(config).fit(dataset.train, detector=detector)


class TestDetectorInjection:
    def test_grid_detector_used(self, grid_actor):
        assert isinstance(grid_actor.built.detector, GridDetector)

    def test_model_trains_and_queries(self, grid_actor, dataset):
        record = dataset.test[0]
        scores = grid_actor.score_candidates(
            target="location",
            candidates=[r.location for r in dataset.test.records[:5]],
            time=record.timestamp,
            words=record.words,
        )
        assert scores.shape == (5,)
        assert np.isfinite(scores).all()

    def test_unit_counts_come_from_grid(self, grid_actor):
        summary = grid_actor.built.activity.summary()
        assert summary["n_spatial"] == grid_actor.built.detector.n_spatial
        assert summary["n_temporal"] == grid_actor.built.detector.n_temporal

    def test_default_detector_when_not_injected(self, tiny_actor):
        from repro.hotspots import HotspotDetector

        assert isinstance(tiny_actor.built.detector, HotspotDetector)
