"""Property tests: every mutation path bumps ``store.version``.

Satellite of the storage refactor — the query engine's modality caches
key off one monotonic counter, so the invariant that matters is "any way
the embeddings can change advances the counter and the caches rebuild".
Covered paths: wholesale refit, ``partial_fit`` growth, in-place SGD
bursts, and buffer-evicting streaming updates.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Actor, ActorConfig, OnlineActor
from repro.eval.mrr import make_queries, query_rank
from repro.storage import make_store, normalize_rows

mutation_ops = st.lists(
    st.sampled_from(["put_row", "set_center", "set_context", "grow", "bump"]),
    min_size=1,
    max_size=8,
)


class TestStoreVersionProperty:
    @settings(max_examples=25, deadline=None)
    @given(ops=mutation_ops, backend=st.sampled_from(("dense", "shared")))
    def test_every_mutation_bumps_and_normalized_tracks(self, ops, backend):
        """Arbitrary op sequences: version +1 per op, normalized fresh."""
        rng = np.random.default_rng(7)
        store = make_store(
            backend, rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        )
        try:
            for op in ops:
                before = store.version
                if op == "put_row":
                    store.put_row(0, rng.normal(size=3))
                elif op == "set_center":
                    store.set_matrix(
                        "center", rng.normal(size=store.center.shape)
                    )
                elif op == "set_context":
                    store.set_matrix(
                        "context", rng.normal(size=store.context.shape)
                    )
                elif op == "grow":
                    store.grow(
                        rng.normal(size=(1, 3)), rng.normal(size=(1, 3))
                    )
                else:
                    store.bump()
                assert store.version == before + 1
                np.testing.assert_array_equal(
                    store.normalized("center"), normalize_rows(store.center)
                )
                np.testing.assert_array_equal(
                    store.normalized("context"), normalize_rows(store.context)
                )
        finally:
            store.close()


@pytest.fixture(scope="module")
def refit_actor(dataset, store_backend):
    """A cheap, privately-owned actor (tests here mutate it)."""
    config = ActorConfig(
        dim=8,
        epochs=1,
        line_samples=1_000,
        batches_per_epoch=2,
        seed=9,
        store_backend=store_backend,
    )
    return Actor(config).fit(dataset.train)


def _assert_caches_fresh(model, stale):
    """Every modality cache rebuilt and consistent with the live store."""
    for modality in ("time", "location", "word"):
        cache = model.modality_cache(modality)
        assert cache is not stale[modality]
        _keys, rows = model.modality_rows(modality)
        np.testing.assert_array_equal(cache.matrix, model.store.view(rows))
        np.testing.assert_array_equal(
            cache.normalized, model.store.normalized("center")[rows]
        )


def _stale_caches(model):
    return {m: model.modality_cache(m) for m in ("time", "location", "word")}


class TestModelMutationPaths:
    def test_refit_reuses_store_and_invalidates(self, refit_actor, dataset):
        store = refit_actor.store
        stale = _stale_caches(refit_actor)
        version = store.version
        refit_actor.fit(dataset.train)
        assert refit_actor.store is store  # refit keeps the same store
        assert store.version > version
        _assert_caches_fresh(refit_actor, stale)

    def test_inplace_burst_then_bump_invalidates(self, refit_actor):
        stale = _stale_caches(refit_actor)
        version = refit_actor.store.version
        refit_actor.center[:] += 0.01  # SGD-style scatter write
        refit_actor.invalidate_query_cache()
        assert refit_actor.store.version == version + 1
        _assert_caches_fresh(refit_actor, stale)

    def test_partial_fit_growth_invalidates(
        self, refit_actor, dataset, store_backend
    ):
        online = OnlineActor(refit_actor, seed=0, store_backend=store_backend)
        stale = _stale_caches(online)
        version = online.store.version
        rows_before = online.store.n_rows
        novel = [
            replace(
                r,
                words=tuple(f"fresh_{i}_{w}" for w in r.words)
                or (f"fresh_{i}",),
            )
            for i, r in enumerate(dataset.test.records[:30])
        ]
        online.partial_fit(novel)
        assert online.store.version > version
        assert online.store.n_rows > rows_before  # novel words grew rows
        _assert_caches_fresh(online, stale)

    def test_eviction_churn_stays_fresh(self, refit_actor, dataset, store_backend):
        """A buffer small enough to evict every batch still serves fresh ranks."""
        online = OnlineActor(
            refit_actor,
            seed=1,
            buffer_size=64,
            steps_per_batch=5,
            store_backend=store_backend,
        )
        queries = make_queries(
            dataset.test, "location", n_noise=6, max_queries=10, seed=2
        )
        engine = online.query_engine()
        for start in (0, 25, 50):
            stale = _stale_caches(online)
            version = online.store.version
            online.partial_fit(dataset.test.records[start : start + 25])
            assert online.store.version > version
            _assert_caches_fresh(online, stale)
            batched = engine.rank_batch(queries)
            assert batched.tolist() == [query_rank(online, q) for q in queries]
        assert online.buffer.evictions > 0
