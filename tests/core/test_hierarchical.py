"""Tests for hierarchical initialization (Algorithm 1, lines 3-4)."""

import numpy as np
import pytest

from repro.core.hierarchical import initialize_from_users, random_init
from repro.data import Corpus, Record
from repro.graphs import GraphBuilder, NodeType
from repro.hotspots import HotspotDetector


@pytest.fixture(scope="module")
def built_with_mentions():
    corpus = Corpus(
        records=[
            Record(
                record_id=0,
                user="alice",
                timestamp=9.0,
                location=(0.0, 0.0),
                words=("coffee",),
                mentions=("bob",),
            ),
            Record(
                record_id=1,
                user="bob",
                timestamp=21.0,
                location=(10.0, 10.0),
                words=("beer", "coffee"),
                mentions=("alice",),
            ),
            Record(
                record_id=2,
                user="loner",
                timestamp=12.0,
                location=(5.0, 5.0),
                words=("lunch",),
            ),
        ]
        * 3
    )
    builder = GraphBuilder(
        detector=HotspotDetector(
            spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
        ),
        link_mentions=False,
    )
    return builder.build(corpus)


class TestRandomInit:
    def test_shapes_and_scale(self):
        rng = np.random.default_rng(0)
        center, context = random_init(10, 8, rng)
        assert center.shape == (10, 8)
        assert context.shape == (10, 8)
        assert np.abs(center).max() <= 0.5 / 8
        assert not np.array_equal(center, context)


class TestInitializeFromUsers:
    def test_none_user_vectors_gives_random(self, built_with_mentions):
        center, context = initialize_from_users(
            built_with_mentions.activity,
            built_with_mentions.interaction,
            None,
            8,
            seed=0,
        )
        assert center.shape[0] == built_with_mentions.activity.n_nodes
        assert np.abs(center).max() <= 0.5 / 8

    def test_dim_mismatch_raises(self, built_with_mentions):
        user_vectors = np.zeros((built_with_mentions.interaction.n_users, 4))
        with pytest.raises(ValueError, match="dim"):
            initialize_from_users(
                built_with_mentions.activity,
                built_with_mentions.interaction,
                user_vectors,
                8,
                seed=0,
            )

    def test_user_nodes_seeded_from_their_vectors(self, built_with_mentions):
        built = built_with_mentions
        interaction = built.interaction
        user_vectors = np.arange(
            interaction.n_users * 8, dtype=float
        ).reshape(interaction.n_users, 8)
        center, _ = initialize_from_users(
            built.activity, interaction, user_vectors, 8, seed=0, noise=1e-9
        )
        alice_node = built.activity.index_of(NodeType.USER, "alice")
        alice_vec = user_vectors[interaction.index_of("alice")]
        np.testing.assert_allclose(center[alice_node], alice_vec, atol=1e-6)

    def test_units_copy_best_connected_user(self, built_with_mentions):
        """Each unit copies the vector of its max-weight user connection."""
        built = built_with_mentions
        interaction = built.interaction
        user_vectors = np.zeros((interaction.n_users, 8))
        user_vectors[interaction.index_of("alice")] = 10.0
        user_vectors[interaction.index_of("bob")] = -10.0
        center, _ = initialize_from_users(
            built.activity, interaction, user_vectors, 8, seed=0, noise=1e-9
        )
        # 'beer' only ever co-occurs with bob.
        beer = built.activity.index_of(NodeType.WORD, "beer")
        np.testing.assert_allclose(center[beer], -10.0, atol=1e-3)

    def test_isolated_user_keeps_random_init(self, built_with_mentions):
        """'loner' never interacted: LINE never trained a vector for them."""
        built = built_with_mentions
        interaction = built.interaction
        user_vectors = np.full((interaction.n_users, 8), 99.0)
        center, _ = initialize_from_users(
            built.activity, interaction, user_vectors, 8, seed=0
        )
        loner_node = built.activity.index_of(NodeType.USER, "loner")
        assert np.abs(center[loner_node]).max() < 1.0  # not the 99 vector

    def test_units_of_isolated_user_keep_random_init(self, built_with_mentions):
        built = built_with_mentions
        interaction = built.interaction
        user_vectors = np.full((interaction.n_users, 8), 99.0)
        center, _ = initialize_from_users(
            built.activity, interaction, user_vectors, 8, seed=0
        )
        lunch = built.activity.index_of(NodeType.WORD, "lunch")
        assert np.abs(center[lunch]).max() < 1.0

    def test_noise_jitters_copies(self, built_with_mentions):
        built = built_with_mentions
        interaction = built.interaction
        user_vectors = np.ones((interaction.n_users, 8))
        center, context = initialize_from_users(
            built.activity, interaction, user_vectors, 8, seed=0, noise=0.1
        )
        alice_node = built.activity.index_of(NodeType.USER, "alice")
        assert not np.array_equal(center[alice_node], context[alice_node])

    def test_seeded_reproducibility(self, built_with_mentions):
        built = built_with_mentions
        user_vectors = np.ones((built.interaction.n_users, 8))
        a = initialize_from_users(
            built.activity, built.interaction, user_vectors, 8, seed=3
        )
        b = initialize_from_users(
            built.activity, built.interaction, user_vectors, 8, seed=3
        )
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
