"""Tests for ActorConfig validation."""

import pytest

from repro.core import ActorConfig


class TestActorConfig:
    def test_defaults_valid(self):
        config = ActorConfig()
        assert config.dim > 0
        assert config.use_inter and config.use_intra_bow

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dim", 0),
            ("lr", 0.0),
            ("negatives", 0),
            ("batch_size", 0),
            ("epochs", 0),
            ("batches_per_epoch", 0),
            ("n_threads", 0),
            ("spatial_bandwidth", 0.0),
            ("temporal_bandwidth", -1.0),
            ("init_noise", -0.1),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            ActorConfig(**{field: value})

    def test_ablation_flags(self):
        wo_inter = ActorConfig(use_inter=False)
        assert not wo_inter.use_inter
        wo_intra = ActorConfig(use_intra_bow=False)
        assert not wo_intra.use_intra_bow

    def test_batches_per_epoch_none_allowed(self):
        assert ActorConfig(batches_per_epoch=None).batches_per_epoch is None
