"""Tests for the model-quality drift watchdog.

The behavioral tests stream real records through a real
:class:`OnlineActor`: the stationary tests guard against false positives
(a healthy deployment must not page anyone), the shift tests inject an
actual distribution change — every record relocated to one corner plus a
runaway learning rate — and assert the PSI, probe-MRR and norm alarms
all trip through the genuine signal path.
"""

import dataclasses
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core import Actor, ActorConfig, OnlineActor
from repro.core.drift import (
    DriftWatchdog,
    EwmaZScore,
    make_probe_queries,
    population_stability_index,
)
from repro.data import generate_dataset
from repro.utils.logging import StructuredLogger
from repro.utils.telemetry_server import TelemetryServer


class TestEwmaZScore:
    def test_warmup_returns_zero(self):
        detector = EwmaZScore(alpha=0.3, warmup=5)
        values = [1.0, 2.0, 1.5, 2.5, 1.0]
        assert [detector.update(v) for v in values] == [0.0] * 5

    def test_jump_after_noisy_history_scores_high(self):
        rng = np.random.default_rng(0)
        detector = EwmaZScore(alpha=0.2, warmup=10)
        for _ in range(50):
            detector.update(10.0 + rng.normal(0, 0.5))
        assert abs(detector.update(10.0)) < 3.0
        assert detector.update(30.0) > 10.0

    def test_jump_after_constant_history_is_capped_not_nan(self):
        detector = EwmaZScore(alpha=0.3, warmup=2)
        for _ in range(5):
            detector.update(1.0)
        assert detector.update(10.0) == 99.0
        detector2 = EwmaZScore(alpha=0.3, warmup=2)
        for _ in range(5):
            detector2.update(1.0)
        assert detector2.update(-10.0) == -99.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            EwmaZScore(alpha=0.0)
        with pytest.raises(ValueError, match="warmup"):
            EwmaZScore(warmup=0)


class TestPSI:
    def test_identical_distributions_score_zero(self):
        counts = np.array([40.0, 30.0, 20.0, 10.0])
        assert population_stability_index(counts, counts) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_scale_invariant(self):
        p = np.array([40.0, 30.0, 20.0, 10.0])
        assert population_stability_index(p, p * 7) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_disjoint_mass_scores_large(self):
        p = np.array([100.0, 0.0, 0.0])
        q = np.array([0.0, 0.0, 100.0])
        assert population_stability_index(p, q) > 5.0

    def test_moderate_shift_in_conventional_band(self):
        p = np.array([50.0, 30.0, 20.0])
        q = np.array([40.0, 35.0, 25.0])
        psi = population_stability_index(p, q)
        assert 0.0 < psi < 0.25

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            population_stability_index(np.ones(3), np.ones(4))


@pytest.fixture(scope="module")
def warm():
    """A trained base actor plus held-out and fresh stationary streams."""
    data = generate_dataset("utgeo2011", n_records=1200, seed=21)
    actor = Actor(
        ActorConfig(
            dim=16, epochs=4, batches_per_epoch=6, line_samples=5_000, seed=2
        )
    ).fit(data.train)
    stream = list(
        generate_dataset("utgeo2011", n_records=1600, seed=77).corpus.records
    )
    return actor, data.test, stream


def _watchdog(online, probe_corpus, **overrides):
    """An OnlineActor watchdog with test-sized windows."""
    params = dict(
        probe_every=3,
        reference_batches=3,
        window_batches=3,
        psi_min_samples=200,
    )
    params.update(overrides)
    return online.enable_drift_watchdog(probe_corpus, **params)


class TestStationaryGuard:
    def test_stationary_stream_raises_no_alerts(self, warm):
        actor, probe_corpus, stream = warm
        online = OnlineActor(actor, online_lr=0.02, steps_per_batch=20, seed=3)
        watchdog = _watchdog(online, probe_corpus)
        for start in range(0, 1200, 100):
            online.partial_fit(stream[start : start + 100])
        assert list(watchdog.alerts) == []
        assert not watchdog.alarming
        assert watchdog.status()["status"] == "ok"
        # The signals were actually evaluated, not skipped.
        assert watchdog.spatial_psi is not None
        assert watchdog.spatial_psi < 0.25
        assert watchdog.probe_mrr is not None
        assert watchdog.probe_baseline is not None
        assert online.metrics.gauge("drift.alarm").value == 0.0

    def test_gauges_and_overhead_timer_are_populated(self, warm):
        actor, probe_corpus, stream = warm
        online = OnlineActor(actor, online_lr=0.02, steps_per_batch=20, seed=3)
        _watchdog(online, probe_corpus)
        for start in range(0, 600, 100):
            online.partial_fit(stream[start : start + 100])
        gauges = online.metrics.gauges()
        for name in (
            "drift.spatial_psi",
            "drift.probe_mrr",
            "drift.probe_mrr_baseline",
            "drift.norm_mean.time",
            "drift.norm_mean.location",
            "drift.norm_mean.word",
            "drift.norm_z.word",
            "drift.eviction_z",
            "drift.alarm",
        ):
            assert name in gauges, name
        assert online.metrics.timer("drift.observe").count == 6
        assert online.metrics.timer("drift.probe").count == 2


class TestInjectedShift:
    def test_shift_trips_psi_probe_and_norm_alarms(self, warm):
        actor, probe_corpus, stream = warm
        online = OnlineActor(actor, online_lr=0.02, steps_per_batch=20, seed=3)
        watchdog = _watchdog(
            online, probe_corpus, probe_every=2, norm_warmup=4
        )
        for start in range(0, 600, 100):
            online.partial_fit(stream[start : start + 100])
        assert list(watchdog.alerts) == []  # healthy before the shift

        # The injected shift: all activity collapses to one corner and
        # the online learning rate runs away, destroying ranking quality.
        online.online_lr = 1.0
        online.steps_per_batch = 400
        shifted = [
            dataclasses.replace(r, location=(0.25, 0.25))
            for r in stream[600:1400]
        ]
        for start in range(0, len(shifted), 100):
            online.partial_fit(shifted[start : start + 100])

        kinds = {alert["kind"] for alert in watchdog.alerts}
        assert "spatial_psi" in kinds
        assert "probe_mrr" in kinds
        assert any(kind.startswith("norm:") for kind in kinds)
        assert watchdog.spatial_psi > watchdog.psi_threshold
        assert watchdog.probe_mrr < watchdog.probe_baseline * (
            1 - watchdog.mrr_drop
        )
        assert watchdog.alarming
        assert watchdog.status()["status"] == "alerting"
        assert online.metrics.gauge("drift.alarm").value == 1.0
        assert online.metrics.counter("drift.alerts").value == len(
            watchdog.alerts
        )

    def test_alerts_are_edge_triggered_and_logged(self, warm):
        actor, probe_corpus, stream = warm
        online = OnlineActor(actor, online_lr=0.02, steps_per_batch=20, seed=3)
        logger = StructuredLogger(rate_limit_seconds=0.0)
        online.logger = logger
        watchdog = _watchdog(online, probe_corpus)
        for start in range(0, 600, 100):
            online.partial_fit(stream[start : start + 100])
        shifted = [
            dataclasses.replace(r, location=(0.25, 0.25))
            for r in stream[600:1400]
        ]
        for start in range(0, len(shifted), 100):
            online.partial_fit(shifted[start : start + 100])
        psi_alerts = [
            a for a in watchdog.alerts if a["kind"] == "spatial_psi"
        ]
        # The PSI stays above threshold for many consecutive batches but
        # the alarm fires once per excursion, not once per batch.
        assert len(psi_alerts) == 1
        events = [r["event"] for r in logger.recent]
        assert "drift.alert.spatial_psi" in events

    def test_eviction_spike_trips_anomaly_alarm(self, warm):
        actor, _probe, stream = warm
        online = OnlineActor(
            actor,
            online_lr=0.02,
            steps_per_batch=5,
            seed=3,
            buffer_size=3_000,
        )
        watchdog = online.enable_drift_watchdog(
            eviction_warmup=3, eviction_z_threshold=5.0
        )
        # Steady small batches establish the churn baseline; one burst
        # ten times the size spikes the eviction rate.
        for start in range(0, 1000, 50):
            online.partial_fit(stream[start : start + 50])
        online.partial_fit(stream[1000:1500])
        kinds = {alert["kind"] for alert in watchdog.alerts}
        assert "eviction_rate" in kinds


class TestWatchdogPlumbing:
    def test_parameter_validation(self, warm):
        actor, _probe, _stream = warm
        online = OnlineActor(actor, seed=0)
        with pytest.raises(ValueError, match="mrr_drop"):
            DriftWatchdog(online, mrr_drop=1.5)
        with pytest.raises(ValueError, match="psi_buckets"):
            DriftWatchdog(online, psi_buckets=1)
        with pytest.raises(ValueError, match="probe_every"):
            DriftWatchdog(online, probe_every=0)

    def test_detach(self, warm):
        actor, _probe, stream = warm
        online = OnlineActor(actor, seed=0)
        watchdog = online.enable_drift_watchdog()
        online.partial_fit(stream[:50])
        assert watchdog.n_batches == 1
        online.attach_drift_watchdog(None)
        online.partial_fit(stream[50:100])
        assert watchdog.n_batches == 1

    def test_make_probe_queries_from_corpus_and_records(self, warm):
        _actor, probe_corpus, stream = warm
        from_corpus = make_probe_queries(probe_corpus, max_queries=8, seed=1)
        from_records = make_probe_queries(stream[:200], max_queries=8, seed=1)
        assert 0 < len(from_corpus) <= 8
        assert 0 < len(from_records) <= 8

    def test_alert_retention_is_bounded(self, warm):
        actor, _probe, _stream = warm
        online = OnlineActor(actor, seed=0)
        watchdog = DriftWatchdog(online, max_alerts=2)
        for i in range(5):
            watchdog._transition(
                f"kind{i}", True, value=1.0, threshold=0.5, message="m"
            )
        assert len(watchdog.alerts) == 2
        assert watchdog.alerts[0]["kind"] == "kind3"

    def test_status_payload_is_json_safe(self, warm):
        actor, probe_corpus, stream = warm
        online = OnlineActor(actor, online_lr=0.02, steps_per_batch=10, seed=3)
        _watchdog(online, probe_corpus)
        for start in range(0, 400, 100):
            online.partial_fit(stream[start : start + 100])
        payload = online.drift.status()
        json.dumps(payload)  # must not raise
        assert payload["drift"]["batches"] == 4


class TestLiveScrapeDuringStreaming:
    def test_metrics_scrapes_race_partial_fit(self, warm):
        """/metrics served concurrently with an active partial_fit loop."""
        actor, probe_corpus, stream = warm
        online = OnlineActor(actor, online_lr=0.02, steps_per_batch=30, seed=3)
        _watchdog(online, probe_corpus)
        errors: list[Exception] = []
        done = threading.Event()

        def scrape(url):
            # Generous timeouts + a breather between scrapes: the point
            # is that responses stay well-formed during partial_fit, not
            # that the box can absorb a tight-loop load test.
            while not done.is_set():
                try:
                    with urllib.request.urlopen(
                        url + "/metrics", timeout=30
                    ) as response:
                        assert response.status == 200
                        body = response.read().decode("utf-8")
                        assert body.endswith("\n")
                    with urllib.request.urlopen(
                        url + "/healthz", timeout=30
                    ) as response:
                        json.loads(response.read())
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return
                done.wait(0.02)

        with TelemetryServer(online.metrics) as server:
            server.add_status_provider(online.drift.status)
            scrapers = [
                threading.Thread(target=scrape, args=(server.url,))
                for _ in range(3)
            ]
            for thread in scrapers:
                thread.start()
            for start in range(0, 1200, 60):
                online.partial_fit(stream[start : start + 60])
                server.heartbeat()
            done.set()
            for thread in scrapers:
                thread.join(timeout=10)
        assert errors == []
        assert online.drift.n_batches == 20
