"""Tests for the ACTOR training loop and its task construction."""

import numpy as np
import pytest

from repro.core import ActorConfig
from repro.core.hierarchical import random_init
from repro.core.trainer import ActorTrainer
from repro.graphs import GraphBuilder
from repro.hotspots import HotspotDetector


@pytest.fixture(scope="module")
def small_built(corpus):
    return GraphBuilder(
        detector=HotspotDetector(min_support=2),
    ).build(corpus)


def make_trainer(built, config):
    rng = np.random.default_rng(config.seed)
    center, context = random_init(built.activity.n_nodes, config.dim, rng)
    return ActorTrainer(built, config, center, context)


class TestTaskConstruction:
    def test_complete_model_tasks(self, small_built):
        trainer = make_trainer(small_built, ActorConfig(dim=8, epochs=1))
        names = {t.name for t in trainer.tasks}
        # inter tasks
        assert {"plain:UT", "plain:UW", "plain:UL"} <= names
        # intra with bag-of-words structure
        assert "plain:TL" in names
        assert "bow:LW" in names and "bow:WT" in names and "bow:WW" in names

    def test_wo_inter_drops_user_tasks(self, small_built):
        trainer = make_trainer(
            small_built, ActorConfig(dim=8, epochs=1, use_inter=False)
        )
        names = {t.name for t in trainer.tasks}
        assert not any(n.startswith("plain:U") for n in names)

    def test_wo_intra_uses_plain_word_tasks(self, small_built):
        trainer = make_trainer(
            small_built, ActorConfig(dim=8, epochs=1, use_intra_bow=False)
        )
        names = {t.name for t in trainer.tasks}
        assert "plain:LW" in names and "plain:WT" in names and "plain:WW" in names
        assert not any(n.startswith("bow:") for n in names)

    def test_shape_mismatch_rejected(self, small_built):
        config = ActorConfig(dim=8, epochs=1)
        rng = np.random.default_rng(0)
        center, context = random_init(small_built.activity.n_nodes, 8, rng)
        with pytest.raises(ValueError, match="equal shapes"):
            ActorTrainer(small_built, config, center, context[:, :4])
        center_bad, _ = random_init(3, 8, rng)
        with pytest.raises(ValueError, match="graph nodes"):
            ActorTrainer(small_built, config, center_bad, center_bad.copy())


class TestTraining:
    def test_loss_decreases(self, small_built):
        config = ActorConfig(dim=16, epochs=8, batches_per_epoch=8, seed=0)
        trainer = make_trainer(small_built, config).train()
        assert len(trainer.loss_history) == 8
        assert trainer.loss_history[-1] < trainer.loss_history[0]

    def test_embeddings_stay_finite(self, small_built):
        config = ActorConfig(
            dim=16, epochs=3, batches_per_epoch=4, lr=0.1, seed=0
        )
        trainer = make_trainer(small_built, config).train()
        assert np.isfinite(trainer.center).all()
        assert np.isfinite(trainer.context).all()

    def test_training_moves_embeddings(self, small_built):
        config = ActorConfig(dim=8, epochs=1, batches_per_epoch=2, seed=0)
        trainer = make_trainer(small_built, config)
        before = trainer.center.copy()
        trainer.train()
        assert not np.array_equal(before, trainer.center)

    def test_seeded_single_thread_reproducible(self, small_built):
        config = ActorConfig(dim=8, epochs=2, batches_per_epoch=3, seed=5)
        a = make_trainer(small_built, config).train()
        b = make_trainer(small_built, config).train()
        np.testing.assert_array_equal(a.center, b.center)

    def test_multithreaded_training_runs(self, small_built):
        config = ActorConfig(
            dim=8, epochs=2, batches_per_epoch=4, n_threads=2, seed=0
        )
        trainer = make_trainer(small_built, config).train()
        assert np.isfinite(trainer.center).all()
        assert len(trainer.loss_history) == 2

    def test_batches_per_epoch_default_scales_with_edges(self, small_built):
        trainer = make_trainer(small_built, ActorConfig(dim=8, epochs=1))
        batches = trainer.batches_per_epoch()
        expected = small_built.activity.n_edges / (
            256 * len(trainer.tasks)
        )
        assert batches == max(1, int(np.ceil(expected)))

    def test_batches_per_epoch_override(self, small_built):
        trainer = make_trainer(
            small_built, ActorConfig(dim=8, epochs=1, batches_per_epoch=7)
        )
        assert trainer.batches_per_epoch() == 7
