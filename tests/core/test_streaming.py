"""Tests for the online/streaming ACTOR extension."""

import numpy as np
import pytest

from repro.core import Actor, ActorConfig
from repro.core.streaming import OnlineActor, RecencyBuffer
from repro.data import Record, generate_dataset


class TestRecencyBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecencyBuffer(half_life=0)
        with pytest.raises(ValueError):
            RecencyBuffer(max_size=0)
        buffer = RecencyBuffer()
        with pytest.raises(ValueError, match="weight"):
            buffer.add_edge(0, 1, weight=0.0)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            RecencyBuffer().sample(4, np.random.default_rng(0))

    def test_decay_halves_at_half_life(self):
        buffer = RecencyBuffer(half_life=5.0)
        buffer.add_edge(0, 1, weight=2.0)
        for _ in range(5):
            buffer.tick()
        assert buffer.decayed_weights()[0] == pytest.approx(1.0)

    def test_recent_edges_dominate_sampling(self):
        buffer = RecencyBuffer(half_life=1.0)
        buffer.add_edge(0, 1)  # old edge
        for _ in range(10):
            buffer.tick()
        buffer.add_edge(2, 3)  # fresh edge
        src, dst = buffer.sample(2000, np.random.default_rng(0))
        fresh = np.mean([(s, d) in ((2, 3), (3, 2)) for s, d in zip(src, dst)])
        assert fresh > 0.95

    def test_sampling_respects_weight(self):
        buffer = RecencyBuffer(half_life=100.0)
        buffer.add_edge(0, 1, weight=3.0)
        buffer.add_edge(2, 3, weight=1.0)
        src, dst = buffer.sample(20_000, np.random.default_rng(1))
        heavy = np.mean([(s, d) in ((0, 1), (1, 0)) for s, d in zip(src, dst)])
        assert heavy == pytest.approx(0.75, abs=0.02)

    def test_eviction_at_capacity(self):
        buffer = RecencyBuffer(max_size=3)
        for i in range(5):
            buffer.add_edge(i, i + 10)
        assert len(buffer) == 3
        src, _ = buffer.sample(100, np.random.default_rng(0))
        assert set(np.unique(src)) <= {2, 3, 4, 12, 13, 14}

    def test_both_orientations_sampled(self):
        buffer = RecencyBuffer()
        buffer.add_edge(0, 1)
        src, _dst = buffer.sample(500, np.random.default_rng(2))
        assert {0, 1} == set(np.unique(src))


@pytest.fixture(scope="module")
def warm_actor():
    data = generate_dataset("utgeo2011", n_records=1200, seed=21)
    actor = Actor(
        ActorConfig(
            dim=16, epochs=4, batches_per_epoch=6, line_samples=5_000, seed=2
        )
    ).fit(data.train)
    return data, actor


def make_stream_records(base_id, words, location, hour, user="stream_user"):
    return [
        Record(
            record_id=base_id + i,
            user=user,
            timestamp=float(hour + 24 * i),
            location=location,
            words=tuple(words),
        )
        for i in range(20)
    ]


class TestOnlineActor:
    def test_requires_fitted_base(self):
        with pytest.raises(ValueError, match="fitted"):
            OnlineActor(Actor())

    def test_base_model_not_mutated(self, warm_actor):
        _data, actor = warm_actor
        before = actor.center.copy()
        online = OnlineActor(actor, seed=0)
        online.partial_fit(
            make_stream_records(10_000, ["nightlife_00"], (5.0, 5.0), 22.0)
        )
        np.testing.assert_array_equal(actor.center, before)
        assert online.n_ingested == 20

    def test_empty_batch_is_noop(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        before = online.center.copy()
        online.partial_fit([])
        np.testing.assert_array_equal(online.center, before)

    def test_new_word_gets_embedding_row(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        rows_before = online.center.shape[0]
        assert online.unit_vector("word", "brand_new_venue") is None
        online.partial_fit(
            make_stream_records(
                20_000, ["brand_new_venue", "nightlife_00"], (5.0, 5.0), 22.0
            )
        )
        assert online.center.shape[0] > rows_before
        assert online.unit_vector("word", "brand_new_venue") is not None

    def test_new_user_resolvable(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        online.partial_fit(
            make_stream_records(
                30_000, ["nightlife_00"], (5.0, 5.0), 22.0, user="u_brand_new"
            )
        )
        assert online.unit_vector("user", "u_brand_new") is not None

    def test_streamed_word_associates_with_its_context(self, warm_actor):
        """After enough updates the new word's nearest time unit is the
        hour it streamed in with."""
        data, actor = warm_actor
        online = OnlineActor(
            actor, seed=0, steps_per_batch=150, online_lr=0.05
        )
        hour = 22.0
        location = data.train[0].location
        for round_id in range(5):
            online.partial_fit(
                make_stream_records(
                    40_000 + 100 * round_id, ["fresh_event"], location, hour
                )
            )
        vec = online.unit_vector("word", "fresh_event")
        top_times = online.neighbors(vec, "time", k=3)
        hotspots = online.built.detector.temporal_hotspots
        gaps = [
            min(abs(hotspots[int(i)] - hour), 24 - abs(hotspots[int(i)] - hour))
            for i, _s in top_times
        ]
        assert min(gaps) < 4.0, (top_times, hotspots)

    def test_new_word_appears_in_modality_vectors(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        online.partial_fit(
            make_stream_records(50_000, ["another_new_word"], (5.0, 5.0), 9.0)
        )
        keys, matrix = online.modality_vectors("word")
        assert "another_new_word" in keys
        assert matrix.shape[0] == len(keys)

    def test_capped_vocabulary_refuses_growth(self, warm_actor):
        data, _actor = warm_actor
        capped = Actor(
            ActorConfig(
                dim=8,
                epochs=1,
                batches_per_epoch=2,
                line_samples=2_000,
                vocab_max_size=5,  # tiny cap: the stream word cannot enter
                vocab_min_count=1,
                seed=3,
            )
        ).fit(data.train)
        online = OnlineActor(capped, seed=0)
        rows_before = online.center.shape[0]
        online.partial_fit(
            make_stream_records(60_000, ["word_beyond_cap"], (5.0, 5.0), 9.0)
        )
        # word not admitted; only (possibly) the new user row was added
        assert online.unit_vector("word", "word_beyond_cap") is None
        assert online.center.shape[0] <= rows_before + 1
