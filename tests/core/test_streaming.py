"""Tests for the online/streaming ACTOR extension."""

import numpy as np
import pytest

from repro.core import Actor, ActorConfig
from repro.core.streaming import OnlineActor, RecencyBuffer
from repro.data import Record, generate_dataset
from repro.data.records import Corpus
from repro.hotspots.detector import HotspotDetector


class TestRecencyBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecencyBuffer(half_life=0)
        with pytest.raises(ValueError):
            RecencyBuffer(max_size=0)
        buffer = RecencyBuffer()
        with pytest.raises(ValueError, match="weight"):
            buffer.add_edge(0, 1, weight=0.0)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            RecencyBuffer().sample(4, np.random.default_rng(0))

    def test_decay_halves_at_half_life(self):
        buffer = RecencyBuffer(half_life=5.0)
        buffer.add_edge(0, 1, weight=2.0)
        for _ in range(5):
            buffer.tick()
        assert buffer.decayed_weights()[0] == pytest.approx(1.0)

    def test_recent_edges_dominate_sampling(self):
        buffer = RecencyBuffer(half_life=1.0)
        buffer.add_edge(0, 1)  # old edge
        for _ in range(10):
            buffer.tick()
        buffer.add_edge(2, 3)  # fresh edge
        src, dst = buffer.sample(2000, np.random.default_rng(0))
        fresh = np.mean([(s, d) in ((2, 3), (3, 2)) for s, d in zip(src, dst)])
        assert fresh > 0.95

    def test_sampling_respects_weight(self):
        buffer = RecencyBuffer(half_life=100.0)
        buffer.add_edge(0, 1, weight=3.0)
        buffer.add_edge(2, 3, weight=1.0)
        src, dst = buffer.sample(20_000, np.random.default_rng(1))
        heavy = np.mean([(s, d) in ((0, 1), (1, 0)) for s, d in zip(src, dst)])
        assert heavy == pytest.approx(0.75, abs=0.02)

    def test_eviction_at_capacity(self):
        buffer = RecencyBuffer(max_size=3)
        for i in range(5):
            buffer.add_edge(i, i + 10)
        assert len(buffer) == 3
        src, _ = buffer.sample(100, np.random.default_rng(0))
        assert set(np.unique(src)) <= {2, 3, 4, 12, 13, 14}

    def test_both_orientations_sampled(self):
        buffer = RecencyBuffer()
        buffer.add_edge(0, 1)
        src, _dst = buffer.sample(500, np.random.default_rng(2))
        assert {0, 1} == set(np.unique(src))

    def test_decay_bit_exact_with_scalar_formula(self):
        """Regression for the recency-decay drift bug: decayed weights must
        equal ``weight * 0.5 ** (age / half_life)`` computed with *scalar*
        arithmetic, bit for bit (``==``, not approx).  The vectorized
        ``np.power`` path disagreed in the last ulp for some ages."""
        half_life = 3.0
        buffer = RecencyBuffer(half_life=half_life)
        ages = [0, 1, 2, 5, 7, 11, 23]
        for insert_order, age in enumerate(sorted(ages, reverse=True)):
            buffer.clock = max(ages) - age
            buffer.add_edge(insert_order, insert_order + 100, weight=1.7)
        buffer.clock = max(ages)
        weights = buffer.decayed_weights()
        expected = [1.7 * 0.5 ** (age / half_life) for age in sorted(ages, reverse=True)]
        for got, want in zip(weights, expected):
            assert got == want  # exact, no tolerance

    def test_ring_wraparound_preserves_logical_order(self):
        buffer = RecencyBuffer(max_size=4)
        for i in range(10):
            buffer.add_edge(i, i + 100)
            buffer.tick()
        assert len(buffer) == 4
        assert buffer.evictions == 6
        state = buffer.state()
        np.testing.assert_array_equal(state["src"], [6, 7, 8, 9])
        np.testing.assert_array_equal(state["dst"], [106, 107, 108, 109])
        np.testing.assert_array_equal(state["born"], [6, 7, 8, 9])

    def test_add_edges_bulk_matches_scalar_appends(self):
        bulk = RecencyBuffer(half_life=4.0)
        loop = RecencyBuffer(half_life=4.0)
        src = np.arange(7)
        bulk.add_edges(src, src + 50, weight=2.5)
        for i in range(7):
            loop.add_edge(i, i + 50, weight=2.5)
        for key in ("src", "dst", "weight", "born"):
            np.testing.assert_array_equal(bulk.state()[key], loop.state()[key])

    def test_add_edges_batch_larger_than_capacity_keeps_newest(self):
        buffer = RecencyBuffer(max_size=3)
        buffer.add_edge(999, 998)  # will be evicted with the batch overflow
        src = np.arange(10)
        buffer.add_edges(src, src + 100)
        assert len(buffer) == 3
        assert buffer.evictions == 8  # the pre-existing edge + 7 of the batch
        np.testing.assert_array_equal(buffer.state()["src"], [7, 8, 9])

    def test_add_edges_rejects_nonpositive_weights(self):
        buffer = RecencyBuffer()
        with pytest.raises(ValueError, match="positive"):
            buffer.add_edges([0, 1], [2, 3], weight=0.0)
        with pytest.raises(ValueError, match="positive"):
            buffer.add_edges([0, 1], [2, 3], weight=np.array([1.0, -2.0]))
        with pytest.raises(ValueError, match="length"):
            buffer.add_edges([0, 1], [2])

    def test_state_roundtrip(self):
        buffer = RecencyBuffer(half_life=2.0, max_size=50)
        for i in range(8):
            buffer.add_edge(i, i + 10, weight=1.0 + i)
            if i % 2:
                buffer.tick()
        restored = RecencyBuffer.from_state(
            buffer.state(), half_life=2.0, max_size=50
        )
        assert len(restored) == len(buffer)
        assert restored.clock == buffer.clock
        np.testing.assert_array_equal(
            restored.decayed_weights(), buffer.decayed_weights()
        )
        s1 = buffer.sample(40, np.random.default_rng(7))
        s2 = restored.sample(40, np.random.default_rng(7))
        np.testing.assert_array_equal(s1[0], s2[0])
        np.testing.assert_array_equal(s1[1], s2[1])

    def test_from_state_rejects_corrupt_state(self):
        buffer = RecencyBuffer()
        buffer.add_edge(0, 1)
        state = buffer.state()
        with pytest.raises(ValueError, match="max_size"):
            RecencyBuffer.from_state(
                {**state, "src": np.arange(9), "dst": np.arange(9),
                 "weight": np.ones(9), "born": np.zeros(9, dtype=int)},
                half_life=1.0, max_size=4,
            )
        with pytest.raises(ValueError, match="mismatched"):
            RecencyBuffer.from_state(
                {**state, "dst": np.arange(3)}, half_life=1.0, max_size=10
            )
        with pytest.raises(ValueError, match="born after"):
            RecencyBuffer.from_state(
                {**state, "born": np.array([99])}, half_life=1.0, max_size=10
            )


@pytest.fixture(scope="module")
def warm_actor():
    data = generate_dataset("utgeo2011", n_records=1200, seed=21)
    actor = Actor(
        ActorConfig(
            dim=16, epochs=4, batches_per_epoch=6, line_samples=5_000, seed=2
        )
    ).fit(data.train)
    return data, actor


def make_stream_records(base_id, words, location, hour, user="stream_user"):
    return [
        Record(
            record_id=base_id + i,
            user=user,
            timestamp=float(hour + 24 * i),
            location=location,
            words=tuple(words),
        )
        for i in range(20)
    ]


class TestOnlineActor:
    def test_requires_fitted_base(self):
        with pytest.raises(ValueError, match="fitted"):
            OnlineActor(Actor())

    def test_base_model_not_mutated(self, warm_actor):
        _data, actor = warm_actor
        before = actor.center.copy()
        online = OnlineActor(actor, seed=0)
        online.partial_fit(
            make_stream_records(10_000, ["nightlife_00"], (5.0, 5.0), 22.0)
        )
        np.testing.assert_array_equal(actor.center, before)
        assert online.n_ingested == 20

    def test_empty_batch_is_noop(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        before = online.center.copy()
        online.partial_fit([])
        np.testing.assert_array_equal(online.center, before)

    def test_new_word_gets_embedding_row(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        rows_before = online.center.shape[0]
        assert online.unit_vector("word", "brand_new_venue") is None
        online.partial_fit(
            make_stream_records(
                20_000, ["brand_new_venue", "nightlife_00"], (5.0, 5.0), 22.0
            )
        )
        assert online.center.shape[0] > rows_before
        assert online.unit_vector("word", "brand_new_venue") is not None

    def test_new_user_resolvable(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        online.partial_fit(
            make_stream_records(
                30_000, ["nightlife_00"], (5.0, 5.0), 22.0, user="u_brand_new"
            )
        )
        assert online.unit_vector("user", "u_brand_new") is not None

    def test_streamed_word_associates_with_its_context(self, warm_actor):
        """After enough updates the new word's nearest time unit is the
        hour it streamed in with."""
        data, actor = warm_actor
        online = OnlineActor(
            actor, seed=0, steps_per_batch=150, online_lr=0.05
        )
        hour = 22.0
        location = data.train[0].location
        for round_id in range(5):
            online.partial_fit(
                make_stream_records(
                    40_000 + 100 * round_id, ["fresh_event"], location, hour
                )
            )
        vec = online.unit_vector("word", "fresh_event")
        top_times = online.neighbors(vec, "time", k=3)
        hotspots = online.built.detector.temporal_hotspots
        gaps = [
            min(abs(hotspots[int(i)] - hour), 24 - abs(hotspots[int(i)] - hour))
            for i, _s in top_times
        ]
        assert min(gaps) < 4.0, (top_times, hotspots)

    def test_new_word_appears_in_modality_vectors(self, warm_actor):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=0)
        online.partial_fit(
            make_stream_records(50_000, ["another_new_word"], (5.0, 5.0), 9.0)
        )
        keys, matrix = online.modality_vectors("word")
        assert "another_new_word" in keys
        assert matrix.shape[0] == len(keys)

    def test_capped_vocabulary_refuses_growth(self, warm_actor):
        data, _actor = warm_actor
        capped = Actor(
            ActorConfig(
                dim=8,
                epochs=1,
                batches_per_epoch=2,
                line_samples=2_000,
                vocab_max_size=5,  # tiny cap: the stream word cannot enter
                vocab_min_count=1,
                seed=3,
            )
        ).fit(data.train)
        online = OnlineActor(capped, seed=0)
        rows_before = online.center.shape[0]
        online.partial_fit(
            make_stream_records(60_000, ["word_beyond_cap"], (5.0, 5.0), 9.0)
        )
        # word not admitted; only (possibly) the new user row was added
        assert online.unit_vector("word", "word_beyond_cap") is None
        assert online.center.shape[0] <= rows_before + 1


def make_tiny_corpus(n=30):
    """Hand-built corpus: one spatial cluster, one temporal cluster."""
    records = [
        Record(
            record_id=i,
            user=f"u{i % 3}",
            timestamp=12.0 + 24.0 * i + 0.1 * (i % 5),
            location=(1.0 + 0.05 * (i % 4), 1.0),
            words=("alpha", "beta", "gamma"),
        )
        for i in range(n)
    ]
    return Corpus.from_records(records)


def fit_tiny_actor(detector=None, **config_overrides):
    config = ActorConfig(
        dim=8,
        epochs=1,
        batches_per_epoch=2,
        line_samples=2_000,
        vocab_min_count=1,
        seed=3,
        **config_overrides,
    )
    return Actor(config).fit(make_tiny_corpus(), detector=detector)


class TestWordAdmissionCap:
    def test_cap_reached_mid_batch_refuses_remainder(self):
        # Trained vocabulary holds 3 words; the cap leaves room for exactly
        # 2 more.  A single batch carrying 4 new words must admit the first
        # 2 it encounters and refuse the rest *within the same batch*.
        actor = fit_tiny_actor(vocab_max_size=5)
        assert len(actor.built.vocab) == 3
        online = OnlineActor(actor, seed=0)
        records = [
            Record(
                record_id=100 + i,
                user="u0",
                timestamp=12.0 + 24.0 * i,
                location=(1.0, 1.0),
                words=("new_a", "new_b", "new_c", "new_d"),
            )
            for i in range(3)
        ]
        online.partial_fit(records)
        assert len(online.built.vocab) == 5
        assert online.unit_vector("word", "new_a") is not None
        assert online.unit_vector("word", "new_b") is not None
        assert online.unit_vector("word", "new_c") is None
        assert online.unit_vector("word", "new_d") is None
        # Later batches cannot sneak past the cap either.
        online.partial_fit(
            [
                Record(
                    record_id=200,
                    user="u0",
                    timestamp=12.0,
                    location=(1.0, 1.0),
                    words=("new_e",),
                )
            ]
        )
        assert online.unit_vector("word", "new_e") is None
        assert len(online.built.vocab) == 5


class TestNodeResolution:
    def test_node_of_resolves_all_modalities_gracefully(self):
        """After hotspot drift the detector knows hotspots the base graph
        has no nodes for.  Base and online models both degrade to None
        (-> zero query vector) there — matching the batched engine's
        ``index_map`` fallback — and the online model resolves the units
        once records stream in."""
        actor = fit_tiny_actor(
            detector=HotspotDetector.from_arrays(
                np.array([[1.0, 1.0]]), np.array([12.0])
            )
        )
        # Simulate a detector refresh that discovered a second district and
        # a night-time hotspot the training corpus never produced.
        actor.built.detector = HotspotDetector.from_arrays(
            np.array([[1.0, 1.0], [9.0, 9.0]]), np.array([12.0, 3.0])
        )
        assert actor.unit_vector("time", 3.0) is None
        assert actor.unit_vector("location", (9.0, 9.0)) is None

        online = OnlineActor(actor, seed=0)
        assert online.unit_vector("time", 3.0) is None
        assert online.unit_vector("location", (9.0, 9.0)) is None
        assert online.unit_vector("word", "unseen_word") is None
        assert online.unit_vector("user", "unseen_user") is None
        with pytest.raises(ValueError, match="modality"):
            online.unit_vector("planet", "mars")

        online.partial_fit(
            [
                Record(
                    record_id=300 + i,
                    user="night_user",
                    timestamp=3.0 + 24.0 * i,
                    location=(9.0, 9.0),
                    words=("night_word",),
                )
                for i in range(5)
            ]
        )
        assert online.unit_vector("time", 3.0) is not None
        assert online.unit_vector("location", (9.0, 9.0)) is not None
        assert online.unit_vector("word", "night_word") is not None
        assert online.unit_vector("user", "night_user") is not None
        # Known base units still resolve to their base rows.
        assert online.unit_vector("time", 12.0) is not None


class TestCheckpointRoundtrip:
    def test_roundtrip_preserves_predictions_and_stream(
        self, warm_actor, tmp_path
    ):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=5, steps_per_batch=30)
        online.partial_fit(
            make_stream_records(
                70_000, ["ckpt_word"], (5.0, 5.0), 22.0, user="ckpt_user"
            )
        )
        ckpt = tmp_path / "ckpt"
        online.save_checkpoint(ckpt)
        restored = OnlineActor.restore(actor, ckpt)

        np.testing.assert_array_equal(restored.center, online.center)
        np.testing.assert_array_equal(restored.context, online.context)
        assert restored.n_ingested == online.n_ingested
        assert restored._extra_nodes == online._extra_nodes
        for modality, key in (("word", "ckpt_word"), ("user", "ckpt_user")):
            np.testing.assert_array_equal(
                restored.unit_vector(modality, key),
                online.unit_vector(modality, key),
            )
        # Buffer contents round-trip: identical draws under identical rngs.
        s1 = online.buffer.sample(60, np.random.default_rng(3))
        s2 = restored.buffer.sample(60, np.random.default_rng(3))
        np.testing.assert_array_equal(s1[0], s2[0])
        np.testing.assert_array_equal(s1[1], s2[1])
        # The RNG stream resumes too: continued streaming stays bit-aligned.
        more = make_stream_records(71_000, ["ckpt_word"], (5.0, 5.0), 22.0)
        online.partial_fit(more)
        restored.partial_fit(more)
        np.testing.assert_array_equal(restored.center, online.center)

    def test_restore_rejects_mismatched_base(self, warm_actor, tmp_path):
        _data, actor = warm_actor
        online = OnlineActor(actor, seed=5)
        online.partial_fit(
            make_stream_records(80_000, ["mismatch_word"], (5.0, 5.0), 9.0)
        )
        ckpt = tmp_path / "ckpt"
        online.save_checkpoint(ckpt)
        other = fit_tiny_actor()
        with pytest.raises(ValueError, match="base model"):
            OnlineActor.restore(other, ckpt)
        with pytest.raises(ValueError, match="fitted"):
            OnlineActor.restore(Actor(), ckpt)
