"""Tests for neighbor search (Figs. 9-11 machinery)."""

import pytest

from repro.core import spatial_query, temporal_query, textual_query


class TestSpatialQuery:
    def test_returns_words_and_times(self, tiny_actor, dataset):
        loc = dataset.test[0].location
        result = spatial_query(tiny_actor, loc, k=5)
        assert len(result.words) == 5
        assert len(result.times) == 5
        assert result.locations == []
        assert "location" in result.query_description

    def test_scores_descending(self, tiny_actor, dataset):
        result = spatial_query(tiny_actor, dataset.test[0].location, k=8)
        sims = [s for _w, s in result.words]
        assert sims == sorted(sims, reverse=True)

    def test_times_are_hours(self, tiny_actor, dataset):
        result = spatial_query(tiny_actor, dataset.test[0].location, k=5)
        for hour, _score in result.times:
            assert 0.0 <= hour < 24.0


class TestTemporalQuery:
    def test_returns_words_and_locations(self, tiny_actor):
        result = temporal_query(tiny_actor, 22.0, k=5)
        assert len(result.words) == 5
        assert len(result.locations) == 5
        assert result.times == []

    def test_location_keys_are_hotspot_indices(self, tiny_actor):
        result = temporal_query(tiny_actor, 22.0, k=5)
        n_spatial = tiny_actor.built.detector.n_spatial
        for idx, _score in result.locations:
            assert 0 <= idx < n_spatial


class TestTextualQuery:
    def test_returns_all_modalities(self, tiny_actor):
        word = tiny_actor.built.vocab.words[0]
        result = textual_query(tiny_actor, word, k=5)
        assert len(result.words) == 5
        assert len(result.times) == 5
        assert len(result.locations) == 5

    def test_query_word_excluded_from_its_own_neighbors(self, tiny_actor):
        word = tiny_actor.built.vocab.words[0]
        result = textual_query(tiny_actor, word, k=5)
        assert word not in result.top_words()

    def test_unknown_word_raises(self, tiny_actor):
        with pytest.raises(ValueError, match="not in the model vocabulary"):
            textual_query(tiny_actor, "zzz_never_seen")

    def test_top_words_helper(self, tiny_actor):
        word = tiny_actor.built.vocab.words[0]
        result = textual_query(tiny_actor, word, k=3)
        assert result.top_words() == [w for w, _s in result.words]
