"""Tests for the flexible meta-graph selection and noise-power knobs."""

import pytest

from repro.core import ActorConfig
from repro.core.hierarchical import random_init
from repro.core.trainer import ActorTrainer
from repro.graphs import GraphBuilder
from repro.hotspots import HotspotDetector


class TestInterEdgeTypesConfig:
    def test_none_is_default(self):
        assert ActorConfig().inter_edge_types is None

    def test_valid_subsets_accepted(self):
        for subset in (("UT",), ("UW", "UL"), ("UT", "UW", "UL")):
            assert ActorConfig(inter_edge_types=subset).inter_edge_types == subset

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ActorConfig(inter_edge_types=("UT", "XX"))

    def test_empty_tuple_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ActorConfig(inter_edge_types=())


class TestNoisePowerConfig:
    def test_default_is_word2vec(self):
        assert ActorConfig().noise_power == 0.75

    def test_zero_allowed(self):
        assert ActorConfig(noise_power=0.0).noise_power == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="noise_power"):
            ActorConfig(noise_power=-0.5)


class TestTrainerHonorsSelection:
    @pytest.fixture(scope="class")
    def small_built(self, corpus):
        return GraphBuilder(
            detector=HotspotDetector(min_support=2),
        ).build(corpus)

    def _tasks(self, built, **config_kwargs):
        import numpy as np

        config = ActorConfig(dim=8, epochs=1, **config_kwargs)
        center, context = random_init(
            built.activity.n_nodes, 8, np.random.default_rng(0)
        )
        return {t.name for t in ActorTrainer(built, config, center, context).tasks}

    def test_single_component_selected(self, small_built):
        names = self._tasks(small_built, inter_edge_types=("UW",))
        assert "plain:UW" in names
        assert "plain:UT" not in names
        assert "plain:UL" not in names

    def test_two_components(self, small_built):
        names = self._tasks(small_built, inter_edge_types=("UT", "UL"))
        assert {"plain:UT", "plain:UL"} <= names
        assert "plain:UW" not in names

    def test_selection_ignored_when_inter_off(self, small_built):
        names = self._tasks(
            small_built, use_inter=False, inter_edge_types=("UT",)
        )
        assert not any(n.startswith("plain:U") for n in names)

    def test_noise_power_propagates_to_samplers(self, small_built):
        import numpy as np

        config = ActorConfig(dim=8, epochs=1, noise_power=0.3)
        center, context = random_init(
            small_built.activity.n_nodes, 8, np.random.default_rng(0)
        )
        trainer = ActorTrainer(small_built, config, center, context)
        plain = [t for t in trainer.tasks if hasattr(t, "sampler")]
        assert plain
        for task in plain:
            assert task.sampler.noise_power == 0.3


class TestNoiseSamplerPower:
    def test_uniform_power_ignores_degrees(self):
        import numpy as np

        from repro.embedding import NoiseSampler

        sampler = NoiseSampler(
            np.asarray([0, 1]), np.asarray([1.0, 1000.0]), noise_power=0.0
        )
        draws = sampler.sample((20_000,), np.random.default_rng(0))
        freq = (draws == 1).mean()
        assert abs(freq - 0.5) < 0.02

    def test_power_one_matches_raw_degree(self):
        import numpy as np

        from repro.embedding import NoiseSampler

        degrees = np.asarray([1.0, 3.0])
        sampler = NoiseSampler(
            np.asarray([0, 1]), degrees, noise_power=1.0
        )
        draws = sampler.sample((50_000,), np.random.default_rng(1))
        assert abs((draws == 1).mean() - 0.75) < 0.02

    def test_negative_power_rejected(self):
        import numpy as np

        from repro.embedding import NoiseSampler

        with pytest.raises(ValueError, match="noise_power"):
            NoiseSampler(
                np.asarray([0]), np.asarray([1.0]), noise_power=-1.0
            )
