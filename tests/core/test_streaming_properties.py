"""Property-based tests for the recency buffer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import RecencyBuffer


def buffer_with_ages(half_life, ages):
    """A buffer whose edge i has age ``ages[i]`` (insertion order kept)."""
    buffer = RecencyBuffer(half_life=half_life)
    max_age = max(ages)
    # Edges must enter oldest-first; the buffer keys decay off the public
    # clock, so set it to the birth tick before each insert.
    for insert_order, age in enumerate(sorted(ages, reverse=True)):
        buffer.clock = max_age - age
        buffer.add_edge(insert_order, insert_order + 1000)
    buffer.clock = max_age
    return buffer


class TestRecencyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        half_life=st.floats(0.5, 50.0),
        ages=st.lists(st.integers(0, 40), min_size=1, max_size=20),
    )
    def test_property_decay_monotone_in_age(self, half_life, ages):
        """Older edges never have larger decayed weight (equal base weight)."""
        buffer = buffer_with_ages(half_life, ages)
        weights = buffer.decayed_weights()
        # buffer_with_ages inserts oldest-first, so weights ascend with
        # position: age descends along the logical order.
        assert (np.diff(weights) >= -1e-12).all()

    @settings(max_examples=20, deadline=None)
    @given(
        n_edges=st.integers(1, 30),
        ticks=st.integers(0, 20),
        half_life=st.floats(1.0, 20.0),
    )
    def test_property_weights_positive_and_bounded(
        self, n_edges, ticks, half_life
    ):
        buffer = RecencyBuffer(half_life=half_life)
        for i in range(n_edges):
            buffer.add_edge(i, i + 100, weight=2.0)
        for _ in range(ticks):
            buffer.tick()
        weights = buffer.decayed_weights()
        assert (weights > 0).all()
        assert (weights <= 2.0 + 1e-12).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 10))
    def test_property_samples_only_buffered_edges(self, seed, n):
        buffer = RecencyBuffer()
        pairs = set()
        for i in range(n):
            buffer.add_edge(i, i + 50)
            pairs.add((i, i + 50))
            pairs.add((i + 50, i))
        src, dst = buffer.sample(200, np.random.default_rng(seed))
        for s, d in zip(src, dst):
            assert (int(s), int(d)) in pairs

    @settings(max_examples=15, deadline=None)
    @given(half_life=st.floats(1.0, 10.0))
    def test_property_tick_halves_exactly_at_half_life(self, half_life):
        buffer = RecencyBuffer(half_life=half_life)
        buffer.add_edge(0, 1, weight=4.0)
        start = buffer.decayed_weights()[0]
        for _ in range(int(round(half_life))):
            buffer.tick()
        # integral half-life only when half_life is an integer; use ratio
        expected = 4.0 * 0.5 ** (buffer.clock / half_life)
        assert buffer.decayed_weights()[0] == np.float64(expected)
        assert start == 4.0

    @settings(max_examples=20, deadline=None)
    @given(
        max_size=st.integers(1, 12),
        n_batches=st.integers(1, 8),
        batch=st.integers(1, 9),
        half_life=st.floats(1.0, 10.0),
    )
    def test_property_eviction_keeps_newest(
        self, max_size, n_batches, batch, half_life
    ):
        """Eviction is strictly oldest-by-insertion: after any overflow the
        buffer holds exactly the newest max_size edges, and their decayed
        weights stay positive, bounded, and monotone in age."""
        buffer = RecencyBuffer(half_life=half_life, max_size=max_size)
        total = 0
        for _ in range(n_batches):
            src = np.arange(total, total + batch)
            buffer.add_edges(src, src + 10_000)
            total += batch
            buffer.tick()
        kept = min(total, max_size)
        assert len(buffer) == kept
        assert buffer.evictions == total - kept
        # The survivors are exactly the newest `kept` edge ids, in order.
        src, _dst = buffer.sample(500, np.random.default_rng(0))
        expected = set(range(total - kept, total)) | set(
            range(total - kept + 10_000, total + 10_000)
        )
        assert set(int(s) for s in src) <= expected
        weights = buffer.decayed_weights()
        assert (weights > 0).all()
        assert (weights <= 1.0 + 1e-12).all()
        # Oldest-first logical order: weight never decreases along it.
        assert (np.diff(weights) >= -1e-12).all()
