"""Property-based tests for the recency buffer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import RecencyBuffer


class TestRecencyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        half_life=st.floats(0.5, 50.0),
        ages=st.lists(st.integers(0, 40), min_size=1, max_size=20),
    )
    def test_property_decay_monotone_in_age(self, half_life, ages):
        """Older edges never have larger decayed weight (equal base weight)."""
        buffer = RecencyBuffer(half_life=half_life)
        max_age = max(ages)
        # Insert edges so that edge i has age ages[i] at the end.
        for age in ages:
            buffer._src.append(0)
            buffer._dst.append(1)
            buffer._weight.append(1.0)
            buffer._born.append(max_age - age)
        buffer.clock = max_age
        weights = buffer.decayed_weights()
        order = np.argsort(ages)
        sorted_weights = weights[order]
        assert (np.diff(sorted_weights) <= 1e-12).all()

    @settings(max_examples=20, deadline=None)
    @given(
        n_edges=st.integers(1, 30),
        ticks=st.integers(0, 20),
        half_life=st.floats(1.0, 20.0),
    )
    def test_property_weights_positive_and_bounded(
        self, n_edges, ticks, half_life
    ):
        buffer = RecencyBuffer(half_life=half_life)
        for i in range(n_edges):
            buffer.add_edge(i, i + 100, weight=2.0)
        for _ in range(ticks):
            buffer.tick()
        weights = buffer.decayed_weights()
        assert (weights > 0).all()
        assert (weights <= 2.0 + 1e-12).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 10))
    def test_property_samples_only_buffered_edges(self, seed, n):
        buffer = RecencyBuffer()
        pairs = set()
        for i in range(n):
            buffer.add_edge(i, i + 50)
            pairs.add((i, i + 50))
            pairs.add((i + 50, i))
        src, dst = buffer.sample(200, np.random.default_rng(seed))
        for s, d in zip(src, dst):
            assert (int(s), int(d)) in pairs

    @settings(max_examples=15, deadline=None)
    @given(half_life=st.floats(1.0, 10.0))
    def test_property_tick_halves_exactly_at_half_life(self, half_life):
        buffer = RecencyBuffer(half_life=half_life)
        buffer.add_edge(0, 1, weight=4.0)
        start = buffer.decayed_weights()[0]
        for _ in range(int(round(half_life))):
            buffer.tick()
        # integral half-life only when half_life is an integer; use ratio
        expected = 4.0 * 0.5 ** (buffer.clock / half_life)
        assert buffer.decayed_weights()[0] == np.float64(expected)
        assert start == 4.0
