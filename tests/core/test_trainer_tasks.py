"""Unit tests for the individual training tasks (plain / bag-of-words)."""

import numpy as np
import pytest

from repro.core.trainer import BagToUnitTask, BagToWordTask, PlainEdgeTask
from repro.embedding import NoiseSampler, TypedEdgeSampler
from repro.graphs import EdgeSet, EdgeType
from repro.graphs.builder import RecordUnits


def units(record_id, time_node, location_node, word_nodes):
    return RecordUnits(
        record_id=record_id,
        time_node=time_node,
        location_node=location_node,
        word_nodes=word_nodes,
        user_nodes=(),
    )


@pytest.fixture
def matrices():
    rng = np.random.default_rng(0)
    return (
        rng.uniform(-0.1, 0.1, size=(20, 6)),
        rng.uniform(-0.1, 0.1, size=(20, 6)),
    )


@pytest.fixture
def location_noise():
    return NoiseSampler(np.asarray([0, 1]), np.asarray([3.0, 2.0]))


@pytest.fixture
def word_noise():
    return NoiseSampler(np.asarray([10, 11, 12]), np.asarray([1.0, 1.0, 1.0]))


class TestPlainEdgeTask:
    def test_name_includes_orientation(self):
        edge_set = EdgeSet(
            edge_type=EdgeType.LW,
            src=np.asarray([0]),
            dst=np.asarray([10]),
            weight=np.asarray([1.0]),
        )
        sampler = TypedEdgeSampler(edge_set)
        assert PlainEdgeTask(EdgeType.LW, sampler).name == "plain:LW"
        assert (
            PlainEdgeTask(EdgeType.LW, sampler, context_side="dst").name
            == "plain:LW->dst"
        )

    def test_step_updates_and_returns_loss(self, matrices):
        center, context = matrices
        edge_set = EdgeSet(
            edge_type=EdgeType.LW,
            src=np.asarray([0, 1]),
            dst=np.asarray([10, 11]),
            weight=np.asarray([1.0, 1.0]),
        )
        task = PlainEdgeTask(EdgeType.LW, TypedEdgeSampler(edge_set))
        before = center.copy()
        loss = task.step(center, context, 8, 0.1, np.random.default_rng(1))
        assert loss > 0
        assert not np.array_equal(center, before)


class TestBagToUnitTask:
    def test_requires_records_with_words(self, location_noise):
        with pytest.raises(ValueError, match="no records with words"):
            BagToUnitTask(
                EdgeType.LW,
                [units(0, 5, 0, ())],
                "location",
                location_noise,
                1,
            )

    def test_rejects_bad_unit_kind(self, location_noise):
        with pytest.raises(ValueError, match="unit_of"):
            BagToUnitTask(
                EdgeType.LW,
                [units(0, 5, 0, (10,))],
                "velocity",
                location_noise,
                1,
            )

    def test_wordless_records_excluded(self, location_noise, matrices):
        center, context = matrices
        task = BagToUnitTask(
            EdgeType.LW,
            [units(0, 5, 0, (10, 11)), units(1, 6, 1, ())],
            "location",
            location_noise,
            1,
        )
        # only record 0 is eligible: location context must always be node 0
        rng = np.random.default_rng(2)
        idx = task._record_table.sample(50, seed=rng)
        assert (task._units[idx] == 0).all()

    def test_record_weights_proportional_to_word_count(self, location_noise):
        task = BagToUnitTask(
            EdgeType.LW,
            [units(0, 5, 0, (10,)), units(1, 6, 1, (10, 11, 12))],
            "location",
            location_noise,
            1,
        )
        idx = task._record_table.sample(40_000, seed=np.random.default_rng(3))
        frac_record1 = (idx == 1).mean()
        assert frac_record1 == pytest.approx(0.75, abs=0.02)

    def test_time_unit_variant(self, location_noise, matrices):
        center, context = matrices
        task = BagToUnitTask(
            EdgeType.WT,
            [units(0, 5, 0, (10, 11))],
            "time",
            location_noise,
            1,
        )
        loss = task.step(center, context, 4, 0.05, np.random.default_rng(4))
        assert np.isfinite(loss)


class TestBagToWordTask:
    def test_requires_two_words(self, word_noise):
        with pytest.raises(ValueError, match=">= 2 words"):
            BagToWordTask([units(0, 5, 0, (10,))], word_noise, 1)

    def test_target_excluded_from_bag(self, word_noise, matrices):
        center, context = matrices
        task = BagToWordTask(
            [units(0, 5, 0, (10, 11, 12))], word_noise, 1
        )
        rng = np.random.default_rng(5)
        # Run several steps; the objective must stay finite and the task
        # must only involve word nodes.
        before_t = center[5].copy()
        for _ in range(10):
            loss = task.step(center, context, 4, 0.05, rng)
            assert np.isfinite(loss)
        np.testing.assert_array_equal(center[5], before_t)  # T node untouched

    def test_duplicate_words_allowed(self, word_noise, matrices):
        center, context = matrices
        task = BagToWordTask(
            [units(0, 5, 0, (10, 10))], word_noise, 1
        )
        loss = task.step(center, context, 4, 0.05, np.random.default_rng(6))
        assert np.isfinite(loss)
