"""Tests for the portable (pickle-free) model bundle."""

import json
import shutil

import numpy as np
import pytest

from repro.core.serialize import (
    FORMAT_VERSION,
    BundleFormatError,
    QueryModel,
    load_bundle,
    save_bundle,
)


@pytest.fixture(scope="module")
def bundle_dir(tiny_actor, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bundle") / "model"
    save_bundle(tiny_actor, directory)
    return directory


@pytest.fixture()
def v1_bundle(bundle_dir, tmp_path):
    """A format-v1 bundle (compressed embeddings.npz) built from the v2 one."""
    old = tmp_path / "v1"
    shutil.copytree(bundle_dir, old)
    center = np.load(old / "center.npy")
    context = np.load(old / "context.npy")
    np.savez_compressed(
        old / "embeddings.npz", center=center, context=context
    )
    (old / "center.npy").unlink()
    (old / "context.npy").unlink()
    manifest = json.loads((old / "manifest.json").read_text())
    manifest["format_version"] = 1
    (old / "manifest.json").write_text(json.dumps(manifest))
    return old


class TestSaveBundle:
    def test_writes_expected_files(self, bundle_dir):
        names = {p.name for p in bundle_dir.iterdir()}
        assert names == {
            "manifest.json", "center.npy", "context.npy", "hotspots.npz",
            "nodes.json", "vocab.json",
        }

    def test_manifest_contents(self, bundle_dir, tiny_actor):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["dim"] == tiny_actor.dim
        assert manifest["n_nodes"] == tiny_actor.center.shape[0]
        assert manifest["config"]["dim"] == tiny_actor.config.dim

    def test_unfitted_model_rejected(self, tmp_path):
        from repro.core import Actor

        with pytest.raises(ValueError, match="unfitted"):
            save_bundle(Actor(), tmp_path / "x")

    def test_no_pickle_files(self, bundle_dir):
        for path in bundle_dir.iterdir():
            assert path.suffix in (".json", ".npz", ".npy")


class TestLoadBundle:
    def test_roundtrip_embeddings(self, bundle_dir, tiny_actor):
        model = load_bundle(bundle_dir)
        np.testing.assert_array_equal(model.center, tiny_actor.center)
        np.testing.assert_array_equal(model.context, tiny_actor.context)

    def test_query_surface_identical(self, bundle_dir, tiny_actor, dataset):
        model = load_bundle(bundle_dir)
        record = dataset.test[0]
        candidates = [r.location for r in dataset.test.records[:6]]
        original = tiny_actor.score_candidates(
            target="location",
            candidates=candidates,
            time=record.timestamp,
            words=record.words,
        )
        restored = model.score_candidates(
            target="location",
            candidates=candidates,
            time=record.timestamp,
            words=record.words,
        )
        np.testing.assert_allclose(original, restored)

    def test_neighbor_search_identical(self, bundle_dir, tiny_actor):
        model = load_bundle(bundle_dir)
        word = tiny_actor.built.vocab.words[0]
        original = tiny_actor.neighbors(
            tiny_actor.unit_vector("word", word), "word", k=5
        )
        restored = model.neighbors(
            model.unit_vector("word", word), "word", k=5
        )
        assert [w for w, _s in original] == [w for w, _s in restored]

    def test_vocab_order_preserved(self, bundle_dir, tiny_actor):
        model = load_bundle(bundle_dir)
        assert model.built.vocab.words == tiny_actor.built.vocab.words

    def test_unknown_format_version_rejected(self, bundle_dir, tmp_path):
        bad = tmp_path / "bad"
        shutil.copytree(bundle_dir, bad)
        manifest = json.loads((bad / "manifest.json").read_text())
        manifest["format_version"] = 999
        (bad / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError, match="unsupported bundle format"):
            load_bundle(bad)

    def test_inconsistent_bundle_rejected(self, bundle_dir, tmp_path):
        bad = tmp_path / "inconsistent"
        shutil.copytree(bundle_dir, bad)
        nodes = json.loads((bad / "nodes.json").read_text())
        (bad / "nodes.json").write_text(json.dumps(nodes[:-1]))
        with pytest.raises(BundleFormatError, match="inconsistent"):
            load_bundle(bad)

    def test_loaded_model_is_query_model(self, bundle_dir):
        model = load_bundle(bundle_dir)
        assert isinstance(model, QueryModel)
        assert model.supports_time
        assert model.name == "ACTOR(bundle)"

    def test_bundle_roundtrips_itself(self, bundle_dir, tmp_path):
        """A loaded QueryModel can be re-serialized identically."""
        model = load_bundle(bundle_dir)
        second = tmp_path / "second"
        save_bundle(model, second)
        again = load_bundle(second)
        np.testing.assert_array_equal(model.center, again.center)


class TestBundleFormatErrors:
    """Malformed bundles fail with errors naming field and version."""

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(BundleFormatError, match="manifest.json"):
            load_bundle(tmp_path)

    def test_truncated_manifest(self, bundle_dir, tmp_path):
        bad = tmp_path / "truncated"
        shutil.copytree(bundle_dir, bad)
        text = (bad / "manifest.json").read_text()
        (bad / "manifest.json").write_text(text[: len(text) // 2])
        with pytest.raises(BundleFormatError, match="corrupt or truncated"):
            load_bundle(bad)

    def test_missing_manifest_field_named(self, bundle_dir, tmp_path):
        bad = tmp_path / "nofield"
        shutil.copytree(bundle_dir, bad)
        manifest = json.loads((bad / "manifest.json").read_text())
        del manifest["period"]
        (bad / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError, match="'period'") as excinfo:
            load_bundle(bad)
        assert f"format v{FORMAT_VERSION}" in str(excinfo.value)

    def test_truncated_embeddings_file(self, bundle_dir, tmp_path):
        bad = tmp_path / "tructrunc"
        shutil.copytree(bundle_dir, bad)
        raw = (bad / "center.npy").read_bytes()
        (bad / "center.npy").write_bytes(raw[: len(raw) // 3])
        with pytest.raises(BundleFormatError, match="center.npy"):
            load_bundle(bad)

    def test_missing_embeddings_file(self, bundle_dir, tmp_path):
        bad = tmp_path / "noembed"
        shutil.copytree(bundle_dir, bad)
        (bad / "context.npy").unlink()
        with pytest.raises(BundleFormatError, match="context.npy"):
            load_bundle(bad)

    def test_error_is_a_value_error(self):
        """Callers catching the historical ValueError keep working."""
        assert issubclass(BundleFormatError, ValueError)


class TestV1Compatibility:
    def test_v1_bundle_still_loads(self, v1_bundle, tiny_actor):
        model = load_bundle(v1_bundle)
        np.testing.assert_array_equal(model.center, tiny_actor.center)
        np.testing.assert_array_equal(model.context, tiny_actor.context)

    def test_v1_mmap_rejected_with_migration_hint(self, v1_bundle):
        with pytest.raises(BundleFormatError, match="re-export"):
            load_bundle(v1_bundle, mmap=True)

    def test_v1_missing_npz_named(self, v1_bundle):
        (v1_bundle / "embeddings.npz").unlink()
        with pytest.raises(BundleFormatError, match="embeddings.npz"):
            load_bundle(v1_bundle)


class TestMmapLoad:
    def test_mmap_serves_identical_ranks(self, bundle_dir, tiny_actor, dataset):
        eager = load_bundle(bundle_dir)
        mapped = load_bundle(bundle_dir, mmap=True)
        assert mapped.store.backend == "mmap"
        record = dataset.test[0]
        candidates = [r.location for r in dataset.test.records[:6]]
        kwargs = dict(
            target="location",
            candidates=candidates,
            time=record.timestamp,
            words=record.words,
        )
        np.testing.assert_array_equal(
            eager.score_candidates(**kwargs), mapped.score_candidates(**kwargs)
        )

    def test_mmap_matrices_are_readonly_maps(self, bundle_dir):
        mapped = load_bundle(bundle_dir, mmap=True)
        assert isinstance(mapped.center, np.memmap)
        with pytest.raises((ValueError, OSError)):
            mapped.center[0, 0] = 1.0

    def test_mmap_neighbors_match(self, bundle_dir, tiny_actor):
        mapped = load_bundle(bundle_dir, mmap=True)
        word = tiny_actor.built.vocab.words[0]
        original = tiny_actor.neighbors(
            tiny_actor.unit_vector("word", word), "word", k=5
        )
        served = mapped.neighbors(
            mapped.unit_vector("word", word), "word", k=5
        )
        assert [w for w, _s in original] == [w for w, _s in served]
