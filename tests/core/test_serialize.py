"""Tests for the portable (pickle-free) model bundle."""

import json

import numpy as np
import pytest

from repro.core.serialize import FORMAT_VERSION, QueryModel, load_bundle, save_bundle


@pytest.fixture(scope="module")
def bundle_dir(tiny_actor, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bundle") / "model"
    save_bundle(tiny_actor, directory)
    return directory


class TestSaveBundle:
    def test_writes_expected_files(self, bundle_dir):
        names = {p.name for p in bundle_dir.iterdir()}
        assert names == {
            "manifest.json", "embeddings.npz", "hotspots.npz",
            "nodes.json", "vocab.json",
        }

    def test_manifest_contents(self, bundle_dir, tiny_actor):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["dim"] == tiny_actor.dim
        assert manifest["n_nodes"] == tiny_actor.center.shape[0]
        assert manifest["config"]["dim"] == tiny_actor.config.dim

    def test_unfitted_model_rejected(self, tmp_path):
        from repro.core import Actor

        with pytest.raises(ValueError, match="unfitted"):
            save_bundle(Actor(), tmp_path / "x")

    def test_no_pickle_files(self, bundle_dir):
        for path in bundle_dir.iterdir():
            assert path.suffix in (".json", ".npz")


class TestLoadBundle:
    def test_roundtrip_embeddings(self, bundle_dir, tiny_actor):
        model = load_bundle(bundle_dir)
        np.testing.assert_array_equal(model.center, tiny_actor.center)
        np.testing.assert_array_equal(model.context, tiny_actor.context)

    def test_query_surface_identical(self, bundle_dir, tiny_actor, dataset):
        model = load_bundle(bundle_dir)
        record = dataset.test[0]
        candidates = [r.location for r in dataset.test.records[:6]]
        original = tiny_actor.score_candidates(
            target="location",
            candidates=candidates,
            time=record.timestamp,
            words=record.words,
        )
        restored = model.score_candidates(
            target="location",
            candidates=candidates,
            time=record.timestamp,
            words=record.words,
        )
        np.testing.assert_allclose(original, restored)

    def test_neighbor_search_identical(self, bundle_dir, tiny_actor):
        model = load_bundle(bundle_dir)
        word = tiny_actor.built.vocab.words[0]
        original = tiny_actor.neighbors(
            tiny_actor.unit_vector("word", word), "word", k=5
        )
        restored = model.neighbors(
            model.unit_vector("word", word), "word", k=5
        )
        assert [w for w, _s in original] == [w for w, _s in restored]

    def test_vocab_order_preserved(self, bundle_dir, tiny_actor):
        model = load_bundle(bundle_dir)
        assert model.built.vocab.words == tiny_actor.built.vocab.words

    def test_unknown_format_version_rejected(self, bundle_dir, tmp_path):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(bundle_dir, bad)
        manifest = json.loads((bad / "manifest.json").read_text())
        manifest["format_version"] = 999
        (bad / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported bundle format"):
            load_bundle(bad)

    def test_inconsistent_bundle_rejected(self, bundle_dir, tmp_path):
        import shutil

        bad = tmp_path / "inconsistent"
        shutil.copytree(bundle_dir, bad)
        nodes = json.loads((bad / "nodes.json").read_text())
        (bad / "nodes.json").write_text(json.dumps(nodes[:-1]))
        with pytest.raises(ValueError, match="mismatch"):
            load_bundle(bad)

    def test_loaded_model_is_query_model(self, bundle_dir):
        model = load_bundle(bundle_dir)
        assert isinstance(model, QueryModel)
        assert model.supports_time
        assert model.name == "ACTOR(bundle)"

    def test_bundle_roundtrips_itself(self, bundle_dir, tmp_path):
        """A loaded QueryModel can be re-serialized identically."""
        model = load_bundle(bundle_dir)
        second = tmp_path / "second"
        save_bundle(model, second)
        again = load_bundle(second)
        np.testing.assert_array_equal(model.center, again.center)
