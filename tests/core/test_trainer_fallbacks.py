"""Tests for graceful degradation on degenerate corpora."""

import numpy as np
import pytest

from repro.core import Actor, ActorConfig
from repro.data import Corpus, Record


def degenerate_corpus(words_per_record):
    """Records whose word bags all have exactly ``words_per_record`` words."""
    rng = np.random.default_rng(0)
    records = []
    for i in range(120):
        words = tuple(f"w{(i + j) % 6}" for j in range(words_per_record))
        records.append(
            Record(
                record_id=i,
                user=f"u{i % 8}",
                timestamp=float(rng.uniform(0, 24)) + 24.0 * (i % 10),
                location=(
                    float(rng.normal(2.0 + 4.0 * (i % 3), 0.2)),
                    float(rng.normal(2.0, 0.2)),
                ),
                words=words,
            )
        )
    return Corpus(records=records)


FAST = dict(
    dim=8,
    epochs=1,
    batches_per_epoch=2,
    vocab_min_count=1,
    min_hotspot_support=1,
    line_samples=1000,
    seed=0,
)


class TestBowFallbacks:
    def test_single_word_records_fall_back_on_ww(self, caplog):
        """No record has 2 words -> WW bag task falls back to plain edges.

        With one word per record there are no WW co-occurrences at all, so
        no WW task appears in any form — but LW/WT bag tasks still work.
        """
        model = Actor(ActorConfig(**FAST)).fit(degenerate_corpus(1))
        names = {t.name for t in model.trainer.tasks}
        assert "bow:LW" in names and "bow:WT" in names
        assert "bow:WW" not in names  # no 2-word records anywhere

    def test_two_word_records_get_full_bow(self):
        model = Actor(ActorConfig(**FAST)).fit(degenerate_corpus(2))
        names = {t.name for t in model.trainer.tasks}
        assert {"bow:LW", "bow:WT", "bow:WW"} <= names

    def test_wordless_corpus_trains_on_tl_only(self):
        """Records with no words at all: only TL (+user) structure remains."""
        corpus = Corpus(
            records=[
                Record(
                    record_id=i,
                    user=f"u{i % 4}",
                    timestamp=float(i % 24),
                    location=(float(i % 3), 0.0),
                    words=(),
                )
                for i in range(60)
            ]
        )
        model = Actor(ActorConfig(**FAST)).fit(corpus)
        names = {t.name for t in model.trainer.tasks}
        assert "plain:TL" in names
        assert not any("LW" in n or "WT" in n or "WW" in n for n in names)
        assert np.isfinite(model.center).all()
