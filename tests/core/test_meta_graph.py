"""Tests for meta-graph definitions and instance counting."""

import pytest

from repro.core import (
    ALL_META_GRAPHS,
    INTER_EDGE_TYPES,
    INTER_META_GRAPHS,
    INTRA_EDGE_TYPES,
    M0,
    MetaGraph,
    count_inter_instances,
)
from repro.data import Corpus, Record
from repro.graphs import EdgeType, GraphBuilder, NodeType
from repro.hotspots import HotspotDetector


class TestDefinitions:
    def test_edge_type_sets_match_paper(self):
        """Eq. 6: M_intra = {TL, LW, WT, WW}, M_inter = {UT, UW, UL}."""
        assert set(INTRA_EDGE_TYPES) == {
            EdgeType.TL, EdgeType.LW, EdgeType.WT, EdgeType.WW
        }
        assert set(INTER_EDGE_TYPES) == {
            EdgeType.UT, EdgeType.UW, EdgeType.UL
        }

    def test_seven_meta_graphs(self):
        assert len(ALL_META_GRAPHS) == 7
        assert ALL_META_GRAPHS[0] is M0

    def test_m0_is_intra(self):
        assert M0.kind == "intra"
        assert M0.unit_pair is None

    def test_inter_meta_graphs_cover_all_unit_pairs(self):
        pairs = {frozenset(m.unit_pair) for m in INTER_META_GRAPHS}
        units = [NodeType.TIME, NodeType.LOCATION, NodeType.WORD]
        expected = {
            frozenset({a, b}) for i, a in enumerate(units) for b in units[i:]
        }
        assert pairs == expected

    def test_m4_is_time_word(self):
        """Pinned by the paper's running example (T1 -> W2 via users)."""
        m4 = next(m for m in INTER_META_GRAPHS if m.name == "M4")
        assert frozenset(m4.unit_pair) == frozenset(
            {NodeType.TIME, NodeType.WORD}
        )

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MetaGraph(name="MX", kind="diagonal")

    def test_inter_requires_unit_pair(self):
        with pytest.raises(ValueError, match="unit_pair"):
            MetaGraph(name="MX", kind="inter")


class TestInstanceCounting:
    @pytest.fixture(scope="class")
    def built(self):
        """Fig. 1: B mentions A; A's record has 2 words, B's has 2 words."""
        corpus = Corpus(
            records=[
                Record(
                    record_id=0,
                    user="userA",
                    timestamp=15.0,
                    location=(0.0, 0.0),
                    words=("movie", "apes"),
                ),
                Record(
                    record_id=1,
                    user="userB",
                    timestamp=20.0,
                    location=(10.0, 10.0),
                    words=("theatre", "discount"),
                    mentions=("userA",),
                ),
            ]
        )
        from repro.data import Vocabulary

        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            vocab=Vocabulary(min_count=1),
            link_mentions=False,  # keep attachment counts easy to reason about
        )
        return builder.build(corpus)

    def test_m1_time_time(self, built):
        m1 = next(m for m in INTER_META_GRAPHS if m.name == "M1")
        # Each user attaches to exactly 1 temporal unit: 1 * 1 instances.
        assert count_inter_instances(built, m1) == 1

    def test_m3_word_word(self, built):
        m3 = next(m for m in INTER_META_GRAPHS if m.name == "M3")
        # 2 words on each side: 2 * 2 = 4.
        assert count_inter_instances(built, m3) == 4

    def test_m4_time_word_both_orientations(self, built):
        m4 = next(m for m in INTER_META_GRAPHS if m.name == "M4")
        # T_A x W_B + W_A x T_B = 1*2 + 2*1 = 4.
        assert count_inter_instances(built, m4) == 4

    def test_intra_meta_graph_rejected(self, built):
        with pytest.raises(ValueError, match="not an inter-record"):
            count_inter_instances(built, M0)

    def test_no_mentions_means_zero_instances(self):
        corpus = Corpus(
            records=[
                Record(
                    record_id=0,
                    user="solo",
                    timestamp=1.0,
                    location=(0.0, 0.0),
                    words=("alone",),
                )
            ]
        )
        built = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
        ).build(corpus)
        for meta in INTER_META_GRAPHS:
            assert count_inter_instances(built, meta) == 0
