"""Tests for the batched QueryEngine: exact rank parity with the scalar path.

The engine's contract is not "approximately the same ranking" — it is
bit-identical truth ranks against :func:`repro.eval.mrr.query_rank` for
every query, including the degenerate ones (out-of-vocabulary word bags,
queries snapping to hotspots that never became graph nodes, duplicate
candidates producing exact score ties).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Actor, ActorConfig, OnlineActor, QueryEngine
from repro.core.prediction import normalize_rows
from repro.core.query_engine import dedup_candidates
from repro.data import Record
from repro.data.records import Corpus
from repro.eval.mrr import make_queries, query_rank, query_ranks
from repro.eval import hits_at_k, mean_reciprocal_rank
from repro.hotspots import HotspotDetector
from repro.utils.metrics import MetricsRegistry

TARGETS = ("text", "location", "time")


def scalar_ranks(model, queries):
    return [query_rank(model, q) for q in queries]


@pytest.fixture(scope="module")
def query_sets(dataset):
    return {
        target: make_queries(
            dataset.test, target, n_noise=10, max_queries=60, seed=i
        )
        for i, target in enumerate(TARGETS)
    }


class TestRankParity:
    @pytest.mark.parametrize("target", TARGETS)
    def test_exact_parity_per_target(self, tiny_actor, query_sets, target):
        queries = query_sets[target]
        batched = tiny_actor.query_engine().rank_batch(queries)
        assert batched.tolist() == scalar_ranks(tiny_actor, queries)

    def test_exact_parity_mixed_targets(self, tiny_actor, query_sets):
        """rank_batch groups per-target internally but preserves order."""
        mixed = [q for triple in zip(*query_sets.values()) for q in triple]
        batched = tiny_actor.query_engine().rank_batch(mixed)
        assert batched.tolist() == scalar_ranks(tiny_actor, mixed)

    def test_exact_parity_with_oov_words(self, tiny_actor, query_sets):
        """Fully- and partially-OOV bags (zero / partial vectors) agree."""
        queries = []
        for q in query_sets["location"][:20]:
            words = ("never_in_vocab_1", "never_in_vocab_2", *q.words[:1])
            queries.append(type(q)(**{**q.__dict__, "words": words}))
        for q in query_sets["text"][:20]:
            candidates = [("never_in_vocab_3",)] + list(q.candidates)
            queries.append(
                type(q)(
                    **{
                        **q.__dict__,
                        "candidates": candidates,
                        "truth_index": q.truth_index + 1,
                    }
                )
            )
        batched = tiny_actor.query_engine().rank_batch(queries)
        assert batched.tolist() == scalar_ranks(tiny_actor, queries)

    def test_exact_parity_with_duplicate_candidates(
        self, tiny_actor, query_sets
    ):
        """Exact ties (bit-identical candidate vectors) resolve alike."""
        queries = []
        for q in query_sets["time"][:20]:
            candidates = list(q.candidates) + [q.candidates[q.truth_index]]
            queries.append(
                type(q)(**{**q.__dict__, "candidates": candidates})
            )
        batched = tiny_actor.query_engine().rank_batch(queries)
        assert batched.tolist() == scalar_ranks(tiny_actor, queries)

    def test_exact_parity_unseen_hotspots(self):
        """Queries snapping to node-less hotspots fall back to zero vectors
        identically on both paths (the ``index_map == -1`` branch)."""
        actor = _actor_with_phantom_hotspots()
        records = [
            Record(
                record_id=1000 + i,
                user="q",
                # Half the queries snap to the phantom night hotspot.
                timestamp=3.0 if i % 2 else 12.0,
                location=(9.0, 9.0) if i % 2 else (1.0, 1.0),
                words=("alpha", "beta"),
            )
            for i in range(12)
        ]
        corpus = Corpus.from_records(records)
        for target in TARGETS:
            queries = make_queries(corpus, target, n_noise=5, seed=0)
            batched = actor.query_engine().rank_batch(queries)
            assert batched.tolist() == scalar_ranks(actor, queries), target


def _actor_with_phantom_hotspots():
    """A fitted Actor whose detector knows hotspots the graph has no nodes
    for (simulating a detector refresh after hotspot drift)."""
    records = [
        Record(
            record_id=i,
            user=f"u{i % 3}",
            timestamp=12.0 + 24.0 * i + 0.1 * (i % 5),
            location=(1.0 + 0.05 * (i % 4), 1.0),
            words=("alpha", "beta", "gamma"),
        )
        for i in range(30)
    ]
    config = ActorConfig(
        dim=8,
        epochs=1,
        batches_per_epoch=2,
        line_samples=2_000,
        vocab_min_count=1,
        seed=3,
    )
    actor = Actor(config).fit(
        Corpus.from_records(records),
        detector=HotspotDetector.from_arrays(
            np.array([[1.0, 1.0]]), np.array([12.0])
        ),
    )
    actor.built.detector = HotspotDetector.from_arrays(
        np.array([[1.0, 1.0], [9.0, 9.0]]), np.array([12.0, 3.0])
    )
    return actor


class TestEvalIntegration:
    def test_query_ranks_batch_matches_scalar(self, tiny_actor, query_sets):
        queries = query_sets["text"]
        batched = query_ranks(tiny_actor, queries, batch=True)
        forced_scalar = query_ranks(tiny_actor, queries, batch=False)
        np.testing.assert_array_equal(batched, forced_scalar)

    def test_mrr_and_hits_identical_across_paths(
        self, tiny_actor, query_sets
    ):
        for queries in query_sets.values():
            assert mean_reciprocal_rank(
                tiny_actor, queries
            ) == mean_reciprocal_rank(tiny_actor, queries, batch=False)
            assert hits_at_k(tiny_actor, queries, 3) == hits_at_k(
                tiny_actor, queries, 3, batch=False
            )

    def test_engine_metric_helpers(self, tiny_actor, query_sets):
        engine = tiny_actor.query_engine()
        queries = query_sets["time"]
        assert engine.mean_reciprocal_rank(
            queries
        ) == mean_reciprocal_rank(tiny_actor, queries)
        assert engine.hits_at_k(queries, 1) == hits_at_k(
            tiny_actor, queries, 1
        )
        with pytest.raises(ValueError, match="non-empty"):
            engine.mean_reciprocal_rank([])
        with pytest.raises(ValueError, match="k must be"):
            engine.hits_at_k(queries, 0)

    def test_scalar_fallback_for_engineless_models(self, query_sets):
        """Models without a query_engine accessor take the scalar path."""

        class FlatScorer:
            def score_candidates(self, *, target, candidates, **_):
                return np.zeros(len(candidates))

        queries = query_sets["text"][:5]
        ranks = query_ranks(FlatScorer(), queries, batch=True)
        # All-zero scores: the truth's rank is its (1-based) position.
        assert ranks.tolist() == [q.truth_index + 1 for q in queries]


class TestBatchEmbedding:
    def test_embed_word_bags_matches_words_vector(self, tiny_actor, dataset):
        engine = tiny_actor.query_engine()
        bags = [r.words for r in dataset.test.records[:30]]
        bags += [(), ("never_in_vocab",)]
        batch = engine.embed_word_bags(bags)
        for row, bag in zip(batch, bags):
            np.testing.assert_array_equal(row, tiny_actor.words_vector(bag))

    def test_query_matrix_matches_query_vector(self, tiny_actor, query_sets):
        engine = tiny_actor.query_engine()
        for queries in query_sets.values():
            batch = engine.query_matrix(
                times=[q.time for q in queries],
                locations=[q.location for q in queries],
                words=[q.words for q in queries],
            )
            for row, q in zip(batch, queries):
                np.testing.assert_array_equal(
                    row,
                    tiny_actor.query_vector(
                        time=q.time, location=q.location, words=q.words
                    ),
                )

    def test_query_matrix_rejects_ragged_batches(self, tiny_actor):
        engine = tiny_actor.query_engine()
        with pytest.raises(ValueError, match="agree on length"):
            engine.query_matrix(times=[1.0, 2.0], words=[("a",)])
        with pytest.raises(ValueError, match="agree on length"):
            engine.query_matrix(times=[1.0], n_queries=3)

    def test_score_candidates_batch_block(self, tiny_actor, dataset):
        engine = tiny_actor.query_engine()
        records = dataset.test.records[:8]
        candidates = [r.location for r in records]
        block = engine.score_candidates_batch(
            target="location",
            candidates=candidates,
            times=[r.timestamp for r in records],
            words=[r.words for r in records],
        )
        assert block.shape == (len(records), len(candidates))
        for i, r in enumerate(records):
            scalar = tiny_actor.score_candidates(
                target="location",
                candidates=candidates,
                time=r.timestamp,
                words=r.words,
            )
            np.testing.assert_allclose(block[i], scalar, atol=1e-12)

    def test_candidate_matrix_rejects_bad_target(self, tiny_actor):
        with pytest.raises(ValueError, match="target"):
            tiny_actor.query_engine().candidate_matrix("user", ["bob"])


class TestMetricsWiring:
    def test_engine_records_timers_and_counter(self, tiny_actor, query_sets):
        registry = MetricsRegistry()
        engine = QueryEngine(tiny_actor, metrics=registry)
        queries = query_sets["location"][:10]
        engine.rank_batch(queries)
        assert registry.counter("query.queries").value == len(queries)
        assert registry.timer("query.embed").count == 1
        assert registry.timer("query.score").count == 1

    def test_engine_accessor_is_cached(self, tiny_actor):
        assert tiny_actor.query_engine() is tiny_actor.query_engine()

    def test_engine_pickles_after_stage_collection(self, tiny_actor, query_sets):
        # Models cache their engine, so ``Actor.save`` pickles it along;
        # the thread-local stage sink must not break that, even after
        # it has been exercised on this thread.
        import pickle

        engine = tiny_actor.query_engine()
        with engine.collect_stages() as stages:
            engine.rank_batch(query_sets["location"][:4])
        assert "score" in stages
        loaded = pickle.loads(pickle.dumps(engine))
        with loaded.collect_stages() as reloaded_stages:
            loaded.rank_batch(query_sets["location"][:4])
        assert "score" in reloaded_stages


class TestCacheInvalidation:
    def test_cache_reused_while_version_stands_still(self, tiny_actor):
        assert tiny_actor.modality_cache("word") is tiny_actor.modality_cache(
            "word"
        )

    def test_invalidate_bumps_version_and_rebuilds(self):
        actor = _actor_with_phantom_hotspots()
        before = actor.modality_cache("word")
        version = actor.query_version
        actor.invalidate_query_cache()
        assert actor.query_version == version + 1
        after = actor.modality_cache("word")
        assert after is not before
        np.testing.assert_array_equal(after.matrix, before.matrix)

    def test_center_replacement_invalidates(self):
        actor = _actor_with_phantom_hotspots()
        before = actor.modality_cache("time")
        actor.center = actor.center.copy()
        assert actor.modality_cache("time") is not before

    def test_partial_fit_invalidates_online_cache(self, tiny_actor, dataset):
        online = OnlineActor(tiny_actor, seed=0)
        engine = online.query_engine()
        queries = make_queries(
            dataset.test, "location", n_noise=10, max_queries=25, seed=4
        )
        engine.rank_batch(queries)
        stale = online.modality_cache("word")
        version = online.query_version
        online.partial_fit(dataset.test.records[:40])
        assert online.query_version > version
        assert online.modality_cache("word") is not stale
        # Post-update ranks still agree exactly with the scalar path.
        batched = engine.rank_batch(queries)
        assert batched.tolist() == scalar_ranks(online, queries)


class TestNeighborsCachePath:
    def test_neighbors_matches_full_sort(self, tiny_actor):
        keys, matrix = tiny_actor.modality_vectors("word")
        query = matrix[3]
        got = tiny_actor.neighbors(query, "word", k=5)
        norms = np.linalg.norm(matrix, axis=1)
        scores = (matrix @ (query / np.linalg.norm(query)))
        scores = np.divide(
            scores, norms, out=np.zeros_like(scores), where=norms > 0
        )
        expected = np.argsort(-scores, kind="stable")[:5]
        assert [k for k, _ in got] == [keys[i] for i in expected]
        assert got[0][0] == keys[3]

    def test_neighbors_zero_query_returns_zero_scores(self, tiny_actor):
        got = tiny_actor.neighbors(np.zeros(tiny_actor.dim), "word", k=3)
        assert len(got) == 3
        assert all(score == 0.0 for _, score in got)


class TestScoreRaggedBatch:
    """Parity contract of the serving path's per-request candidate lists."""

    def _requests(self, dataset, n=12):
        records = list(dataset.test)[: n + 1]
        requests = []
        for i, record in enumerate(records[:-1]):
            noise = records[i + 1]
            target = TARGETS[i % 3]
            if target == "text":
                candidates = [record.words, noise.words]
            elif target == "location":
                candidates = [record.location, noise.location, (0.0, 0.0)]
            else:
                candidates = [record.timestamp, noise.timestamp]
            requests.append(
                {
                    "target": target,
                    "candidates": candidates,
                    "time": None if target == "time" else record.timestamp,
                    "location": (
                        None if target == "location" else record.location
                    ),
                    "words": None if target == "text" else record.words,
                }
            )
        return requests

    @pytest.mark.parametrize("target", TARGETS)
    def test_batch_bit_identical_to_singles(self, tiny_actor, dataset, target):
        engine = tiny_actor.query_engine()
        group = [r for r in self._requests(dataset) if r["target"] == target]
        batched = engine.score_ragged_batch(
            target=target,
            candidates=[r["candidates"] for r in group],
            times=[r["time"] for r in group],
            locations=[r["location"] for r in group],
            words=[r["words"] for r in group],
        )
        for request, row in zip(group, batched):
            single = engine.score_ragged_batch(
                target=target,
                candidates=[request["candidates"]],
                times=[request["time"]],
                locations=[request["location"]],
                words=[request["words"]],
            )[0]
            assert row.tolist() == single.tolist()

    def test_ragged_lengths_split_correctly(self, tiny_actor):
        engine = tiny_actor.query_engine()
        candidates = [[1.0], [2.0, 3.0, 4.0], [5.0, 6.0]]
        rows = engine.score_ragged_batch(
            target="time",
            candidates=candidates,
            words=[("common_000",), ("common_001",), None],
            times=[None, None, 9.0],
        )
        assert [len(row) for row in rows] == [1, 3, 2]

    def test_oov_and_unseen_values_keep_parity(self, tiny_actor):
        engine = tiny_actor.query_engine()
        batched = engine.score_ragged_batch(
            target="time",
            candidates=[[1.0, 23.0], [12.0]],
            words=[("never_in_vocab_a",), ("never_in_vocab_b",)],
            locations=[(-500.0, 800.0), None],
        )
        for i in range(2):
            single = engine.score_ragged_batch(
                target="time",
                candidates=[[[1.0, 23.0], [12.0]][i]],
                words=[[("never_in_vocab_a",), ("never_in_vocab_b",)][i]],
                locations=[[(-500.0, 800.0), None][i]],
            )[0]
            assert batched[i].tolist() == single.tolist()

    def test_empty_candidate_list_rejected(self, tiny_actor):
        engine = tiny_actor.query_engine()
        with pytest.raises(ValueError, match="at least one candidate"):
            engine.score_ragged_batch(
                target="time", candidates=[[1.0], []], times=[2.0, 3.0]
            )

    def test_matches_shared_candidate_batch_path(self, tiny_actor):
        """Same candidates for every query ~= score_candidates_batch.

        The shared path scores with one GEMM (``queries @ cands.T``)
        while the ragged path uses row-wise einsum dots, so agreement is
        last-ulp, not bit-exact — bit-exactness is the ragged path's
        *self*-parity contract (the tests above), never a cross-path one.
        """
        engine = tiny_actor.query_engine()
        shared = [1.0, 9.0, 14.5, 22.0]
        words = [("common_000",), ("common_001",)]
        block = engine.score_candidates_batch(
            target="time", candidates=shared, words=words
        )
        ragged = engine.score_ragged_batch(
            target="time", candidates=[shared, shared], words=words
        )
        for i in range(2):
            np.testing.assert_allclose(
                ragged[i], block[i], rtol=1e-12, atol=1e-15
            )


class TestDedupCandidates:
    """The ragged-path candidate dedup: a pure gather optimization.

    Zipf-shaped serving traffic repeats hot candidates across coalesced
    requests; embedding each distinct value once and gathering rows back
    must be invisible — bit-identical scores, exact per-single parity.
    """

    def test_first_seen_order_and_inverse_reconstructs(self):
        flat = [3.0, 1.0, 3.0, (2.0, 4.0), 1.0, (2.0, 4.0)]
        unique, inverse = dedup_candidates(flat)
        assert unique == [3.0, 1.0, (2.0, 4.0)]
        assert [unique[i] for i in inverse] == flat

    def test_all_distinct_is_identity(self):
        flat = [1.0, 2.0, 3.0]
        unique, inverse = dedup_candidates(flat)
        assert unique == flat
        assert inverse.tolist() == [0, 1, 2]

    def test_unhashable_candidates_fall_back_to_content_key(self):
        flat = [np.array([1.0, 2.0]), [1.0, 2.0], np.array([3.0, 4.0])]
        unique, inverse = dedup_candidates(flat)
        # array and list with equal content share one embedding row
        assert len(unique) == 2
        assert inverse.tolist() == [0, 0, 1]

    def test_dedup_gather_bit_identical_to_undeduped_embed(self, tiny_actor):
        """Embed-unique-then-gather == embed-everything, bitwise."""
        engine = tiny_actor.query_engine()
        flat = [1.0, 9.0, 1.0, 14.5, 9.0, 9.0, 1.0]
        reference = normalize_rows(engine.candidate_matrix("time", flat))
        unique, inverse = dedup_candidates(flat)
        deduped = normalize_rows(
            engine.candidate_matrix("time", unique)
        )[inverse]
        np.testing.assert_array_equal(deduped, reference)

    @pytest.mark.parametrize(
        "target,candidates",
        [
            ("time", [[1.0, 1.0, 9.0], [9.0, 1.0], [1.0, 1.0]]),
            (
                "location",
                [
                    [(0.5, 0.5), (3.3, 7.7), (0.5, 0.5)],
                    [(0.5, 0.5)],
                    [(3.3, 7.7), (3.3, 7.7)],
                ],
            ),
            (
                "text",
                [
                    [("common_000",), ("common_001",), ("common_000",)],
                    [("common_001",), ("common_000",)],
                ],
            ),
        ],
    )
    def test_duplicate_heavy_batches_keep_per_single_parity(
        self, tiny_actor, target, candidates
    ):
        """Repeats within and across requests: still bit-exact singles."""
        engine = tiny_actor.query_engine()
        words = [("common_002",)] * len(candidates)
        batched = engine.score_ragged_batch(
            target=target, candidates=candidates, words=words
        )
        for i, group in enumerate(candidates):
            single = engine.score_ragged_batch(
                target=target, candidates=[group], words=[words[i]]
            )[0]
            assert batched[i].tolist() == single.tolist()

    def test_dedup_counter_records_savings(self, tiny_actor):
        engine = tiny_actor.query_engine()
        counter = engine.metrics.counter("query.candidates_deduped")
        before = counter.value
        engine.score_ragged_batch(
            target="time",
            candidates=[[1.0, 1.0, 1.0, 2.0]],
            words=[("common_000",)],
        )
        assert counter.value == before + 2  # 4 flat, 2 unique
