"""Integration tests: the full pipeline end-to-end, and the paper's
qualitative claims on synthetic ground truth.

These are the tests that justify calling this a reproduction: they verify
that the *learned embeddings* recover the latent structure the city
simulator planted — topic coherence, venue-location proximity, and the
high-order mention-mediated signal that distinguishes ACTOR from the
single-layer special case (CrossMap).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Actor, ActorConfig, CrossMap, generate_dataset
from repro.core import textual_query
from repro.core.prediction import cosine_similarities
from repro.eval import build_task_queries, evaluate_model


@pytest.fixture(scope="module")
def data():
    return generate_dataset("utgeo2011", n_records=3000, seed=13)


@pytest.fixture(scope="module")
def actor(data):
    config = ActorConfig(dim=48, epochs=15, line_samples=30_000, seed=1)
    return Actor(config).fit(data.train)


@pytest.fixture(scope="module")
def crossmap(data):
    return CrossMap(dim=48, epochs=15, seed=1).fit(data.train)


class TestEndToEnd:
    def test_actor_beats_chance_on_all_tasks(self, actor, data):
        queries = build_task_queries(
            data.test, n_noise=10, max_queries=80, seed=0
        )
        result = evaluate_model(actor, queries)
        chance = sum(1.0 / r for r in range(1, 12)) / 11  # ~0.274
        for task, mrr in result.items():
            assert mrr > chance + 0.1, f"{task} barely above chance: {mrr}"

    def test_actor_beats_crossmap_on_mention_dataset(
        self, actor, crossmap, data
    ):
        """The headline Table-2 shape: hierarchical embedding wins when the
        corpus carries mention structure."""
        queries = build_task_queries(
            data.test, n_noise=10, max_queries=150, seed=0
        )
        actor_result = evaluate_model(actor, queries)
        crossmap_result = evaluate_model(crossmap, queries)
        wins = sum(
            actor_result[t] > crossmap_result[t]
            for t in ("text", "location", "time")
        )
        assert wins >= 2, (actor_result, crossmap_result)


class TestEmbeddingRecoversGroundTruth:
    def test_same_topic_words_closer_than_cross_topic(self, actor, data):
        """Embedding coherence: intra-topic word similarity must exceed
        inter-topic similarity."""
        city = data.city
        vocab = actor.built.vocab
        per_topic_vecs = []
        for topic in city.topics[:6]:
            vecs = [
                actor.unit_vector("word", w)
                for w in topic.keywords[:8]
                if w in vocab
            ]
            vecs = [v for v in vecs if v is not None]
            if len(vecs) >= 3:
                per_topic_vecs.append(np.stack(vecs))
        assert len(per_topic_vecs) >= 3

        def mean_cos(a, b):
            a = a / np.linalg.norm(a, axis=1, keepdims=True)
            b = b / np.linalg.norm(b, axis=1, keepdims=True)
            sims = a @ b.T
            if a is b:
                mask = ~np.eye(len(a), dtype=bool)
                return sims[mask].mean()
            return sims.mean()

        within = np.mean([mean_cos(v, v) for v in per_topic_vecs])
        across = np.mean(
            [
                mean_cos(per_topic_vecs[i], per_topic_vecs[j])
                for i in range(len(per_topic_vecs))
                for j in range(i + 1, len(per_topic_vecs))
            ]
        )
        assert within > across + 0.05

    def test_venue_token_nearest_location_is_the_venue(self, actor, data):
        """Fig.-11 behaviour: a venue keyword's nearest spatial hotspots
        must lie near the actual venue."""
        city = data.city
        vocab = actor.built.vocab
        hotspots = actor.built.detector.spatial_hotspots
        checked = 0
        hits = 0
        for venue in city.venues:
            token = venue.name_token
            if token not in vocab:
                continue
            query = actor.unit_vector("word", token)
            top = actor.neighbors(query, "location", k=3)
            dists = [
                np.linalg.norm(hotspots[int(idx)] - np.asarray(venue.location))
                for idx, _score in top
            ]
            checked += 1
            if min(dists) < 3.0:
                hits += 1
            if checked >= 25:
                break
        assert checked >= 10
        assert hits / checked > 0.6

    def test_topic_peak_hour_nearest_temporal_unit(self, actor, data):
        """A topic keyword's nearest temporal hotspots should sit near the
        topic's peak hour."""
        city = data.city
        vocab = actor.built.vocab
        good = 0
        total = 0
        for topic in city.topics:
            signature = topic.keywords[0]
            if signature not in vocab:
                continue
            result = textual_query(actor, signature, k=3)
            best_hours = [h for h, _s in result.times]
            diffs = [
                min(abs(h - topic.peak_hour), 24 - abs(h - topic.peak_hour))
                for h in best_hours
            ]
            total += 1
            if min(diffs) < 3.0:
                good += 1
        assert total >= 5
        assert good / total > 0.6

    def test_mentioning_users_are_close(self, actor, data):
        """LINE pretraining: users who mention each other embed nearby."""
        interaction = actor.built.interaction
        emb = actor.user_embeddings
        assert emb is not None
        norm = emb / np.clip(
            np.linalg.norm(emb, axis=1, keepdims=True), 1e-12, None
        )
        edge_set = interaction.edge_set
        linked = np.mean(
            [
                float(norm[int(a)] @ norm[int(b)])
                for a, b in zip(edge_set.src[:200], edge_set.dst[:200])
            ]
        )
        rng = np.random.default_rng(0)
        n = interaction.n_users
        random_pairs = np.mean(
            [
                float(norm[rng.integers(n)] @ norm[rng.integers(n)])
                for _ in range(200)
            ]
        )
        assert linked > random_pairs

    def test_cross_modal_coherence(self, actor, data):
        """A topic's signature word must be closer to venues of its own
        topic than to venues of other topics (cross-modal proximity)."""
        city = data.city
        vocab = actor.built.vocab
        wins = 0
        total = 0
        for topic in city.topics[:8]:
            signature = topic.keywords[0]
            if signature not in vocab:
                continue
            query = actor.unit_vector("word", signature)
            own = [
                actor.unit_vector("location", v.location)
                for v in city.venues
                if v.topic_id == topic.topic_id
            ][:5]
            other = [
                actor.unit_vector("location", v.location)
                for v in city.venues
                if v.topic_id != topic.topic_id
            ][:15]
            own_sim = cosine_similarities(query, np.stack(own)).mean()
            other_sim = cosine_similarities(query, np.stack(other)).mean()
            total += 1
            if own_sim > other_sim:
                wins += 1
        assert total >= 5
        assert wins / total > 0.7
