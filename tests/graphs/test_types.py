"""Tests for the vertex/edge type system and EdgeSet container."""

import numpy as np
import pytest

from repro.graphs import EdgeSet, EdgeType, NodeType, edge_type_between


class TestEdgeTypeBetween:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (NodeType.TIME, NodeType.LOCATION, EdgeType.TL),
            (NodeType.LOCATION, NodeType.TIME, EdgeType.TL),
            (NodeType.LOCATION, NodeType.WORD, EdgeType.LW),
            (NodeType.WORD, NodeType.TIME, EdgeType.WT),
            (NodeType.WORD, NodeType.WORD, EdgeType.WW),
            (NodeType.USER, NodeType.TIME, EdgeType.UT),
            (NodeType.USER, NodeType.LOCATION, EdgeType.UL),
            (NodeType.USER, NodeType.WORD, EdgeType.UW),
            (NodeType.USER, NodeType.USER, EdgeType.UU),
            (NodeType.LOCATION, NodeType.LOCATION, EdgeType.LL),
            (NodeType.TIME, NodeType.TIME, EdgeType.TT),
        ],
    )
    def test_all_pairs(self, a, b, expected):
        assert edge_type_between(a, b) is expected

    def test_symmetric(self):
        for a in NodeType:
            for b in NodeType:
                assert edge_type_between(a, b) is edge_type_between(b, a)

    def test_endpoints_consistency(self):
        for edge_type in EdgeType:
            a, b = edge_type.endpoints
            assert edge_type_between(a, b) is edge_type


class TestEdgeSet:
    def test_basic_construction(self):
        es = EdgeSet(
            edge_type=EdgeType.TL,
            src=np.asarray([0, 1]),
            dst=np.asarray([2, 3]),
            weight=np.asarray([1.0, 2.0]),
        )
        assert len(es) == 2
        assert es.total_weight == pytest.approx(3.0)

    def test_dtype_coercion(self):
        es = EdgeSet(
            edge_type=EdgeType.WW,
            src=[0],
            dst=[1],
            weight=[1],
        )
        assert es.src.dtype == np.int64
        assert es.weight.dtype == np.float64

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            EdgeSet(
                edge_type=EdgeType.TL,
                src=np.asarray([0, 1]),
                dst=np.asarray([2]),
                weight=np.asarray([1.0]),
            )

    def test_rejects_2d_arrays(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            EdgeSet(
                edge_type=EdgeType.TL,
                src=np.zeros((2, 2), dtype=np.int64),
                dst=np.zeros((2, 2), dtype=np.int64),
                weight=np.ones((2, 2)),
            )

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError, match="strictly positive"):
            EdgeSet(
                edge_type=EdgeType.TL,
                src=np.asarray([0]),
                dst=np.asarray([1]),
                weight=np.asarray([0.0]),
            )

    def test_empty_edge_set_allowed(self):
        es = EdgeSet(
            edge_type=EdgeType.TL,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            weight=np.empty(0),
        )
        assert len(es) == 0
        assert es.total_weight == 0.0
