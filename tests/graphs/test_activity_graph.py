"""Tests for the heterogeneous activity graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import ActivityGraph, EdgeType, NodeType


@pytest.fixture
def tiny_graph():
    """T0-L0-{w1,w2} plus a user, mirroring Fig. 3a's left record."""
    g = ActivityGraph()
    t = g.add_node(NodeType.TIME, 0)
    l = g.add_node(NodeType.LOCATION, 0)
    w1 = g.add_node(NodeType.WORD, "harbor")
    w2 = g.add_node(NodeType.WORD, "dock")
    u = g.add_node(NodeType.USER, "alice")
    g.add_edge(t, l)
    g.add_edge(l, w1)
    g.add_edge(l, w2)
    g.add_edge(w1, t)
    g.add_edge(w1, w2)
    g.add_edge(u, t)
    g.add_edge(u, l)
    g.add_edge(u, w1)
    return g, dict(t=t, l=l, w1=w1, w2=w2, u=u)


class TestNodes:
    def test_add_node_is_idempotent(self):
        g = ActivityGraph()
        a = g.add_node(NodeType.WORD, "harbor")
        b = g.add_node(NodeType.WORD, "harbor")
        assert a == b
        assert len(g) == 1

    def test_same_key_different_type_distinct(self):
        g = ActivityGraph()
        a = g.add_node(NodeType.TIME, 0)
        b = g.add_node(NodeType.LOCATION, 0)
        assert a != b

    def test_index_of_missing_raises(self):
        g = ActivityGraph()
        with pytest.raises(KeyError):
            g.index_of(NodeType.WORD, "missing")

    def test_node_handle_roundtrip(self, tiny_graph):
        g, nodes = tiny_graph
        assert g.node_of(nodes["w1"]) == (NodeType.WORD, "harbor")
        assert g.type_of(nodes["t"]) is NodeType.TIME
        assert g.key_of(nodes["u"]) == "alice"

    def test_nodes_of_type(self, tiny_graph):
        g, nodes = tiny_graph
        words = g.nodes_of_type(NodeType.WORD)
        assert set(words.tolist()) == {nodes["w1"], nodes["w2"]}

    def test_counts_by_type(self, tiny_graph):
        g, _ = tiny_graph
        counts = g.counts_by_type()
        assert counts[NodeType.WORD] == 2
        assert counts[NodeType.USER] == 1


class TestEdges:
    def test_weight_accumulates(self):
        g = ActivityGraph()
        t = g.add_node(NodeType.TIME, 0)
        l = g.add_node(NodeType.LOCATION, 0)
        g.add_edge(t, l)
        g.add_edge(l, t)  # reversed order hits the same undirected edge
        assert g.edge_weight(t, l) == pytest.approx(2.0)

    def test_symmetric_type_orientation_collapses(self):
        g = ActivityGraph()
        w1 = g.add_node(NodeType.WORD, "a")
        w2 = g.add_node(NodeType.WORD, "b")
        g.add_edge(w1, w2)
        g.add_edge(w2, w1)
        assert g.edge_weight(w1, w2) == pytest.approx(2.0)
        g.finalize()
        assert len(g.edge_set(EdgeType.WW)) == 1

    def test_rejects_self_loop(self):
        g = ActivityGraph()
        w = g.add_node(NodeType.WORD, "a")
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(w, w)

    def test_rejects_nonpositive_weight(self):
        g = ActivityGraph()
        t = g.add_node(NodeType.TIME, 0)
        l = g.add_node(NodeType.LOCATION, 0)
        with pytest.raises(ValueError, match="positive"):
            g.add_edge(t, l, 0.0)

    def test_edge_weight_of_unconnectable_pair_is_zero(self, tiny_graph):
        g, nodes = tiny_graph
        assert g.edge_weight(nodes["w2"], nodes["t"]) == 0.0


class TestFinalize:
    def test_mutation_after_finalize_raises(self, tiny_graph):
        g, nodes = tiny_graph
        g.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            g.add_node(NodeType.WORD, "new")
        with pytest.raises(RuntimeError, match="finalized"):
            g.add_edge(nodes["t"], nodes["l"])

    def test_finalize_is_idempotent(self, tiny_graph):
        g, _ = tiny_graph
        g.finalize()
        sets_before = g.edge_sets
        g.finalize()
        assert g.edge_sets is sets_before

    def test_edge_sets_before_finalize_raise(self, tiny_graph):
        g, _ = tiny_graph
        with pytest.raises(RuntimeError, match="not finalized"):
            _ = g.edge_sets

    def test_canonical_src_side(self, tiny_graph):
        """In every typed edge set, src nodes have the first endpoint type."""
        g, _ = tiny_graph
        g.finalize()
        for edge_type, edge_set in g.edge_sets.items():
            first, second = edge_type.endpoints
            for s, d in zip(edge_set.src, edge_set.dst):
                assert g.type_of(int(s)) is first
                assert g.type_of(int(d)) is second

    def test_n_edges_counts_distinct_edges(self, tiny_graph):
        g, _ = tiny_graph
        assert g.n_edges == 8
        g.finalize()
        assert g.n_edges == 8

    def test_empty_type_returns_empty_edge_set(self, tiny_graph):
        g, _ = tiny_graph
        g.finalize()
        assert len(g.edge_set(EdgeType.UU)) == 0


class TestDegrees:
    def test_degree_counts_both_sides(self, tiny_graph):
        g, nodes = tiny_graph
        g.finalize()
        lw_deg = g.degrees(EdgeType.LW)
        assert lw_deg[nodes["l"]] == pytest.approx(2.0)  # two word neighbors
        assert lw_deg[nodes["w1"]] == pytest.approx(1.0)

    def test_degree_zero_for_uninvolved_nodes(self, tiny_graph):
        g, nodes = tiny_graph
        g.finalize()
        assert g.degrees(EdgeType.LW)[nodes["u"]] == 0.0

    def test_total_degree_sums_types(self, tiny_graph):
        g, nodes = tiny_graph
        g.finalize()
        total = g.total_degree()
        # w1 participates in LW(1) + WT(1) + WW(1) + UW(1) = 4
        assert total[nodes["w1"]] == pytest.approx(4.0)

    def test_degrees_of_absent_type_are_zeros(self, tiny_graph):
        g, _ = tiny_graph
        g.finalize()
        np.testing.assert_array_equal(g.degrees(EdgeType.UU), 0.0)


class TestNeighborsAndSummary:
    def test_neighbors(self, tiny_graph):
        g, nodes = tiny_graph
        g.finalize()
        neigh = g.neighbors(nodes["l"])
        assert set(neigh) == {nodes["t"], nodes["w1"], nodes["w2"], nodes["u"]}

    def test_summary_matches_counts(self, tiny_graph):
        g, _ = tiny_graph
        summary = g.summary()
        assert summary["n_nodes"] == 5
        assert summary["n_words"] == 2
        assert summary["n_users"] == 1

    @settings(max_examples=20, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_degree_equals_twice_total_weight(self, edges):
        g = ActivityGraph()
        words = [g.add_node(NodeType.WORD, f"w{i}") for i in range(6)]
        added = 0.0
        for a, b in edges:
            if a != b:
                g.add_edge(words[a], words[b])
                added += 1.0
        if added == 0:
            return
        g.finalize()
        degree_sum = g.degrees(EdgeType.WW).sum()
        assert degree_sum == pytest.approx(2.0 * added)
