"""Tests for the proximity definitions (paper Definitions 3-5)."""

import math

import numpy as np
import pytest

from repro.data import Corpus, Record, Vocabulary
from repro.graphs import GraphBuilder, NodeType
from repro.graphs.proximity import (
    adjacency_rows,
    first_order_proximity,
    meta_graph_proximity,
    second_order_proximity,
    second_order_proximity_matrix,
)
from repro.hotspots import HotspotDetector


def reference_second_order(graph, u, v):
    """The original pure-python shared-neighbor loop (Definition 4)."""
    neighbors_u = graph.neighbors(u)
    neighbors_v = graph.neighbors(v)
    if not neighbors_u or not neighbors_v:
        return 0.0
    shared = set(neighbors_u) & set(neighbors_v)
    dot = sum(neighbors_u[n] * neighbors_v[n] for n in shared)
    norm_u = math.sqrt(sum(w * w for w in neighbors_u.values()))
    norm_v = math.sqrt(sum(w * w for w in neighbors_v.values()))
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return dot / (norm_u * norm_v)


@pytest.fixture(scope="module")
def fig1_built():
    """The Fig. 1 / Fig. 3a situation: two records, B mentions A."""
    corpus = Corpus(
        records=[
            Record(
                record_id=0,
                user="userA",
                timestamp=15.0,
                location=(0.0, 0.0),
                words=("movie", "apes"),
            ),
            Record(
                record_id=1,
                user="userB",
                timestamp=20.0,
                location=(10.0, 10.0),
                words=("theatre", "discount"),
                mentions=("userA",),
            ),
        ]
    )
    return GraphBuilder(
        detector=HotspotDetector(
            spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
        ),
        vocab=Vocabulary(min_count=1),
        link_mentions=False,
    ).build(corpus)


class TestFirstOrder:
    def test_cooccurring_units_have_positive_proximity(self, fig1_built):
        activity = fig1_built.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        apes = activity.index_of(NodeType.WORD, "apes")
        assert first_order_proximity(activity, movie, apes) == 1.0

    def test_non_cooccurring_units_have_zero(self, fig1_built):
        activity = fig1_built.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        theatre = activity.index_of(NodeType.WORD, "theatre")
        assert first_order_proximity(activity, movie, theatre) == 0.0


class TestSecondOrder:
    def test_same_record_words_share_neighbors(self, fig1_built):
        """'movie' and 'apes' share T, L and the user -> high 2nd order."""
        activity = fig1_built.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        apes = activity.index_of(NodeType.WORD, "apes")
        theatre = activity.index_of(NodeType.WORD, "theatre")
        same_record = second_order_proximity(activity, movie, apes)
        cross_record = second_order_proximity(activity, movie, theatre)
        assert same_record > cross_record

    def test_symmetric(self, fig1_built):
        activity = fig1_built.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        apes = activity.index_of(NodeType.WORD, "apes")
        assert second_order_proximity(
            activity, movie, apes
        ) == pytest.approx(second_order_proximity(activity, apes, movie))

    def test_self_proximity_is_one(self, fig1_built):
        activity = fig1_built.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        assert second_order_proximity(activity, movie, movie) == pytest.approx(1.0)

    def test_bounded_in_unit_interval(self, fig1_built):
        activity = fig1_built.activity
        words = activity.nodes_of_type(NodeType.WORD)
        for u in words:
            for v in words:
                value = second_order_proximity(activity, int(u), int(v))
                assert -1e-9 <= value <= 1.0 + 1e-9

    def test_matches_pure_python_reference(self, fig1_built):
        """The vectorized adjacency-row cosine equals the neighbor-dict sum."""
        activity = fig1_built.activity
        n = activity.n_nodes
        for u in range(n):
            for v in range(n):
                assert second_order_proximity(
                    activity, u, v
                ) == pytest.approx(reference_second_order(activity, u, v))

    def test_adjacency_rows_match_neighbor_dicts(self, fig1_built):
        activity = fig1_built.activity
        rows = adjacency_rows(activity, np.arange(activity.n_nodes))
        for node in range(activity.n_nodes):
            expected = np.zeros(activity.n_nodes)
            for other, weight in activity.neighbors(node).items():
                expected[other] = weight
            np.testing.assert_allclose(rows[node], expected)

    def test_adjacency_rows_duplicate_nodes(self, fig1_built):
        activity = fig1_built.activity
        rows = adjacency_rows(activity, [2, 0, 2])
        np.testing.assert_array_equal(rows[0], rows[2])
        single = adjacency_rows(activity, [0])
        np.testing.assert_array_equal(rows[1], single[0])

    def test_matrix_matches_scalar_calls(self, fig1_built):
        activity = fig1_built.activity
        words = activity.nodes_of_type(NodeType.WORD).astype(int)
        block = second_order_proximity_matrix(activity, words)
        assert block.shape == (len(words), len(words))
        for i, u in enumerate(words):
            for j, v in enumerate(words):
                assert block[i, j] == pytest.approx(
                    second_order_proximity(activity, int(u), int(v))
                )

    def test_matrix_default_covers_all_nodes(self, fig1_built):
        activity = fig1_built.activity
        block = second_order_proximity_matrix(activity)
        assert block.shape == (activity.n_nodes, activity.n_nodes)
        np.testing.assert_allclose(block, block.T)
        # Every connected vertex is maximally similar to itself.
        np.testing.assert_allclose(np.diag(block), 1.0)


class TestMetaGraphProximity:
    def test_cross_record_units_connected_through_users(self, fig1_built):
        """The paper's example: T1 (A's time) ~ W2 (B's word) via the user
        interaction edge — high-order proximity that first/second order
        miss entirely."""
        activity = fig1_built.activity
        t_a = activity.index_of(
            NodeType.TIME, int(fig1_built.detector.assign_temporal([15.0])[0])
        )
        theatre = activity.index_of(NodeType.WORD, "theatre")
        assert first_order_proximity(activity, t_a, theatre) == 0.0
        assert meta_graph_proximity(fig1_built, t_a, theatre) > 0.0

    def test_orientation_symmetric(self, fig1_built):
        activity = fig1_built.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        theatre = activity.index_of(NodeType.WORD, "theatre")
        assert meta_graph_proximity(
            fig1_built, movie, theatre
        ) == pytest.approx(meta_graph_proximity(fig1_built, theatre, movie))

    def test_rejects_user_vertices(self, fig1_built):
        activity = fig1_built.activity
        user = activity.index_of(NodeType.USER, "userA")
        movie = activity.index_of(NodeType.WORD, "movie")
        with pytest.raises(ValueError, match="unit_x"):
            meta_graph_proximity(fig1_built, user, movie)
        with pytest.raises(ValueError, match="unit_y"):
            meta_graph_proximity(fig1_built, movie, user)

    def test_zero_without_interaction_edges(self):
        corpus = Corpus(
            records=[
                Record(
                    record_id=0,
                    user="solo",
                    timestamp=1.0,
                    location=(0.0, 0.0),
                    words=("alone", "quiet"),
                )
            ]
        )
        built = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            vocab=Vocabulary(min_count=1),
        ).build(corpus)
        activity = built.activity
        alone = activity.index_of(NodeType.WORD, "alone")
        quiet = activity.index_of(NodeType.WORD, "quiet")
        assert meta_graph_proximity(built, alone, quiet) == 0.0
