"""Tests for the homogeneous user interaction graph."""

import pytest

from repro.graphs import UserInteractionGraph


class TestUsers:
    def test_add_user_idempotent(self):
        g = UserInteractionGraph()
        assert g.add_user("alice") == g.add_user("alice")
        assert g.n_users == 1

    def test_index_of(self):
        g = UserInteractionGraph()
        g.add_user("alice")
        g.add_user("bob")
        assert g.index_of("bob") == 1
        assert g.has_user("alice")
        assert not g.has_user("carol")


class TestMentions:
    def test_mention_weight_accumulates(self):
        g = UserInteractionGraph()
        g.add_mention("alice", "bob")
        g.add_mention("bob", "alice")  # undirected: same edge
        g.add_mention("alice", "bob")
        assert g.mention_weight("alice", "bob") == pytest.approx(3.0)
        assert g.mention_weight("bob", "alice") == pytest.approx(3.0)

    def test_mention_registers_both_users(self):
        g = UserInteractionGraph()
        g.add_mention("alice", "bob")
        assert g.has_user("alice") and g.has_user("bob")

    def test_self_mention_ignored(self):
        g = UserInteractionGraph()
        g.add_mention("alice", "alice")
        assert g.n_edges == 0

    def test_unknown_users_have_zero_weight(self):
        g = UserInteractionGraph()
        assert g.mention_weight("x", "y") == 0.0


class TestFinalize:
    def test_degree_and_edge_set(self):
        g = UserInteractionGraph()
        g.add_mention("a", "b")
        g.add_mention("a", "c")
        g.add_mention("a", "b")
        g.finalize()
        assert len(g.edge_set) == 2
        assert g.degree[g.index_of("a")] == pytest.approx(3.0)
        assert g.degree[g.index_of("b")] == pytest.approx(2.0)
        assert g.degree[g.index_of("c")] == pytest.approx(1.0)

    def test_isolated_users(self):
        g = UserInteractionGraph()
        g.add_user("loner")
        g.add_mention("a", "b")
        g.finalize()
        assert g.isolated_users() == ["loner"]

    def test_empty_graph_finalizes(self):
        g = UserInteractionGraph()
        g.finalize()
        assert len(g.edge_set) == 0
        assert g.degree.shape == (0,)

    def test_mutation_after_finalize_raises(self):
        g = UserInteractionGraph()
        g.add_mention("a", "b")
        g.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            g.add_mention("a", "c")
        with pytest.raises(RuntimeError, match="finalized"):
            g.add_user("d")

    def test_access_before_finalize_raises(self):
        g = UserInteractionGraph()
        with pytest.raises(RuntimeError, match="not finalized"):
            _ = g.edge_set
        with pytest.raises(RuntimeError, match="not finalized"):
            _ = g.degree
