"""Tests for graph construction from a corpus (Algorithm 1, lines 1-2)."""

import numpy as np
import pytest

from repro.data import Corpus, Record
from repro.graphs import EdgeType, GraphBuilder, NodeType
from repro.hotspots import HotspotDetector


def two_record_corpus():
    """The Fig. 1 situation: B mentions A; records at two venues/hours."""
    return Corpus(
        records=[
            Record(
                record_id=0,
                user="userA",
                timestamp=15.25,
                location=(2.0, 2.0),
                words=("movie", "planet", "apes"),
            ),
            Record(
                record_id=1,
                user="userB",
                timestamp=20.5,
                location=(10.0, 10.0),
                words=("movie", "theatre", "discount"),
                mentions=("userA",),
            ),
        ]
        * 5  # replicate so hotspot min_support is met
    )


@pytest.fixture
def built_small():
    builder = GraphBuilder(
        detector=HotspotDetector(
            spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
        ),
    )
    return builder.build(two_record_corpus())


class TestBuild:
    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError, match="empty corpus"):
            GraphBuilder().build(Corpus())

    def test_node_types_present(self, built_small):
        counts = built_small.activity.counts_by_type()
        assert counts[NodeType.TIME] == 2
        assert counts[NodeType.LOCATION] == 2
        assert counts[NodeType.WORD] == 5
        assert counts[NodeType.USER] == 2

    def test_intra_edge_types_present(self, built_small):
        for edge_type in (EdgeType.TL, EdgeType.LW, EdgeType.WT, EdgeType.WW):
            assert len(built_small.activity.edge_set(edge_type)) > 0

    def test_user_edges_present(self, built_small):
        for edge_type in (EdgeType.UT, EdgeType.UL, EdgeType.UW):
            assert len(built_small.activity.edge_set(edge_type)) > 0

    def test_cooccurrence_weights_count_records(self, built_small):
        """The shared word 'movie' links to both locations 5x each."""
        activity = built_small.activity
        movie = activity.index_of(NodeType.WORD, "movie")
        lw = activity.edge_set(EdgeType.LW)
        weights = [
            w
            for s, d, w in zip(lw.src, lw.dst, lw.weight)
            if int(d) == movie
        ]
        assert sorted(weights) == [5.0, 5.0]

    def test_interaction_graph_from_mentions(self, built_small):
        interaction = built_small.interaction
        assert interaction.mention_weight("userB", "userA") == pytest.approx(5.0)

    def test_record_units_align_with_corpus(self, built_small):
        assert len(built_small.record_units) == 10
        activity = built_small.activity
        for units in built_small.record_units:
            assert activity.type_of(units.time_node) is NodeType.TIME
            assert activity.type_of(units.location_node) is NodeType.LOCATION
            for w in units.word_nodes:
                assert activity.type_of(w) is NodeType.WORD


class TestMentionLinking:
    def test_mentioned_user_linked_to_units(self):
        """link_mentions=True attaches the mentioned user to the record's
        units — the cross-record leg of the inter-record meta-graphs."""
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            link_mentions=True,
        )
        built = builder.build(two_record_corpus())
        activity = built.activity
        user_a = activity.index_of(NodeType.USER, "userA")
        theatre = activity.index_of(NodeType.WORD, "theatre")
        # userA never wrote 'theatre' but is mentioned in the record with it.
        assert activity.edge_weight(user_a, theatre) > 0

    def test_link_mentions_off(self):
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            link_mentions=False,
        )
        built = builder.build(two_record_corpus())
        activity = built.activity
        user_a = activity.index_of(NodeType.USER, "userA")
        theatre = activity.index_of(NodeType.WORD, "theatre")
        assert activity.edge_weight(user_a, theatre) == 0.0

    def test_include_users_false_builds_unit_only_graph(self):
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            include_users=False,
        )
        built = builder.build(two_record_corpus())
        assert built.activity.counts_by_type()[NodeType.USER] == 0
        assert len(built.activity.edge_set(EdgeType.UW)) == 0


class TestSmoothing:
    def test_neighbor_smoothing_adds_ll_tt(self):
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            neighbor_smoothing=True,
        )
        built = builder.build(two_record_corpus())
        assert len(built.activity.edge_set(EdgeType.LL)) > 0
        assert len(built.activity.edge_set(EdgeType.TT)) > 0

    def test_no_smoothing_by_default(self, built_small):
        assert len(built_small.activity.edge_set(EdgeType.LL)) == 0
        assert len(built_small.activity.edge_set(EdgeType.TT)) == 0


class TestVocabularyInteraction:
    def test_pruned_words_excluded_from_graph(self):
        from repro.data import Vocabulary

        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            vocab=Vocabulary(min_count=6),  # only 'movie' (10x) survives
        )
        built = builder.build(two_record_corpus())
        words = built.activity.nodes_of_type(NodeType.WORD)
        assert len(words) == 1
        assert built.activity.key_of(int(words[0])) == "movie"

    def test_ww_pairs_respect_max_words(self):
        corpus = Corpus(
            records=[
                Record(
                    record_id=0,
                    user="u",
                    timestamp=1.0,
                    location=(0.0, 0.0),
                    words=tuple(f"w{i}" for i in range(10)),
                )
            ]
            * 3
        )
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=1
            ),
            vocab=__import__("repro.data", fromlist=["Vocabulary"]).Vocabulary(
                min_count=1
            ),
            max_words_for_pairs=5,
        )
        built = builder.build(corpus)
        assert len(built.activity.edge_set(EdgeType.WW)) == 0


class TestOnRealisticCorpus:
    def test_build_on_synthetic_corpus(self, built):
        summary = built.activity.summary()
        assert summary["n_spatial"] > 1
        assert summary["n_temporal"] > 1
        assert summary["n_words"] > 10
        assert summary["n_users"] > 10
        assert summary["n_edges"] > summary["n_nodes"]

    def test_degrees_positive_where_edges_exist(self, built):
        activity = built.activity
        for edge_type, edge_set in activity.edge_sets.items():
            degrees = activity.degrees(edge_type)
            assert (degrees[edge_set.src] > 0).all()
            assert (degrees[edge_set.dst] > 0).all()
