"""Tests for typed edge sampling and the negative-noise distribution."""

import numpy as np
import pytest

from repro.embedding import NOISE_POWER, NoiseSampler, TypedEdgeSampler
from repro.graphs import EdgeSet, EdgeType


def simple_edge_set():
    """LW edges: locations {0,1}, words {10,11,12}, skewed weights."""
    return EdgeSet(
        edge_type=EdgeType.LW,
        src=np.asarray([0, 0, 1, 1]),
        dst=np.asarray([10, 11, 11, 12]),
        weight=np.asarray([4.0, 1.0, 1.0, 2.0]),
    )


class TestNoiseSampler:
    def test_samples_only_candidates(self):
        sampler = NoiseSampler(
            np.asarray([5, 9, 13]), np.asarray([1.0, 2.0, 3.0])
        )
        rng = np.random.default_rng(0)
        draws = sampler.sample((1000,), rng)
        assert set(np.unique(draws)) <= {5, 9, 13}

    def test_power_smoothing(self):
        """P(v) ∝ d^0.75: heavy nodes are under-sampled vs raw degree."""
        degrees = np.asarray([1.0, 100.0])
        sampler = NoiseSampler(np.asarray([0, 1]), degrees)
        rng = np.random.default_rng(1)
        draws = sampler.sample((100_000,), rng)
        freq1 = (draws == 1).mean()
        expected = degrees**NOISE_POWER / (degrees**NOISE_POWER).sum()
        raw = degrees / degrees.sum()
        assert freq1 == pytest.approx(expected[1], abs=0.01)
        assert freq1 < raw[1]  # smoothed below the raw-degree share

    def test_shape(self):
        sampler = NoiseSampler(np.asarray([0, 1]), np.asarray([1.0, 1.0]))
        rng = np.random.default_rng(2)
        assert sampler.sample((7, 3), rng).shape == (7, 3)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            NoiseSampler(np.asarray([0, 1]), np.asarray([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NoiseSampler(np.asarray([], dtype=np.int64), np.asarray([]))


class TestTypedEdgeSampler:
    def test_rejects_empty_edge_set(self):
        empty = EdgeSet(
            edge_type=EdgeType.LW,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            weight=np.empty(0),
        )
        with pytest.raises(ValueError, match="empty edge set"):
            TypedEdgeSampler(empty)

    def test_rejects_zero_negatives(self):
        with pytest.raises(ValueError, match="negatives"):
            TypedEdgeSampler(simple_edge_set(), negatives=0)

    def test_batch_shapes(self):
        sampler = TypedEdgeSampler(simple_edge_set(), negatives=3)
        batch = sampler.sample_batch(32, np.random.default_rng(0))
        assert batch.src.shape == (32,)
        assert batch.dst.shape == (32,)
        assert batch.neg.shape == (32, 3)

    def test_positive_pairs_are_real_edges(self):
        edge_set = simple_edge_set()
        real = {
            (int(s), int(d)) for s, d in zip(edge_set.src, edge_set.dst)
        }
        real |= {(d, s) for s, d in real}
        sampler = TypedEdgeSampler(edge_set, negatives=1)
        batch = sampler.sample_batch(200, np.random.default_rng(1))
        for s, d in zip(batch.src, batch.dst):
            assert (int(s), int(d)) in real

    def test_edge_sampling_proportional_to_weight(self):
        edge_set = simple_edge_set()
        sampler = TypedEdgeSampler(edge_set, negatives=1)
        rng = np.random.default_rng(2)
        batch = sampler.sample_batch(50_000, rng)
        # Edge (0, 10) has half the total weight.
        pair_count = sum(
            1
            for s, d in zip(batch.src, batch.dst)
            if {int(s), int(d)} == {0, 10}
        )
        assert pair_count / 50_000 == pytest.approx(0.5, abs=0.02)

    def test_negatives_come_from_context_side(self):
        """For an L->W oriented draw, negatives must be word nodes."""
        sampler = TypedEdgeSampler(simple_edge_set(), negatives=2)
        rng = np.random.default_rng(3)
        batch = sampler.sample_batch(500, rng)
        locations = {0, 1}
        words = {10, 11, 12}
        for s, negs in zip(batch.src, batch.neg):
            side = words if int(s) in locations else locations
            assert set(int(n) for n in negs) <= side

    def test_both_orientations_occur(self):
        sampler = TypedEdgeSampler(simple_edge_set(), negatives=1)
        batch = sampler.sample_batch(500, np.random.default_rng(4))
        sides = {int(s) in {0, 1} for s in batch.src}
        assert sides == {True, False}

    def test_oriented_sampling_dst_context(self):
        sampler = TypedEdgeSampler(simple_edge_set(), negatives=2)
        batch = sampler.sample_batch_oriented(
            200, np.random.default_rng(5), context_side="dst"
        )
        assert {int(s) for s in batch.src} <= {0, 1}
        assert {int(d) for d in batch.dst} <= {10, 11, 12}
        assert set(batch.neg.ravel().tolist()) <= {10, 11, 12}

    def test_oriented_sampling_src_context(self):
        sampler = TypedEdgeSampler(simple_edge_set(), negatives=2)
        batch = sampler.sample_batch_oriented(
            200, np.random.default_rng(6), context_side="src"
        )
        assert {int(s) for s in batch.src} <= {10, 11, 12}
        assert {int(d) for d in batch.dst} <= {0, 1}
        assert set(batch.neg.ravel().tolist()) <= {0, 1}

    def test_oriented_rejects_bad_side(self):
        sampler = TypedEdgeSampler(simple_edge_set())
        with pytest.raises(ValueError, match="context_side"):
            sampler.sample_batch_oriented(
                10, np.random.default_rng(0), context_side="middle"
            )
