"""Tests for shared-memory matrices and the fork-based Hogwild pool."""

import numpy as np
import pytest

from repro.embedding import (
    HogwildPool,
    SharedMatrix,
    TypedEdgeSampler,
    fork_available,
    sgns_batch_loss,
)
from repro.graphs import EdgeSet, EdgeType

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestSharedMatrix:
    def test_contents_copied(self):
        initial = np.arange(12, dtype=float).reshape(3, 4)
        with SharedMatrix(initial) as shared:
            np.testing.assert_array_equal(shared.array, initial)

    def test_mutations_visible_through_view(self):
        with SharedMatrix(np.zeros((2, 2))) as shared:
            shared.array[0, 0] = 7.0
            assert shared.copy()[0, 0] == 7.0

    def test_copy_is_private(self):
        with SharedMatrix(np.zeros((2, 2))) as shared:
            private = shared.copy()
            shared.array[0, 0] = 1.0
            assert private[0, 0] == 0.0

    def test_close_is_idempotent(self):
        shared = SharedMatrix(np.zeros((2, 2)))
        shared.close()
        shared.close()

    def test_dtype_coerced_to_float64(self):
        with SharedMatrix(np.ones((2, 2), dtype=np.float32)) as shared:
            assert shared.array.dtype == np.float64


def _edge_set():
    return EdgeSet(
        edge_type=EdgeType.LW,
        src=np.asarray([0, 0, 1, 1]),
        dst=np.asarray([4, 5, 5, 6]),
        weight=np.asarray([2.0, 1.0, 1.0, 2.0]),
    )


class _SimpleTask:
    """Minimal TrainTask-compatible object for pool tests."""

    def __init__(self):
        self.sampler = TypedEdgeSampler(_edge_set(), negatives=1)

    def step(self, center, context, batch_size, lr, rng):
        from repro.embedding import sgns_step

        batch = self.sampler.sample_batch(batch_size, rng)
        return sgns_step(center, context, batch.src, batch.dst, batch.neg, lr)


@needs_fork
class TestHogwildPool:
    def test_parallel_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        init_center = rng.uniform(-0.1, 0.1, size=(8, 6))
        init_context = rng.uniform(-0.1, 0.1, size=(8, 6))
        task = _SimpleTask()
        edge_set = _edge_set()
        neg = rng.integers(0, 8, size=(len(edge_set), 1))
        loss_before = sgns_batch_loss(
            init_center, init_context, edge_set.src, edge_set.dst, neg
        )
        with SharedMatrix(init_center) as sc, SharedMatrix(init_context) as sx:
            with HogwildPool(
                [task], sc.array, sx.array, batch_size=16, n_workers=2, seed=0
            ) as pool:
                pool.run_task(0, n_steps=200, lr=0.1)
            center, context = sc.copy(), sx.copy()
        loss_after = sgns_batch_loss(
            center, context, edge_set.src, edge_set.dst, neg
        )
        assert loss_after < loss_before
        assert not np.array_equal(center, init_center)

    def test_run_returns_mean_loss(self):
        task = _SimpleTask()
        with SharedMatrix(np.zeros((8, 4))) as sc, SharedMatrix(
            np.zeros((8, 4))
        ) as sx:
            with HogwildPool(
                [task], sc.array, sx.array, batch_size=8, n_workers=2, seed=1
            ) as pool:
                loss = pool.run_task(0, n_steps=10, lr=0.05)
        assert np.isfinite(loss)
        assert loss > 0

    def test_zero_steps_noop(self):
        task = _SimpleTask()
        with SharedMatrix(np.zeros((8, 4))) as sc, SharedMatrix(
            np.zeros((8, 4))
        ) as sx:
            with HogwildPool(
                [task], sc.array, sx.array, batch_size=8, n_workers=2, seed=1
            ) as pool:
                assert pool.run_task(0, n_steps=0, lr=0.05) == 0.0

    def test_closed_pool_rejects_work(self):
        task = _SimpleTask()
        with SharedMatrix(np.zeros((8, 4))) as sc, SharedMatrix(
            np.zeros((8, 4))
        ) as sx:
            pool = HogwildPool(
                [task], sc.array, sx.array, batch_size=8, n_workers=1, seed=0
            )
            pool.close()
            with pytest.raises(RuntimeError, match="closed"):
                pool.run_task(0, 1, 0.01)

    def test_worker_exception_propagates(self):
        class BoomTask:
            def step(self, *args):
                raise ValueError("boom in worker")

        with SharedMatrix(np.zeros((4, 2))) as sc, SharedMatrix(
            np.zeros((4, 2))
        ) as sx:
            with HogwildPool(
                [BoomTask()], sc.array, sx.array, batch_size=4, n_workers=2,
                seed=0,
            ) as pool:
                with pytest.raises(ValueError, match="boom in worker"):
                    pool.run_task(0, 4, 0.01)

    def test_rejects_zero_workers(self):
        with SharedMatrix(np.zeros((4, 2))) as sc, SharedMatrix(
            np.zeros((4, 2))
        ) as sx:
            with pytest.raises(ValueError, match="n_workers"):
                HogwildPool(
                    [_SimpleTask()], sc.array, sx.array,
                    batch_size=4, n_workers=0,
                )

    def test_start_failure_terminates_started_workers(self, monkeypatch):
        """A mid-loop start failure must not strand already-forked workers."""
        import multiprocessing.context as mpc

        started = []

        class FlakyProcess(mpc.ForkProcess):
            def start(self):
                if started:
                    raise OSError("simulated fork failure")
                super().start()
                started.append(self)

        monkeypatch.setattr(mpc.ForkContext, "Process", FlakyProcess)
        with SharedMatrix(np.zeros((4, 2))) as sc, SharedMatrix(
            np.zeros((4, 2))
        ) as sx:
            with pytest.raises(OSError, match="simulated fork failure"):
                HogwildPool(
                    [_SimpleTask()], sc.array, sx.array,
                    batch_size=4, n_workers=2, seed=0,
                )
        assert started  # the first worker really did come up
        for proc in started:
            assert not proc.is_alive()
