"""Tests for the Hogwild thread runner."""

import threading

import numpy as np
import pytest

from repro.embedding import hogwild_run


class TestHogwildRun:
    def test_single_thread_runs_all_steps(self):
        counter = []

        def step(rng):
            counter.append(1)
            return 1.0

        loss = hogwild_run(step, 10, n_threads=1, seed=0)
        assert len(counter) == 10
        assert loss == pytest.approx(1.0)

    def test_zero_steps(self):
        assert hogwild_run(lambda rng: 1.0, 0, n_threads=2) == 0.0

    def test_multi_thread_step_count(self):
        lock = threading.Lock()
        count = [0]

        def step(rng):
            with lock:
                count[0] += 1
            return 0.5

        loss = hogwild_run(step, 17, n_threads=4, seed=0)
        assert count[0] == 17
        assert loss == pytest.approx(0.5)

    def test_workers_get_distinct_rngs(self):
        seen = []
        lock = threading.Lock()

        def step(rng):
            with lock:
                seen.append(float(rng.random()))
            return 0.0

        hogwild_run(step, 8, n_threads=4, seed=1)
        assert len(set(seen)) == len(seen)  # no duplicated streams

    def test_shared_array_updates_land(self):
        shared = np.zeros(1)
        lock = threading.Lock()

        def step(rng):
            with lock:  # locked so the count is exact for the assertion
                shared[0] += 1.0
            return 0.0

        hogwild_run(step, 100, n_threads=3, seed=0)
        assert shared[0] == 100.0

    def test_worker_exception_propagates(self):
        def step(rng):
            raise RuntimeError("worker boom")

        with pytest.raises(RuntimeError, match="worker boom"):
            hogwild_run(step, 4, n_threads=2, seed=0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            hogwild_run(lambda rng: 0.0, -1)
        with pytest.raises(ValueError):
            hogwild_run(lambda rng: 0.0, 1, n_threads=0)

    def test_single_thread_reproducible(self):
        def make_step(log):
            def step(rng):
                log.append(float(rng.random()))
                return 0.0

            return step

        log_a, log_b = [], []
        hogwild_run(make_step(log_a), 5, n_threads=1, seed=9)
        hogwild_run(make_step(log_b), 5, n_threads=1, seed=9)
        assert log_a == log_b
