"""Tests for the LINE embedding substrate."""

import numpy as np
import pytest

from repro.embedding import LineEmbedding, merge_edge_sets
from repro.graphs import EdgeSet, EdgeType, UserInteractionGraph


def two_communities(n_per=6, seed=0):
    """Interaction graph with two dense mention communities."""
    rng = np.random.default_rng(seed)
    g = UserInteractionGraph()
    for base in (0, n_per):
        members = [f"u{base + i}" for i in range(n_per)]
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if rng.random() < 0.8:
                    g.add_mention(a, b, weight=float(rng.integers(1, 4)))
    # one weak cross-community link so the graph is connected
    g.add_mention("u0", f"u{n_per}", weight=0.2)
    g.finalize()
    return g


class TestMergeEdgeSets:
    def test_concatenates(self):
        a = EdgeSet(
            edge_type=EdgeType.TL,
            src=np.asarray([0]), dst=np.asarray([1]), weight=np.asarray([1.0]),
        )
        b = EdgeSet(
            edge_type=EdgeType.LW,
            src=np.asarray([2]), dst=np.asarray([3]), weight=np.asarray([2.0]),
        )
        merged = merge_edge_sets([a, b])
        assert len(merged) == 2
        assert merged.total_weight == pytest.approx(3.0)

    def test_skips_empty_sets(self):
        a = EdgeSet(
            edge_type=EdgeType.TL,
            src=np.asarray([0]), dst=np.asarray([1]), weight=np.asarray([1.0]),
        )
        empty = EdgeSet(
            edge_type=EdgeType.WW,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            weight=np.empty(0),
        )
        assert len(merge_edge_sets([a, empty])) == 1

    def test_all_empty_raises(self):
        empty = EdgeSet(
            edge_type=EdgeType.WW,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            weight=np.empty(0),
        )
        with pytest.raises(ValueError, match="all edge sets are empty"):
            merge_edge_sets([empty])


class TestLineEmbedding:
    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            LineEmbedding(8, order=3)

    def test_unfitted_vector_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LineEmbedding(8).vector(0)

    def test_fit_shapes(self):
        g = two_communities()
        line = LineEmbedding(16).fit(
            g.edge_set, g.n_users, n_samples=20_000, seed=0
        )
        assert line.embeddings.shape == (g.n_users, 16)
        assert line.context.shape == (g.n_users, 16)

    def test_first_order_shares_matrices(self):
        g = two_communities()
        line = LineEmbedding(8, order=1).fit(
            g.edge_set, g.n_users, n_samples=5_000, seed=0
        )
        assert line.context is line.embeddings

    def test_communities_separate_in_embedding_space(self):
        """Second-order LINE must place same-community users closer."""
        n_per = 6
        g = two_communities(n_per=n_per)
        line = LineEmbedding(16, negatives=5).fit(
            g.edge_set, g.n_users, n_samples=60_000, seed=0
        )
        emb = line.embeddings / np.linalg.norm(
            line.embeddings, axis=1, keepdims=True
        )
        idx = {name: g.index_of(name) for name in g.users}
        within, across = [], []
        for i in range(n_per):
            for j in range(i + 1, n_per):
                within.append(
                    float(emb[idx[f"u{i}"]] @ emb[idx[f"u{j}"]])
                )
                across.append(
                    float(emb[idx[f"u{i}"]] @ emb[idx[f"u{n_per + j}"]])
                )
        assert np.mean(within) > np.mean(across)

    def test_seeded_reproducibility(self):
        g = two_communities()
        a = LineEmbedding(8).fit(g.edge_set, g.n_users, n_samples=3_000, seed=4)
        b = LineEmbedding(8).fit(g.edge_set, g.n_users, n_samples=3_000, seed=4)
        np.testing.assert_array_equal(a.embeddings, b.embeddings)

    def test_embeddings_finite(self):
        g = two_communities()
        line = LineEmbedding(8, lr=0.1).fit(
            g.edge_set, g.n_users, n_samples=10_000, seed=0
        )
        assert np.isfinite(line.embeddings).all()
