"""Tests for the alias sampling method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import AliasTable


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            AliasTable(np.empty(0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            AliasTable(np.asarray([1.0, -0.5]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="not all be zero"):
            AliasTable(np.zeros(3))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            AliasTable(np.ones((2, 2)))

    def test_probabilities_normalized(self):
        table = AliasTable(np.asarray([2.0, 6.0]))
        np.testing.assert_allclose(table.probabilities, [0.25, 0.75])


class TestSampling:
    def test_single_outcome(self):
        table = AliasTable(np.asarray([5.0]))
        assert (table.sample(100, seed=0) == 0).all()

    def test_zero_weight_never_drawn(self):
        table = AliasTable(np.asarray([1.0, 0.0, 1.0]))
        draws = table.sample(5000, seed=0)
        assert 1 not in draws

    def test_empirical_distribution_matches(self):
        weights = np.asarray([1.0, 2.0, 3.0, 4.0])
        table = AliasTable(weights)
        draws = table.sample(100_000, seed=1)
        freq = np.bincount(draws, minlength=4) / draws.size
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.01)

    def test_seeded_reproducibility(self):
        table = AliasTable(np.asarray([1.0, 2.0]))
        np.testing.assert_array_equal(
            table.sample(50, seed=7), table.sample(50, seed=7)
        )

    def test_sample_zero(self):
        table = AliasTable(np.asarray([1.0]))
        assert table.sample(0, seed=0).shape == (0,)

    def test_sample_negative_raises(self):
        table = AliasTable(np.asarray([1.0]))
        with pytest.raises(ValueError):
            table.sample(-1)

    def test_sample_one(self):
        table = AliasTable(np.asarray([1.0, 1.0]))
        value = table.sample_one(seed=3)
        assert value in (0, 1)

    def test_generator_seed_advances_stream(self):
        rng = np.random.default_rng(0)
        table = AliasTable(np.asarray([1.0, 1.0]))
        a = table.sample(20, seed=rng)
        b = table.sample(20, seed=rng)
        assert not np.array_equal(a, b)

    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=50,
        ).filter(lambda w: sum(w) > 0)
    )
    def test_property_draws_in_range_and_supported(self, weights):
        weights_arr = np.asarray(weights)
        table = AliasTable(weights_arr)
        draws = table.sample(500, seed=0)
        assert ((draws >= 0) & (draws < len(weights))).all()
        assert (weights_arr[draws] > 0).all()  # zero weights never appear

    @settings(max_examples=10, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=10
        ),
        seed=st.integers(0, 100),
    )
    def test_property_chi_square_sanity(self, weights, seed):
        """Empirical frequencies stay within a loose tolerance of truth."""
        weights_arr = np.asarray(weights)
        table = AliasTable(weights_arr)
        n = 20_000
        draws = table.sample(n, seed=seed)
        freq = np.bincount(draws, minlength=len(weights)) / n
        expected = weights_arr / weights_arr.sum()
        assert np.abs(freq - expected).max() < 0.03
