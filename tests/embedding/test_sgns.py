"""Tests for the SGNS update kernels (Eqs. 7-14 of the paper)."""

import numpy as np
import pytest

from repro.embedding import sgns_batch_loss, sgns_step, sgns_step_bow, sigmoid


def init(n=10, d=8, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(-0.1, 0.1, size=(n, d)),
        rng.uniform(-0.1, 0.1, size=(n, d)),
    )


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.asarray([0.0]))[0] == pytest.approx(0.5)

    def test_monotone(self):
        values = sigmoid(np.asarray([-2.0, 0.0, 2.0]))
        assert values[0] < values[1] < values[2]

    def test_extreme_inputs_stay_finite(self):
        values = sigmoid(np.asarray([-1e9, 1e9]))
        assert np.isfinite(values).all()
        assert 0.0 < values[0] < values[1] < 1.0


class TestSgnsStep:
    def test_loss_decreases_on_repeated_updates(self):
        center, context = init()
        src = np.asarray([0, 1, 2])
        dst = np.asarray([3, 4, 5])
        neg = np.asarray([[6], [7], [8]])
        before = sgns_batch_loss(center, context, src, dst, neg)
        for _ in range(200):
            sgns_step(center, context, src, dst, neg, lr=0.1)
        after = sgns_batch_loss(center, context, src, dst, neg)
        assert after < before

    def test_positive_pair_similarity_grows(self):
        center, context = init()
        src, dst, neg = np.asarray([0]), np.asarray([1]), np.asarray([[2]])
        before = float(center[0] @ context[1])
        for _ in range(100):
            sgns_step(center, context, src, dst, neg, lr=0.1)
        assert float(center[0] @ context[1]) > before

    def test_negative_similarity_shrinks(self):
        center, context = init()
        src, dst, neg = np.asarray([0]), np.asarray([1]), np.asarray([[2]])
        for _ in range(100):
            sgns_step(center, context, src, dst, neg, lr=0.1)
        assert float(center[0] @ context[2]) < float(center[0] @ context[1])

    def test_untouched_rows_unchanged(self):
        center, context = init()
        center_copy, context_copy = center.copy(), context.copy()
        sgns_step(
            center, context,
            np.asarray([0]), np.asarray([1]), np.asarray([[2]]), lr=0.1,
        )
        np.testing.assert_array_equal(center[3:], center_copy[3:])
        np.testing.assert_array_equal(context[0], context_copy[0])
        np.testing.assert_array_equal(context[3:], context_copy[3:])

    def test_duplicate_indices_accumulate(self):
        """np.add.at semantics: two identical edges apply two gradients."""
        center_a, context_a = init(seed=1)
        center_b, context_b = init(seed=1)
        # one batch with the edge twice
        sgns_step(
            center_a, context_a,
            np.asarray([0, 0]), np.asarray([1, 1]), np.asarray([[2], [2]]),
            lr=0.05,
        )
        # two sequential single-edge batches (not identical math — gradients
        # recomputed — but the single-batch duplicate must move farther than
        # one single-edge update)
        sgns_step(
            center_b, context_b,
            np.asarray([0]), np.asarray([1]), np.asarray([[2]]), lr=0.05,
        )
        moved_a = np.linalg.norm(center_a[0])
        moved_b = np.linalg.norm(center_b[0])
        assert moved_a != pytest.approx(moved_b)

    def test_multiple_negatives_shape(self):
        center, context = init()
        loss = sgns_step(
            center, context,
            np.asarray([0, 1]), np.asarray([2, 3]),
            np.asarray([[4, 5, 6], [7, 8, 9]]), lr=0.01,
        )
        assert np.isfinite(loss)

    def test_returns_finite_loss(self):
        center, context = init()
        loss = sgns_step(
            center, context,
            np.asarray([0]), np.asarray([1]), np.asarray([[2]]), lr=0.01,
        )
        assert loss > 0


class TestSgnsStepBow:
    def test_bag_predicts_unit(self):
        center, context = init(n=12)
        flat = np.asarray([0, 1, 2, 3, 4])
        offsets = np.asarray([0, 3, 5])  # bags {0,1,2} and {3,4}
        dst = np.asarray([10, 11])
        neg = np.asarray([[9], [8]])
        before = float((center[0] + center[1] + center[2]) @ context[10])
        for _ in range(100):
            sgns_step_bow(center, context, flat, offsets, dst, neg, lr=0.05)
        after = float((center[0] + center[1] + center[2]) @ context[10])
        assert after > before

    def test_every_bag_word_receives_gradient(self):
        center, context = init(n=12)
        original = center.copy()
        flat = np.asarray([0, 1, 2])
        offsets = np.asarray([0, 3])
        sgns_step_bow(
            center, context, flat, offsets,
            np.asarray([10]), np.asarray([[9]]), lr=0.1,
        )
        for w in (0, 1, 2):
            assert not np.array_equal(center[w], original[w])
        np.testing.assert_array_equal(center[3], original[3])

    def test_rejects_empty_bag(self):
        center, context = init()
        with pytest.raises(ValueError, match="non-empty"):
            sgns_step_bow(
                center, context,
                np.asarray([0]), np.asarray([0, 0, 1]),
                np.asarray([2, 3]), np.asarray([[4], [5]]), lr=0.1,
            )

    def test_rejects_offset_length_mismatch(self):
        center, context = init()
        with pytest.raises(ValueError, match="offsets"):
            sgns_step_bow(
                center, context,
                np.asarray([0]), np.asarray([0, 1]),
                np.asarray([2, 3]), np.asarray([[4], [5]]), lr=0.1,
            )

    def test_loss_finite(self):
        center, context = init()
        loss = sgns_step_bow(
            center, context,
            np.asarray([0, 1]), np.asarray([0, 2]),
            np.asarray([5]), np.asarray([[6]]), lr=0.01,
        )
        assert np.isfinite(loss)
        assert loss > 0


class TestGradientCheck:
    """Numerical gradient check of the J_NEG objective (Eqs. 8-10)."""

    @staticmethod
    def loss_fn(center, context, src, dst, neg):
        x_i, x_j, x_k = center[src], context[dst], context[neg]
        pos = sigmoid(np.einsum("bd,bd->b", x_i, x_j))
        negs = sigmoid(-np.einsum("bkd,bd->bk", x_k, x_i))
        return float(-np.log(pos).sum() - np.log(negs).sum())

    def test_center_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        center = rng.normal(0, 0.5, size=(4, 3))
        context = rng.normal(0, 0.5, size=(4, 3))
        src, dst, neg = np.asarray([0]), np.asarray([1]), np.asarray([[2]])

        updated = center.copy()
        lr = 1e-6
        sgns_step(updated, context.copy(), src, dst, neg, lr=lr)
        analytic = (center - updated)[0] / lr  # = +grad

        numeric = np.zeros(3)
        eps = 1e-6
        for d in range(3):
            plus, minus = center.copy(), center.copy()
            plus[0, d] += eps
            minus[0, d] -= eps
            numeric[d] = (
                self.loss_fn(plus, context, src, dst, neg)
                - self.loss_fn(minus, context, src, dst, neg)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)

    def test_context_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        center = rng.normal(0, 0.5, size=(4, 3))
        context = rng.normal(0, 0.5, size=(4, 3))
        src, dst, neg = np.asarray([0]), np.asarray([1]), np.asarray([[2]])

        updated = context.copy()
        lr = 1e-6
        sgns_step(center.copy(), updated, src, dst, neg, lr=lr)
        analytic_pos = (context - updated)[1] / lr
        analytic_neg = (context - updated)[2] / lr

        eps = 1e-6
        for row, analytic in ((1, analytic_pos), (2, analytic_neg)):
            numeric = np.zeros(3)
            for d in range(3):
                plus, minus = context.copy(), context.copy()
                plus[row, d] += eps
                minus[row, d] -= eps
                numeric[d] = (
                    self.loss_fn(center, plus, src, dst, neg)
                    - self.loss_fn(center, minus, src, dst, neg)
                ) / (2 * eps)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)
