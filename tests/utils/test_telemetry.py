"""Tests for the Prometheus/trace telemetry exporter."""

from pathlib import Path

import pytest

from repro.utils.metrics import MetricsRegistry
from repro.utils.telemetry import (
    ALERTS_FILENAME,
    METRICS_FILENAME,
    REQUESTS_FILENAME,
    SLOW_QUERY_FILENAME,
    TRACE_FILENAME,
    prometheus_name,
    read_telemetry,
    render_prometheus,
    render_span_tree,
    render_trace_summary,
    summarize_trace,
    write_telemetry,
)
from repro.utils.tracing import NULL_TRACER, Tracer

GOLDEN = Path(__file__).parent / "data" / "golden_metrics.prom"


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("query.queries").inc(3)
    registry.gauge("buffer.occupancy").set(0.25)
    timer = registry.timer("stream.ingest")
    timer.observe(0.25)
    timer.observe(0.5)
    hist = registry.histogram("query.batch_seconds", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 20.0):
        hist.observe(value)
    return registry


class TestNaming:
    def test_dots_become_underscores(self):
        assert prometheus_name("query.rank_batch") == "repro_query_rank_batch"

    def test_invalid_chars_collapse(self):
        assert prometheus_name("a..b--c") == "repro_a_b_c"

    def test_custom_and_empty_namespace(self):
        assert prometheus_name("x", namespace="app") == "app_x"
        assert prometheus_name("x", namespace="") == "x"

    def test_degenerate_name_rejected(self):
        with pytest.raises(ValueError, match="sanitizes to nothing"):
            prometheus_name("...")


class TestPrometheusFormat:
    def test_matches_golden_file_line_for_line(self):
        rendered = render_prometheus(_golden_registry()).splitlines()
        golden = GOLDEN.read_text(encoding="utf-8").splitlines()
        assert rendered == golden

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_histogram_buckets_are_cumulative_and_end_in_inf(self):
        text = render_prometheus(_golden_registry())
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_query_batch_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in bucket_lines[-1]
        # The +Inf bucket equals the histogram count by construction.
        assert counts[-1] == 4


class TestWriteRead:
    def test_round_trip_with_trace_and_slow_queries(self, tmp_path):
        tracer = Tracer()
        with tracer.span("op", n=2):
            with tracer.span("child"):
                pass
        slow = [{"op": "rank_batch", "target": "time", "n_queries": 5}]
        written = write_telemetry(
            tmp_path, _golden_registry(), tracer, slow_queries=slow
        )
        assert set(written) == {"metrics", "trace", "slow_queries"}
        assert written["metrics"].name == METRICS_FILENAME
        assert written["trace"].name == TRACE_FILENAME
        assert written["slow_queries"].name == SLOW_QUERY_FILENAME

        dump = read_telemetry(tmp_path)
        assert dump["metrics_text"] == GOLDEN.read_text(encoding="utf-8")
        assert [s.name for s in dump["spans"]] == ["op"]
        assert dump["spans"][0].children[0].name == "child"
        assert dump["slow_queries"] == slow

    def test_null_tracer_writes_no_trace(self, tmp_path):
        written = write_telemetry(tmp_path, _golden_registry(), NULL_TRACER)
        assert set(written) == {"metrics"}
        assert not (tmp_path / TRACE_FILENAME).exists()

    def test_alerts_round_trip(self, tmp_path):
        alerts = [
            {"batch": 7, "kind": "spatial_psi", "value": 0.4},
            {"batch": 9, "kind": "probe_mrr", "value": 0.1},
        ]
        written = write_telemetry(
            tmp_path, _golden_registry(), alerts=alerts
        )
        assert written["alerts"].name == ALERTS_FILENAME
        assert read_telemetry(tmp_path)["alerts"] == alerts

    def test_requests_round_trip(self, tmp_path):
        requests = [
            {"kind": "request", "id": "r1", "duration_ms": 3.5},
            {"kind": "batch", "id": "b1", "links": ["r1"]},
        ]
        written = write_telemetry(
            tmp_path, _golden_registry(), requests=requests
        )
        assert written["requests"].name == REQUESTS_FILENAME
        assert read_telemetry(tmp_path)["requests"] == requests

    def test_rewrite_deletes_stale_sections(self, tmp_path):
        # Run 1: everything present.
        tracer = Tracer()
        with tracer.span("op"):
            pass
        write_telemetry(
            tmp_path,
            _golden_registry(),
            tracer,
            slow_queries=[{"op": "rank_batch"}],
            alerts=[{"kind": "spatial_psi"}],
            requests=[{"kind": "request", "id": "r1"}],
        )
        # Run 2 into the same directory: clean run, no slow queries, no
        # alerts, no tracer.  The stale files must not survive — an
        # operator reading the directory would attribute the previous
        # run's slow queries to this one.
        written = write_telemetry(tmp_path, _golden_registry())
        assert set(written) == {"metrics"}
        dump = read_telemetry(tmp_path)
        assert dump["slow_queries"] == []
        assert dump["alerts"] == []
        assert dump["spans"] == []
        assert dump["requests"] == []
        assert not (tmp_path / SLOW_QUERY_FILENAME).exists()
        assert not (tmp_path / ALERTS_FILENAME).exists()
        assert not (tmp_path / TRACE_FILENAME).exists()
        assert not (tmp_path / REQUESTS_FILENAME).exists()

    def test_reading_an_empty_directory_is_tolerant(self, tmp_path):
        dump = read_telemetry(tmp_path)
        assert dump == {
            "metrics_text": None,
            "spans": [],
            "slow_queries": [],
            "alerts": [],
            "requests": [],
        }


class TestTraceSummaries:
    def _trace(self) -> Tracer:
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("batch"):
                with tracer.span("score"):
                    pass
        return tracer

    def test_summarize_counts_every_span(self):
        stats = summarize_trace(self._trace().roots)
        assert stats["batch"]["count"] == 2
        assert stats["score"]["count"] == 2
        assert stats["batch"]["mean"] == pytest.approx(
            stats["batch"]["total"] / 2
        )
        # Sorted by total descending: parents dominate children.
        assert list(stats)[0] == "batch"

    def test_render_trace_summary_and_tree(self):
        tracer = self._trace()
        summary = render_trace_summary(tracer.roots)
        assert "batch" in summary and "score" in summary
        tree = render_span_tree(tracer.roots[0])
        assert tree.splitlines()[0].startswith("batch")
        assert tree.splitlines()[1].startswith("  score")

    def test_render_empty_summary(self):
        assert "empty" in render_trace_summary([])
