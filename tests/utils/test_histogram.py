"""Tests for the fixed-bucket latency histogram and its quantile math."""

import numpy as np
import pytest

from repro.utils.metrics import (
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)


class TestBuckets:
    def test_default_bounds_are_log_spaced(self):
        bounds = default_latency_buckets()
        assert len(bounds) == 27
        assert bounds[0] == pytest.approx(1e-6)
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_le_semantics_and_overflow(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 land in the first bucket (le=1.0), 100 overflows.
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.cumulative_counts() == [2, 3, 4]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match=">= 0"):
            Histogram(bounds=(1.0,)).observe(-0.1)
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Histogram(bounds=(1.0,)).quantile(1.5)


class TestAggregates:
    def test_mean_min_max(self):
        hist = Histogram()
        hist.observe(0.010)
        hist.observe(0.030)
        assert hist.mean == pytest.approx(0.020)
        assert hist.min == pytest.approx(0.010)
        assert hist.max == pytest.approx(0.030)

    def test_empty_histogram_is_all_zero(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        assert hist.p99 == 0.0


class TestQuantiles:
    def test_single_observation_quantiles_collapse(self):
        hist = Histogram()
        hist.observe(0.005)
        assert hist.p50 == pytest.approx(0.005)
        assert hist.p90 == pytest.approx(0.005)
        assert hist.p99 == pytest.approx(0.005)

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram(bounds=(1.0, 100.0))
        for value in (40.0, 50.0, 60.0):
            hist.observe(value)
        assert 40.0 <= hist.p50 <= 60.0
        assert 40.0 <= hist.p99 <= 60.0

    def test_matches_numpy_within_one_bucket_octave(self):
        """Estimates must land within one doubling of numpy's percentile.

        The default buckets double per step, so interpolation inside a
        bucket can be off by at most the bucket width — a factor of two
        on either side of the exact order statistic.
        """
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=1.0, size=5000)
        hist = Histogram()
        for value in samples:
            hist.observe(float(value))
        for q, estimate in ((50, hist.p50), (90, hist.p90), (99, hist.p99)):
            exact = float(np.percentile(samples, q))
            assert exact / 2 <= estimate <= exact * 2, (q, estimate, exact)

    def test_fine_buckets_match_numpy_closely(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 1.0, size=2000)
        bounds = tuple(np.linspace(0.01, 1.0, 100))
        hist = Histogram(bounds=bounds)
        for value in samples:
            hist.observe(float(value))
        for q in (50, 90, 99):
            exact = float(np.percentile(samples, q))
            assert hist.quantile(q / 100) == pytest.approx(exact, abs=0.02)


class TestRegistryIntegration:
    def test_histogram_get_or_create(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        assert registry.histogram("lat") is hist

    def test_snapshot_includes_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.004)
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["count"] == 1
        assert snap["p50"] == pytest.approx(0.004)
        assert snap["min"] == pytest.approx(0.004)

    def test_render_mentions_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.004)
        assert "lat" in registry.render(title="t")
