"""Tests for the runtime metrics registry (counters / gauges / timers)."""

import json

import pytest

from repro.utils.metrics import Counter, Gauge, MetricsRegistry, TimerStat


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)


class TestGauge:
    def test_keeps_last_value(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestTimerStat:
    def test_observe_updates_aggregates(self):
        timer = TimerStat()
        timer.observe(0.2)
        timer.observe(0.4)
        assert timer.count == 2
        assert timer.total == pytest.approx(0.6)
        assert timer.min == pytest.approx(0.2)
        assert timer.max == pytest.approx(0.4)
        assert timer.mean == pytest.approx(0.3)
        assert timer.rate == pytest.approx(2 / 0.6)

    def test_empty_timer_has_safe_derived_values(self):
        timer = TimerStat()
        assert timer.mean == 0.0
        assert timer.rate == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match=">= 0"):
            TimerStat().observe(-0.1)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.timer("c") is registry.timer("c")

    def test_time_context_manager_records(self):
        registry = MetricsRegistry()
        with registry.time("block"):
            pass
        timer = registry.timer("block")
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_time_records_even_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time("block"):
                raise RuntimeError("boom")
        assert registry.timer("block").count == 1

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("records").inc(10)
        registry.gauge("occupancy").set(0.5)
        with registry.time("step"):
            pass
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["records"] == 10
        assert snapshot["gauges"]["occupancy"] == 0.5
        assert snapshot["timers"]["step"]["count"] == 1

    def test_render_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("records").inc(3)
        registry.gauge("loss").set(1.25)
        with registry.time("fit"):
            pass
        table = registry.render(title="demo")
        assert "demo" in table
        assert "records" in table
        assert "loss" in table
        assert "fit" in table

    def test_render_empty(self):
        assert "(empty)" in MetricsRegistry().render()

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.histogram("y").observe(0.5)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }
        assert registry.counter("x").value == 0.0

    def test_pickle_round_trip_recreates_lock(self):
        """Models carry registries; pickling must survive the lock."""
        import pickle

        registry = MetricsRegistry()
        registry.counter("stream.records").inc(9)
        registry.gauge("buffer.occupancy").set(0.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("stream.records").value == 9
        assert clone.gauge("buffer.occupancy").value == 0.5
        # The restored registry is fully functional (lock recreated).
        clone.counter("new").inc()
        assert clone.render()

    def test_concurrent_creation_is_safe(self):
        import threading

        registry = MetricsRegistry()
        errors = []

        def hammer(start):
            try:
                for i in range(200):
                    registry.counter(f"c{(start + i) % 40}").inc()
                    registry.histogram(f"h{(start + i) % 40}").observe(0.1)
                    registry.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i * 7,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert registry.counter("c0").value > 0
