"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils import check_finite, check_positive, check_probability, check_shape


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1.5)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("x", 0, strict=False)

    def test_rejects_negative_when_not_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5.0])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match="p must be in"):
            check_probability("p", value)


class TestCheckFinite:
    def test_accepts_finite(self):
        check_finite("a", np.ones(3))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("a", np.asarray([1.0, bad]))


class TestCheckShape:
    def test_exact_match(self):
        check_shape("m", np.zeros((2, 3)), (2, 3))

    def test_wildcard_axis(self):
        check_shape("m", np.zeros((7, 3)), (None, 3))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("m", np.zeros(4), (2, 2))

    def test_rejects_wrong_extent(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape("m", np.zeros((2, 4)), (2, 3))


class TestTimer:
    def test_timer_measures_elapsed(self):
        from repro.utils import Timer

        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0
