"""Tests for seeded RNG helpers."""

import numpy as np
import pytest

from repro.utils import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(7)
        a = ensure_rng(seed).random(3)
        b = ensure_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(ensure_rng(0), 3)
        assert len(children) == 3

    def test_children_are_independent_streams(self):
        a, b = spawn_rng(ensure_rng(0), 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_spawn_is_reproducible(self):
        a = spawn_rng(ensure_rng(9), 2)[1].random(4)
        b = spawn_rng(ensure_rng(9), 2)[1].random(4)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), 0)
