"""Tests for structured JSONL logging: records, span ids, dedup."""

import io
import json

import pytest

from repro.utils.logging import (
    NULL_LOGGER,
    NullLogger,
    StructuredLogger,
    read_log,
)
from repro.utils.tracing import Tracer


class TestRecords:
    def test_record_shape_and_fields(self):
        logger = StructuredLogger(clock=lambda: 123.5)
        record = logger.info("stream.batch", records=50, edges=900)
        assert record == {
            "ts": 123.5,
            "level": "info",
            "event": "stream.batch",
            "records": 50,
            "edges": 900,
        }
        assert list(logger.recent) == [record]
        assert logger.emitted == 1

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            StructuredLogger().log("fatal", "boom")

    def test_stream_output_is_jsonl(self):
        sink = io.StringIO()
        logger = StructuredLogger(stream=sink)
        logger.info("a", x=1)
        logger.warning("b")
        lines = sink.getvalue().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with StructuredLogger(path=path) as logger:
            logger.info("first", n=1)
            logger.error("second")
        records = read_log(path)
        assert [r["event"] for r in records] == ["first", "second"]
        assert records[0]["n"] == 1

    def test_recent_tail_is_bounded(self):
        logger = StructuredLogger(recent_size=3)
        for i in range(10):
            logger.info("tick", i=i)
        assert [r["i"] for r in logger.recent] == [7, 8, 9]


class TestSpanCorrelation:
    def test_record_carries_current_span_id(self):
        tracer = Tracer()
        logger = StructuredLogger(tracer=tracer)
        with tracer.span("outer"):
            outer = logger.info("in_outer")
            with tracer.span("inner"):
                inner = logger.info("in_inner")
        assert outer["span"] == "s1"
        assert inner["span"] == "s2"
        # The ids resolve back to the recorded span tree.
        root = tracer.roots[0]
        assert root.span_id == "s1"
        assert root.children[0].span_id == "s2"

    def test_span_is_none_outside_any_span(self):
        logger = StructuredLogger(tracer=Tracer())
        assert logger.info("idle")["span"] is None

    def test_no_tracer_means_no_span_key(self):
        assert "span" not in StructuredLogger().info("event")


class TestDedup:
    def test_warning_repeats_are_suppressed_and_counted(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        assert logger.warning("hot", i=0) is not None
        for i in range(5):
            assert logger.warning("hot", i=i) is None
        assert logger.emitted == 1
        assert logger.suppressed == 5
        assert len(logger.recent) == 1

    def test_next_emission_reports_suppressed_count(self, monkeypatch):
        fake = [0.0]
        monkeypatch.setattr(
            "repro.utils.logging.time.monotonic", lambda: fake[0]
        )
        logger = StructuredLogger(rate_limit_seconds=10.0)
        logger.warning("hot")
        logger.warning("hot")
        logger.warning("hot")
        fake[0] = 11.0
        record = logger.warning("hot")
        assert record["suppressed"] == 2

    def test_distinct_events_do_not_collide(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        assert logger.warning("a") is not None
        assert logger.warning("b") is not None

    def test_info_flows_freely_by_default(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        assert logger.info("tick") is not None
        assert logger.info("tick") is not None

    def test_error_is_never_suppressed(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        assert logger.error("bad") is not None
        assert logger.error("bad", dedup=True) is not None

    def test_explicit_dedup_opt_in_for_info(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        assert logger.log("info", "tick", dedup=True) is not None
        assert logger.log("info", "tick", dedup=True) is None

    def test_zero_window_disables_dedup(self):
        logger = StructuredLogger(rate_limit_seconds=0.0)
        assert logger.warning("hot") is not None
        assert logger.warning("hot") is not None

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="rate_limit_seconds"):
            StructuredLogger(rate_limit_seconds=-1.0)


class TestCloseFlush:
    def test_pending_tallies_flushed_to_file_on_close(self, tmp_path):
        # Counts accumulated after the last emission used to be dropped:
        # they were only ever attached to the *next* emission, which never
        # comes at end of run.
        path = tmp_path / "events.jsonl"
        logger = StructuredLogger(path=path, rate_limit_seconds=3600.0)
        logger.warning("hot")
        for _ in range(4):
            logger.warning("hot")
        logger.close()
        records = read_log(path)
        assert len(records) == 2
        summary = records[-1]
        assert summary["event"] == "hot"
        assert summary["level"] == "warning"
        assert summary["suppressed"] == 4
        assert summary["suppressed_flush"] is True

    def test_flush_covers_every_pending_key(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        logger.warning("a")
        logger.warning("a")
        logger.warning("b")
        logger.warning("b")
        logger.warning("b")
        logger.info("quiet")
        logger.close()
        flushed = {
            r["event"]: r["suppressed"]
            for r in logger.recent
            if r.get("suppressed_flush")
        }
        assert flushed == {"a": 1, "b": 2}

    def test_close_is_idempotent_and_flushes_once(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = StructuredLogger(path=path, rate_limit_seconds=3600.0)
        logger.warning("hot")
        logger.warning("hot")
        logger.close()
        logger.close()
        records = read_log(path)
        assert sum(1 for r in records if r.get("suppressed_flush")) == 1

    def test_suppressed_counter_stays_consistent(self):
        logger = StructuredLogger(rate_limit_seconds=3600.0)
        logger.warning("hot")
        logger.warning("hot")
        logger.warning("hot")
        assert logger.suppressed == 2
        logger.close()
        # The flush reports the pending counts, it does not undo them.
        assert logger.suppressed == 2
        assert logger.emitted == 2  # first emission + the flush summary

    def test_nothing_pending_flushes_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = StructuredLogger(path=path, rate_limit_seconds=3600.0)
        logger.info("once")
        logger.close()
        assert len(read_log(path)) == 1


class TestNullLogger:
    def test_all_methods_are_noops(self):
        assert isinstance(NULL_LOGGER, NullLogger)
        assert NULL_LOGGER.log("info", "x") is None
        assert NULL_LOGGER.debug("x") is None
        assert NULL_LOGGER.info("x") is None
        assert NULL_LOGGER.warning("x") is None
        assert NULL_LOGGER.error("x") is None
        NULL_LOGGER.close()
