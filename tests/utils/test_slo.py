"""Tests for SLO objectives and multi-window burn-rate evaluation."""

from __future__ import annotations

import pytest

from repro.utils.metrics import MetricsRegistry
from repro.utils.slo import (
    BurnWindow,
    SLObjective,
    SLOEngine,
    availability_source,
    latency_source,
)


class FakeClock:
    """Deterministic monotonic clock for snapshot-window tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move time forward."""
        self.now += seconds


def _engine(metrics=None, **kwargs):
    """An availability-tracking engine over a fresh registry."""
    metrics = metrics if metrics is not None else MetricsRegistry()
    clock = FakeClock()
    engine = SLOEngine(metrics, clock=clock, **kwargs)
    engine.add_objective(
        SLObjective("availability", target=0.999),
        availability_source(metrics),
    )
    return engine, metrics, clock


class TestObjective:
    def test_budget_is_one_minus_target(self):
        assert SLObjective("a", target=0.999).budget == pytest.approx(0.001)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ValueError, match="target"):
            SLObjective("a", target=1.0)
        with pytest.raises(ValueError, match="target"):
            SLObjective("a", target=0.0)

    def test_duplicate_names_rejected(self):
        engine, metrics, _clock = _engine()
        with pytest.raises(ValueError, match="already registered"):
            engine.add_objective(
                SLObjective("availability", target=0.9),
                availability_source(metrics),
            )

    def test_needs_at_least_one_window(self):
        with pytest.raises(ValueError, match="window"):
            SLOEngine(MetricsRegistry(), windows=())


class TestBurnEvaluation:
    def test_all_good_traffic_is_ok(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        metrics.counter("serve.responses").inc(100)
        clock.advance(10.0)
        result = engine.evaluate()
        detail = result["objectives"]["availability"]
        assert result["status"] == "ok"
        assert detail["compliance"] == pytest.approx(1.0)
        assert not any(
            w["burning"] for w in detail["windows"].values()
        )

    def test_sustained_errors_burn_both_windows(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        # 10% 5xx against a 0.1% budget: burn 100x, far over both the
        # 14.4x fast and 6x slow thresholds.
        metrics.counter("serve.responses").inc(1000)
        metrics.counter("serve.responses_5xx").inc(100)
        clock.advance(10.0)
        result = engine.evaluate()
        detail = result["objectives"]["availability"]
        assert result["status"] == "alerting"
        assert detail["status"] == "alerting"
        for window in detail["windows"].values():
            assert window["burning"]
            assert window["burn"] == pytest.approx(100.0, rel=1e-6)
        assert metrics.counter("slo.breaches").value == 1

    def test_breach_counter_is_edge_triggered(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        metrics.counter("serve.responses").inc(1000)
        metrics.counter("serve.responses_5xx").inc(100)
        clock.advance(10.0)
        engine.evaluate()
        clock.advance(2.0)
        engine.evaluate()  # still alerting: no second increment
        assert metrics.counter("slo.breaches").value == 1

    def test_recovery_clears_the_alert(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        metrics.counter("serve.responses").inc(1000)
        metrics.counter("serve.responses_5xx").inc(100)
        clock.advance(10.0)
        assert engine.evaluate()["status"] == "alerting"
        # An hour of clean traffic pushes the bad burst past both
        # windows' baselines.
        clock.advance(4000.0)
        metrics.counter("serve.responses").inc(10_000)
        result = engine.evaluate()
        assert result["status"] == "ok"
        # A later re-breach increments the edge counter again.
        metrics.counter("serve.responses").inc(1000)
        metrics.counter("serve.responses_5xx").inc(1000)
        clock.advance(10.0)
        assert engine.evaluate()["status"] == "alerting"
        assert metrics.counter("slo.breaches").value == 2

    def test_min_requests_guard_suppresses_tiny_samples(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        # 1 failure out of 2 requests: catastrophic fraction, but far
        # below min_requests — must not page.
        metrics.counter("serve.responses").inc(2)
        metrics.counter("serve.responses_5xx").inc(1)
        clock.advance(10.0)
        result = engine.evaluate()
        assert result["status"] == "ok"
        windows = result["objectives"]["availability"]["windows"]
        assert all(w["burn"] == 0.0 for w in windows.values())

    def test_window_uses_recent_baseline_not_all_time(self):
        """Old errors outside the window must not keep the burn high."""
        engine, metrics, clock = _engine(
            windows=(BurnWindow("fast", 60.0, 2.0),)
        )
        engine.evaluate()
        metrics.counter("serve.responses").inc(100)
        metrics.counter("serve.responses_5xx").inc(50)
        clock.advance(5.0)
        assert engine.evaluate()["status"] == "alerting"
        # 120s later (two windows), clean traffic only: the baseline
        # snapshot already contains the old errors, so burn is 0.
        clock.advance(120.0)
        metrics.counter("serve.responses").inc(100)
        result = engine.evaluate()
        window = result["objectives"]["availability"]["windows"]["fast"]
        assert window["burn"] == 0.0
        assert result["status"] == "ok"

    def test_gauges_exported(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        metrics.counter("serve.responses").inc(100)
        clock.advance(10.0)
        engine.evaluate()
        assert metrics.gauge(
            "slo.availability.compliance"
        ).value == pytest.approx(1.0)
        assert metrics.gauge("slo.availability.burn_fast").value == 0.0
        assert metrics.gauge("slo.availability.burn_slow").value == 0.0


class TestLatencySource:
    def test_counts_observations_under_threshold(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("serve.request_seconds")
        for _ in range(9):
            hist.observe(0.01)
        hist.observe(10.0)
        source = latency_source(metrics, threshold=0.25)
        good, total = source()
        assert total == 10.0
        assert good == pytest.approx(9.0, abs=0.5)

    def test_latency_objective_alerts_on_slow_traffic(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        engine = SLOEngine(metrics, clock=clock)
        engine.add_objective(
            SLObjective("latency", target=0.99, threshold=0.25),
            latency_source(metrics, threshold=0.25),
        )
        engine.evaluate()
        hist = metrics.histogram("serve.request_seconds")
        for _ in range(50):
            hist.observe(5.0)  # every request catastrophically slow
        clock.advance(10.0)
        result = engine.evaluate()
        assert result["status"] == "alerting"
        assert result["objectives"]["latency"]["threshold"] == 0.25


class TestHistogramCountBelow:
    def test_empty_histogram_is_zero(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.count_below(1.0) == 0.0

    def test_above_max_is_total_count(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        assert hist.count_below(1e9) == 3.0

    def test_negative_value_is_zero(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(0.5)
        assert hist.count_below(-1.0) == 0.0

    def test_monotonic_in_value(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.001, 0.01, 0.1, 1.0, 10.0):
            hist.observe(value)
        counts = [hist.count_below(v) for v in (0.005, 0.05, 0.5, 5.0, 50.0)]
        assert counts == sorted(counts)
        assert counts[-1] == 5.0


class TestStatusProvider:
    def test_status_shape_merges_into_healthz(self):
        engine, metrics, clock = _engine()
        metrics.counter("serve.responses").inc(100)
        payload = engine.status()
        assert payload["status"] == "ok"
        assert "availability" in payload["slo"]

    def test_alerting_status_propagates(self):
        engine, metrics, clock = _engine()
        engine.evaluate()
        metrics.counter("serve.responses").inc(1000)
        metrics.counter("serve.responses_5xx").inc(500)
        clock.advance(10.0)
        assert engine.status()["status"] == "alerting"
