"""Tests for span tracing: nesting, attributes, JSONL round-trip."""

import threading

import pytest

from repro.utils.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    walk_spans,
)


class TestNesting:
    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_nested_spans_become_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("inner2"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_duration_stamped_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.roots[0].duration is not None
        # The stack unwound: the next span is a fresh root, not a child.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["boom", "after"]

    def test_children_nest_inside_parent_duration(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        (root,) = tracer.roots
        assert root.child_seconds() <= root.duration
        assert root.self_seconds() == pytest.approx(
            root.duration - root.child_seconds()
        )


class TestConcurrentNesting:
    def test_threads_keep_private_stacks(self):
        """Regression: spans from concurrent handler threads must nest
        under their own thread's root, never under another thread's open
        span (the stack used to be a shared instance list)."""
        tracer = Tracer()
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()
            for i in range(per_thread):
                with tracer.span(f"req-{tid}", i=i):
                    with tracer.span("inner"):
                        with tracer.span("leaf"):
                            pass

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Every request became its own root with the exact 3-deep chain.
        assert len(tracer.roots) == n_threads * per_thread
        for root in tracer.roots:
            assert root.name.startswith("req-")
            assert [c.name for c in root.children] == ["inner"]
            (inner,) = root.children
            assert [c.name for c in inner.children] == ["leaf"]
            assert root.duration is not None
        # Span ids stayed unique across threads.
        seen = set()
        for _depth, span in walk_spans(tracer.roots):
            assert span.span_id not in seen
            seen.add(span.span_id)

    def test_current_span_is_per_thread(self):
        tracer = Tracer()
        observed = {}

        def worker():
            with tracer.span("other-thread"):
                observed["inner"] = tracer.current_span.name
            observed["outer"] = tracer.current_span

        with tracer.span("main-thread"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            # The worker never saw main's open span, and vice versa.
            assert tracer.current_span.name == "main-thread"
        assert observed == {"inner": "other-thread", "outer": None}
        assert sorted(s.name for s in tracer.roots) == [
            "main-thread",
            "other-thread",
        ]


class TestAttributes:
    def test_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("op", records=10) as span:
            span.set(edges=3, records=11)
        assert tracer.roots[0].attributes == {"records": 11, "edges": 3}

    def test_total_seconds_sums_matching_roots(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        with tracer.span("other"):
            pass
        expected = sum(
            s.duration for s in tracer.roots if s.name == "op"
        )
        assert tracer.total_seconds("op") == pytest.approx(expected)
        assert tracer.total_seconds("missing") == 0.0


class TestRoundTrip:
    def test_jsonl_export_and_load(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        with tracer.span("second"):
            pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in tracer.roots
        ]

    def test_from_dict_tolerates_minimal_payload(self):
        span = Span.from_dict({"name": "x", "start": 0.0, "duration": None})
        assert span.name == "x"
        assert span.duration is None
        assert span.children == []

    def test_clear_drops_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []

    def test_pickle_round_trip_drops_thread_state(self):
        # Instrumented models may carry their tracer through ``save``;
        # the thread-local stack and the lock must not end up in the
        # pickle, and a loaded tracer must keep recording.
        import pickle

        tracer = Tracer()
        with tracer.span("before"):
            pass
        loaded = pickle.loads(pickle.dumps(tracer))
        assert [s.name for s in loaded.roots] == ["before"]
        with loaded.span("after"):
            pass
        assert [s.name for s in loaded.roots] == ["before", "after"]


class TestWalk:
    def test_preorder_with_depths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        walked = [(d, s.name) for d, s in walk_spans(tracer.roots)]
        assert walked == [(0, "a"), (1, "b"), (2, "c"), (1, "d")]

    def test_accepts_single_span(self):
        span = Span("solo", 0.0, 0.1)
        assert [(0, span)] == list(walk_spans(span))


class TestNullTracer:
    def test_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("op", n=1) as span:
            span.set(anything=True)  # discarded, no error

    def test_export_refuses(self, tmp_path):
        with pytest.raises(RuntimeError, match="records nothing"):
            NULL_TRACER.export_jsonl(tmp_path / "x.jsonl")

    def test_span_context_is_cached(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
