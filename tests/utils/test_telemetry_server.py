"""Tests for the live telemetry HTTP server (/metrics /healthz /varz)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.utils.logging import StructuredLogger
from repro.utils.metrics import MetricsRegistry
from repro.utils.telemetry_server import TelemetryServer


def _get(url: str):
    """GET ``url``; returns (status, content_type, body_text)."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read().decode(
            "utf-8"
        )


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("stream.records").inc(5)
    reg.gauge("buffer.occupancy").set(0.5)
    return reg


class TestLifecycle:
    def test_ephemeral_port_and_url(self, registry):
        with TelemetryServer(registry) as server:
            assert server.running
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        assert not server.running

    def test_double_start_rejected(self, registry):
        with TelemetryServer(registry) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_stop_is_idempotent(self, registry):
        server = TelemetryServer(registry).start()
        server.stop()
        server.stop()

    def test_invalid_stale_after_rejected(self, registry):
        with pytest.raises(ValueError, match="stale_after"):
            TelemetryServer(registry, stale_after=0)


class TestMetricsEndpoint:
    def test_prometheus_text_and_content_type(self, registry):
        with TelemetryServer(registry) as server:
            status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        assert "repro_stream_records_total 5" in body
        assert "repro_buffer_occupancy 0.5" in body

    def test_scrapes_see_live_updates(self, registry):
        with TelemetryServer(registry) as server:
            _status, _ctype, first = _get(server.url + "/metrics")
            registry.counter("stream.records").inc(7)
            _status, _ctype, second = _get(server.url + "/metrics")
        assert "repro_stream_records_total 5" in first
        assert "repro_stream_records_total 12" in second

    def test_empty_registry_scrape_is_newline_terminated(self):
        """A scrape racing the first metric creation stays well-formed.

        Regression: scrapers attach before the first batch is ingested,
        so the registry can still be empty; the exposition must end in a
        line feed even then (a bare 200 with an empty body is what the
        live-scrape drift test intermittently tripped over).
        """
        with TelemetryServer(MetricsRegistry()) as server:
            status, _ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert body.endswith("\n")

    def test_unknown_path_is_404(self, registry):
        with TelemetryServer(registry) as server:
            status, _ctype, body = _get(server.url + "/nope")
        assert status == 404
        assert "no such endpoint" in body


class TestHealthz:
    def test_healthy_by_default(self, registry):
        with TelemetryServer(registry) as server:
            server.heartbeat()
            status, _ctype, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0
        assert payload["heartbeat_age_seconds"] is not None

    def test_stale_heartbeat_degrades_to_503(self, registry):
        with TelemetryServer(registry, stale_after=1e-9) as server:
            server.heartbeat()
            status, _ctype, body = _get(server.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "stale"

    def test_provider_status_worst_wins(self, registry):
        with TelemetryServer(registry) as server:
            server.add_status_provider(lambda: {"status": "ok", "a": 1})
            server.add_status_provider(
                lambda: {"status": "alerting", "drift": {"alerts": 2}}
            )
            status, _ctype, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 503
        assert payload["status"] == "alerting"
        assert payload["a"] == 1
        assert payload["drift"] == {"alerts": 2}

    def test_alerting_outranks_stale(self, registry):
        with TelemetryServer(registry, stale_after=1e-9) as server:
            server.heartbeat()
            server.add_status_provider(lambda: {"status": "alerting"})
            _status, _ctype, body = _get(server.url + "/healthz")
        assert json.loads(body)["status"] == "alerting"


class TestVarz:
    def test_varz_exposes_raw_state(self, registry):
        logger = StructuredLogger()
        logger.info("hello", n=1)
        slow = [{"op": "rank_batch", "seconds": 0.5}]
        with TelemetryServer(
            registry, slow_queries=slow, logger=logger
        ) as server:
            server.add_status_provider(lambda: {"extra": "state"})
            status, ctype, body = _get(server.url + "/varz")
        payload = json.loads(body)
        assert status == 200
        assert ctype == "application/json; charset=utf-8"
        assert payload["metrics"]["counters"]["stream.records"] == 5
        assert payload["slow_queries"] == slow
        assert payload["recent_logs"][0]["event"] == "hello"
        assert payload["extra"] == "state"


class TestConcurrency:
    def test_parallel_scrapes_during_metric_churn(self, registry):
        """Scrapes racing metric creation/updates must never error."""
        stop = threading.Event()
        errors: list[Exception] = []

        def churn():
            i = 0
            while not stop.is_set():
                registry.counter(f"churn.c{i % 50}").inc()
                registry.histogram(f"churn.h{i % 50}").observe(i * 0.001)
                registry.gauge("churn.level").set(i)
                i += 1

        def scrape(server):
            while not stop.is_set():
                try:
                    status, _ctype, body = _get(server.url + "/metrics")
                    assert status == 200
                    assert body.endswith("\n")
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return
                stop.wait(0.01)

        with TelemetryServer(registry) as server:
            threads = [threading.Thread(target=churn)] + [
                threading.Thread(target=scrape, args=(server,))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            import time

            time.sleep(0.5)
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert errors == []
