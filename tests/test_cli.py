"""Tests for the command-line interface (generate/stats/train/evaluate/query)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    code = main(
        [
            "generate",
            "--preset", "utgeo2011",
            "--n-records", "800",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def stream_corpus(tmp_path_factory):
    """A stationary 1600-record stream, big enough for drift windows."""
    path = tmp_path_factory.mktemp("cli-stream") / "stream.jsonl"
    code = main(
        [
            "generate",
            "--preset", "utgeo2011",
            "--n-records", "1600",
            "--seed", "78",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, corpus_path):
    path = tmp_path_factory.mktemp("cli-model") / "actor.pkl"
    code = main(
        [
            "train",
            "--corpus", str(corpus_path),
            "--out", str(path),
            "--dim", "16",
            "--epochs", "3",
            "--seed", "0",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--preset", "nope", "--out", "x"]
            )

    def test_query_modalities_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--model", "m", "--word", "w", "--time", "5"]
            )


class TestGenerate:
    def test_writes_jsonl(self, corpus_path):
        assert corpus_path.exists()
        lines = corpus_path.read_text().strip().split("\n")
        assert len(lines) == 800

    def test_split_selection(self, tmp_path):
        out = tmp_path / "test.jsonl"
        code = main(
            [
                "generate",
                "--preset", "4sq",
                "--n-records", "300",
                "--out", str(out),
                "--split", "test",
            ]
        )
        assert code == 0
        lines = out.read_text().strip().split("\n")
        assert 0 < len(lines) < 300


class TestStats:
    def test_prints_statistics(self, corpus_path, capsys):
        assert main(["stats", "--corpus", str(corpus_path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "800" in out
        assert "mention rate" in out


class TestTrainEvaluateQuery:
    def test_train_saves_model(self, model_path):
        assert model_path.exists()

    def test_evaluate_prints_mrr(self, model_path, corpus_path, capsys):
        code = main(
            [
                "evaluate",
                "--model", str(model_path),
                "--corpus", str(corpus_path),
                "--max-queries", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MRR" in out
        for task in ("text", "location", "time"):
            assert task in out

    def test_query_time(self, model_path, capsys):
        code = main(
            ["query", "--model", str(model_path), "--time", "21.5", "--k", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nearest words" in out
        assert "nearest locations" in out

    def test_query_location(self, model_path, capsys):
        code = main(
            [
                "query",
                "--model", str(model_path),
                "--location", "10.0,10.0",
                "--k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nearest words" in out
        assert "nearest times" in out

    def test_query_bad_location_format(self, model_path, capsys):
        code = main(
            ["query", "--model", str(model_path), "--location", "oops"]
        )
        assert code == 2

    def test_query_word(self, model_path, capsys):
        from repro.core import Actor

        model = Actor.load(model_path)
        word = model.built.vocab.words[0]
        code = main(
            ["query", "--model", str(model_path), "--word", word, "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nearest words" in out

    def test_train_ablation_flags(self, corpus_path, tmp_path):
        out = tmp_path / "ablated.pkl"
        code = main(
            [
                "train",
                "--corpus", str(corpus_path),
                "--out", str(out),
                "--dim", "8",
                "--epochs", "1",
                "--no-inter",
                "--no-intra-bow",
            ]
        )
        assert code == 0
        from repro.core import Actor

        model = Actor.load(out)
        assert not model.config.use_inter
        assert not model.config.use_intra_bow


class TestStream:
    @pytest.fixture(scope="class")
    def stream_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-stream") / "stream.jsonl"
        code = main(
            [
                "generate",
                "--preset", "utgeo2011",
                "--n-records", "120",
                "--seed", "77",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_stream_rejects_nonpositive_batch_size(self, capsys):
        # validated before the model is touched, so fake paths suffice
        code = main(
            ["stream", "--model", "m", "--corpus", "c", "--batch-size", "0"]
        )
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_stream_prints_summary_and_metrics(
        self, model_path, stream_path, capsys
    ):
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(stream_path),
                "--batch-size", "60",
                "--steps-per-batch", "10",
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed 120 records" in out
        assert "streaming metrics" in out
        assert "stream.records" in out
        assert "buffer.occupancy" in out

    def test_stream_checkpoint_and_resume(
        self, model_path, stream_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(stream_path),
                "--batch-size", "60",
                "--steps-per-batch", "10",
                "--checkpoint", str(ckpt),
            ]
        )
        assert code == 0
        assert (ckpt / "online_manifest.json").exists()
        assert (ckpt / "online_state.npz").exists()
        capsys.readouterr()
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(stream_path),
                "--batch-size", "60",
                "--steps-per-batch", "10",
                "--resume", str(ckpt),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # resumed deployment carries the earlier ingestion total forward
        assert "240 ingested total" in out


class TestTelemetry:
    @pytest.fixture(scope="class")
    def stream_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-telemetry") / "stream.jsonl"
        code = main(
            [
                "generate",
                "--preset", "utgeo2011",
                "--n-records", "120",
                "--seed", "78",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_train_writes_metrics_and_trace(
        self, corpus_path, tmp_path, capsys
    ):
        tel = tmp_path / "tel"
        code = main(
            [
                "train",
                "--corpus", str(corpus_path),
                "--out", str(tmp_path / "m.pkl"),
                "--dim", "8",
                "--epochs", "1",
                "--telemetry-dir", str(tel),
            ]
        )
        assert code == 0
        assert "wrote telemetry" in capsys.readouterr().out
        text = (tel / "metrics.prom").read_text()
        assert "# TYPE repro_fit_train_seconds summary" in text
        assert "repro_graph_activity_nodes" in text
        from repro.utils.tracing import load_trace

        (root,) = load_trace(tel / "trace.jsonl")
        assert root.name == "actor.fit"
        names = {c.name for c in root.children}
        assert {"actor.build_graphs", "actor.init", "actor.train"} <= names

    def test_stream_trace_consistent_with_timer(
        self, model_path, stream_path, tmp_path
    ):
        """Root span durations must agree with the partial_fit timer."""
        tel = tmp_path / "tel"
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(stream_path),
                "--batch-size", "40",
                "--steps-per-batch", "10",
                "--telemetry-dir", str(tel),
            ]
        )
        assert code == 0
        from repro.utils.tracing import load_trace

        spans = load_trace(tel / "trace.jsonl")
        assert len(spans) == 3  # 120 records / 40 per batch
        assert all(s.name == "stream.partial_fit" for s in spans)
        span_total = sum(s.duration for s in spans)
        # Children never exceed their parent.
        for span in spans:
            assert span.child_seconds() <= span.duration

        timer_sum = None
        for line in (tel / "metrics.prom").read_text().splitlines():
            if line.startswith("repro_stream_partial_fit_seconds_sum "):
                timer_sum = float(line.split()[1])
        assert timer_sum is not None
        # The timer is read inside the span, so the span total is the
        # slightly larger of the two; they agree within 20% + 50ms slack.
        assert timer_sum <= span_total
        assert span_total <= timer_sum * 1.2 + 0.05

    def test_evaluate_writes_slow_query_log(
        self, model_path, corpus_path, tmp_path, capsys
    ):
        tel = tmp_path / "tel"
        code = main(
            [
                "evaluate",
                "--model", str(model_path),
                "--corpus", str(corpus_path),
                "--max-queries", "20",
                "--telemetry-dir", str(tel),
                "--slow-query-ms", "0",  # every batch is "slow"
            ]
        )
        assert code == 0
        capsys.readouterr()
        import json

        entries = [
            json.loads(line)
            for line in (tel / "slow_queries.jsonl").read_text().splitlines()
        ]
        assert entries
        assert {"op", "target", "n_queries", "per_query_ms", "modalities"} <= set(
            entries[0]
        )
        assert "repro_query_batch_seconds_bucket" in (
            tel / "metrics.prom"
        ).read_text()

        code = main(["telemetry", "--dir", str(tel)])
        assert code == 0
        out = capsys.readouterr().out
        assert "slow queries" in out
        assert "query.rank_batch" in out

    def test_telemetry_raw_dump(self, corpus_path, tmp_path, capsys):
        tel = tmp_path / "tel"
        main(
            [
                "train",
                "--corpus", str(corpus_path),
                "--out", str(tmp_path / "m.pkl"),
                "--dim", "8",
                "--epochs", "1",
                "--telemetry-dir", str(tel),
            ]
        )
        capsys.readouterr()
        assert main(["telemetry", "--dir", str(tel), "--raw"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_telemetry_missing_directory(self, tmp_path, capsys):
        code = main(["telemetry", "--dir", str(tmp_path / "nope")])
        assert code == 2
        assert "no telemetry" in capsys.readouterr().err


class TestLiveObservability:
    def test_stream_serve_metrics_live_scrape(
        self, model_path, stream_corpus, capsys
    ):
        """/metrics and /healthz answer while `repro stream` is running."""
        import json
        import socket
        import threading
        import time
        import urllib.request

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]

        scrapes = []

        def run():
            main(
                [
                    "stream",
                    "--model", str(model_path),
                    "--corpus", str(stream_corpus),
                    "--batch-size", "40",
                    "--steps-per-batch", "300",
                    "--serve-metrics", str(port),
                    "--drift",
                ]
            )

        worker = threading.Thread(target=run)
        worker.start()
        url = f"http://127.0.0.1:{port}"
        deadline = time.monotonic() + 30
        while worker.is_alive() and time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    url + "/metrics", timeout=1
                ) as response:
                    body = response.read().decode("utf-8")
                with urllib.request.urlopen(
                    url + "/healthz", timeout=1
                ) as response:
                    health = json.loads(response.read())
                scrapes.append((body, health))
            except OSError:
                time.sleep(0.01)
        worker.join(timeout=60)
        assert not worker.is_alive()
        capsys.readouterr()
        assert scrapes, "server never answered while streaming"
        body, health = scrapes[-1]
        assert "# TYPE repro_stream_records_total counter" in body
        assert health["status"] in {"ok", "stale", "alerting"}
        assert "uptime_seconds" in health
        assert "buffer" in health

    def test_stream_drift_alerts_written_and_displayed(
        self, model_path, tmp_path, capsys
    ):
        """An injected spatial shift lands in alerts.jsonl and the CLI."""
        import json

        from repro.data import load_corpus, save_corpus

        main(
            [
                "generate",
                "--preset", "utgeo2011",
                "--n-records", "1600",
                "--seed", "91",
                "--out", str(tmp_path / "base.jsonl"),
            ]
        )
        records = list(load_corpus(tmp_path / "base.jsonl"))
        import dataclasses

        shifted = records[:800] + [
            dataclasses.replace(r, location=(0.25, 0.25))
            for r in records[800:]
        ]
        save_corpus(shifted, tmp_path / "shifted.jsonl")
        tel = tmp_path / "tel"
        capsys.readouterr()
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(tmp_path / "shifted.jsonl"),
                "--batch-size", "100",
                "--steps-per-batch", "10",
                "--drift",
                "--telemetry-dir", str(tel),
                "--telemetry-flush-every", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift watchdog raised" in out
        alerts = [
            json.loads(line)
            for line in (tel / "alerts.jsonl").read_text().splitlines()
        ]
        assert any(a["kind"] == "spatial_psi" for a in alerts)
        assert (tel / "events.jsonl").exists()

        code = main(["telemetry", "--dir", str(tel)])
        assert code == 0
        out = capsys.readouterr().out
        assert "drift alerts" in out
        assert "spatial_psi" in out

    def test_stationary_stream_writes_no_alerts(
        self, model_path, stream_corpus, tmp_path, capsys
    ):
        tel = tmp_path / "tel"
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(stream_corpus),
                "--batch-size", "100",
                "--steps-per-batch", "10",
                "--drift",
                "--telemetry-dir", str(tel),
            ]
        )
        assert code == 0
        assert "drift watchdog raised" not in capsys.readouterr().out
        assert not (tel / "alerts.jsonl").exists()

    def test_evaluate_serve_metrics_round_trip(
        self, model_path, corpus_path, capsys
    ):
        code = main(
            [
                "evaluate",
                "--model", str(model_path),
                "--corpus", str(corpus_path),
                "--max-queries", "20",
                "--serve-metrics", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving live telemetry" in out
        assert "MRR" in out


class TestExportBundle:
    def test_export_and_query_bundle(self, model_path, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        assert main(
            ["export", "--model", str(model_path), "--out", str(bundle_dir)]
        ) == 0
        assert (bundle_dir / "manifest.json").exists()
        capsys.readouterr()
        code = main(
            ["query", "--model", str(bundle_dir), "--time", "21.0", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nearest words" in out

    def test_evaluate_with_bundle(self, model_path, corpus_path, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle2"
        main(["export", "--model", str(model_path), "--out", str(bundle_dir)])
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--model", str(bundle_dir),
                "--corpus", str(corpus_path),
                "--max-queries", "20",
            ]
        )
        assert code == 0
        assert "MRR" in capsys.readouterr().out


class TestStoreFlags:
    @pytest.mark.parametrize("backend", ["dense", "shared", "mmap"])
    def test_train_with_store_backend(
        self, corpus_path, tmp_path, backend, capsys
    ):
        out = tmp_path / f"actor-{backend}.pkl"
        code = main(
            [
                "train",
                "--corpus", str(corpus_path),
                "--out", str(out),
                "--dim", "8",
                "--epochs", "1",
                "--store", backend,
            ]
        )
        assert code == 0
        assert out.exists()
        capsys.readouterr()
        assert main(
            ["query", "--model", str(out), "--time", "21.0", "--k", "3"]
        ) == 0

    def test_evaluate_mmap_bundle(self, model_path, corpus_path, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle-mmap"
        main(["export", "--model", str(model_path), "--out", str(bundle_dir)])
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--model", str(bundle_dir),
                "--corpus", str(corpus_path),
                "--max-queries", "20",
                "--mmap",
            ]
        )
        assert code == 0
        assert "MRR" in capsys.readouterr().out

    def test_evaluate_mmap_matches_eager(
        self, model_path, corpus_path, tmp_path, capsys
    ):
        """--mmap is a loading strategy, not a model change: same MRR table."""
        bundle_dir = tmp_path / "bundle-parity"
        main(["export", "--model", str(model_path), "--out", str(bundle_dir)])
        capsys.readouterr()
        common = [
            "evaluate",
            "--model", str(bundle_dir),
            "--corpus", str(corpus_path),
            "--max-queries", "15",
        ]
        assert main(common) == 0
        eager_out = capsys.readouterr().out
        assert main(common + ["--mmap"]) == 0
        mmap_out = capsys.readouterr().out
        assert mmap_out == eager_out

    def test_evaluate_mmap_rejects_pickled_model(
        self, model_path, corpus_path, capsys
    ):
        code = main(
            [
                "evaluate",
                "--model", str(model_path),
                "--corpus", str(corpus_path),
                "--mmap",
            ]
        )
        assert code == 2
        assert "bundle directory" in capsys.readouterr().err

    def test_export_migrates_bundle_for_mmap(
        self, model_path, corpus_path, tmp_path, capsys
    ):
        """An existing bundle re-exports in place of a pickle (v1 -> v2 path)."""
        first = tmp_path / "first"
        second = tmp_path / "second"
        main(["export", "--model", str(model_path), "--out", str(first)])
        assert main(
            ["export", "--model", str(first), "--out", str(second)]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--model", str(second),
                "--corpus", str(corpus_path),
                "--max-queries", "10",
                "--mmap",
            ]
        )
        assert code == 0
        assert "MRR" in capsys.readouterr().out

    def test_stream_with_shared_store(
        self, model_path, corpus_path, capsys
    ):
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(corpus_path),
                "--batch-size", "200",
                "--steps-per-batch", "5",
                "--store", "shared",
            ]
        )
        assert code == 0
        assert "streamed" in capsys.readouterr().out


class TestServeLoadgen:
    @pytest.fixture(scope="class")
    def bundle_path(self, model_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-serve") / "bundle"
        assert main(["export", "--model", str(model_path), "--out", str(path)]) == 0
        return path

    def test_serve_then_loadgen_round_trip(
        self, bundle_path, tmp_path, capsys
    ):
        """serve --mmap, loadgen burst against it, clean deadline drain."""
        import json
        import socket
        import threading
        import urllib.request

        tel_dir = tmp_path / "tel"
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        outcome = {}

        def run_server():
            outcome["code"] = main(
                [
                    "serve",
                    "--model", str(bundle_path),
                    "--mmap",
                    "--port", str(port),
                    "--max-seconds", "8",
                    "--telemetry-dir", str(tel_dir),
                ]
            )

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{port}"
        deadline = threading.Event()
        for _ in range(100):
            try:
                with urllib.request.urlopen(f"{url}/healthz", timeout=5) as r:
                    assert json.loads(r.read())["status"] == "ok"
                break
            except OSError:
                deadline.wait(0.05)
        else:
            pytest.fail("server never came up")
        capsys.readouterr()
        code = main(
            [
                "loadgen",
                "--url", url,
                "--n-queries", "40",
                "--duration", "0.5",
                "--concurrency", "4",
                "--fail-on-server-error",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qps" in out
        assert "server errors (5xx)  0" in out
        # Live tail attribution against the still-running server.
        assert main(["tail", "--url", url]) == 0
        tail_out = capsys.readouterr().out
        assert "stages by tail contribution" in tail_out
        assert "slowest requests" in tail_out
        # The embedded server exits on its --max-seconds deadline.
        thread.join(timeout=30)
        assert outcome["code"] == 0
        assert (tel_dir / "metrics.prom").exists()
        assert (tel_dir / "events.jsonl").exists()
        # The trace ring exported at shutdown replays through tail.  Drain
        # the server thread's shutdown banner first so the captured stream
        # holds nothing but the JSON summary.
        assert (tel_dir / "requests.jsonl").exists()
        capsys.readouterr()
        assert main(
            ["tail", "--trace", str(tel_dir / "requests.jsonl"), "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n"] > 0
        assert summary["stages"]

    def test_tail_reports_missing_trace(self, capsys):
        code = main(["tail", "--trace", "/nonexistent/requests.jsonl"])
        assert code == 2
        assert "could not read" in capsys.readouterr().err

    def test_serve_mmap_requires_bundle(self, model_path, capsys):
        code = main(
            ["serve", "--model", str(model_path), "--mmap", "--max-seconds", "1"]
        )
        assert code == 2
        assert "--mmap requires a bundle directory" in capsys.readouterr().err

    def test_loadgen_reports_transport_failure(self, capsys):
        code = main(
            [
                "loadgen",
                "--url", "http://127.0.0.1:9",
                "--n-queries", "3",
                "--duration", "0.1",
                "--concurrency", "2",
                "--timeout", "2",
                "--fail-on-server-error",
                "--json",
            ]
        )
        assert code == 1
        assert '"transport_errors": 3' in capsys.readouterr().out
