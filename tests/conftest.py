"""Shared fixtures: small seeded corpora and pre-built graphs.

Expensive artifacts (generated corpora, built graphs, a trained tiny ACTOR)
are session-scoped so the suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Actor, ActorConfig
from repro.data import CityConfig, CityModel, generate_dataset
from repro.graphs import GraphBuilder

# CI's store-matrix job sets REPRO_STORE=dense|shared|mmap to run the whole
# query/serialization surface against each storage backend; local runs
# default to the in-RAM dense backend.  The shard-matrix job additionally
# sets REPRO_SHARDS=K to hash-partition the shared tiny model's store over
# K child backends (repro.sharding), re-running the same surface sharded.
STORE_BACKEND = os.environ.get("REPRO_STORE", "dense")
STORE_SHARDS = int(os.environ.get("REPRO_SHARDS", "1"))

SMALL_CITY = CityConfig(
    n_neighborhoods=4,
    n_topics=5,
    venues_per_topic=6,
    n_users=60,
    keywords_per_topic=20,
    n_common_words=30,
    mention_rate=0.2,
)


@pytest.fixture(scope="session")
def city():
    """A small deterministic city model (ground truth available)."""
    return CityModel(SMALL_CITY, seed=11)


@pytest.fixture(scope="session")
def corpus(city):
    """800 records drawn from the small city."""
    return city.generate_corpus(800)


@pytest.fixture(scope="session")
def built(corpus):
    """Finalized activity + interaction graphs over the small corpus."""
    return GraphBuilder().build(corpus)


@pytest.fixture(scope="session")
def dataset():
    """A small utgeo2011-preset dataset bundle with splits."""
    return generate_dataset("utgeo2011", n_records=1500, seed=3)


@pytest.fixture(scope="session")
def store_backend():
    """The embedding-store backend this run exercises (see REPRO_STORE)."""
    return STORE_BACKEND


@pytest.fixture(scope="session")
def store_shards():
    """The shard count this run exercises (see REPRO_SHARDS)."""
    return STORE_SHARDS


@pytest.fixture(scope="session")
def tiny_actor(dataset):
    """A quickly-trained ACTOR model for query-surface tests."""
    config = ActorConfig(
        dim=16,
        epochs=3,
        line_samples=5_000,
        batches_per_epoch=4,
        seed=5,
        store_backend=STORE_BACKEND,
        store_shards=STORE_SHARDS,
    )
    return Actor(config).fit(dataset.train)
