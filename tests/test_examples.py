"""Sanity checks on the example scripts.

Full runs train real models (minutes); CI-level checking here verifies
each example compiles, has a main() entry point and documents itself.
The examples are executed for real by `pytest benchmarks/` users and in
EXPERIMENTS.md.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.name for p in EXAMPLE_FILES]
)
class TestExampleStructure:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_defines_main(self, path):
        tree = ast.parse(path.read_text())
        names = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names

    def test_imports_only_public_api(self, path):
        """Examples must demonstrate the public surface, not internals."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                assert not node.module.startswith("repro._"), node.module
