"""Executes the README quickstart verbatim — the docs must never rot.

The README marks its runnable example with ``<!-- quickstart:begin -->`` /
``<!-- quickstart:end -->`` comments; this test extracts the fenced Python
block between them and ``exec``s it.  If the public API drifts, this fails
before a user's copy-paste does.
"""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def _quickstart_source() -> str:
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"<!-- quickstart:begin -->\s*```python\n(.*?)```\s*<!-- quickstart:end -->",
        text,
        flags=re.DOTALL,
    )
    assert match, "README quickstart markers missing"
    return match.group(1)


def test_quickstart_block_runs(capsys):
    source = _quickstart_source()
    exec(compile(source, str(README), "exec"), {"__name__": "__quickstart__"})
    out = capsys.readouterr().out
    assert "final epoch loss:" in out
    assert "buffer holds" in out
    assert "best candidate:" in out


def test_cli_lifecycle_commands_parse():
    """Every CLI line shown in the README must at least parse."""
    from repro.cli import build_parser

    text = README.read_text(encoding="utf-8")
    commands = re.findall(
        r"python -m repro ([^\n\\]*(?:\\\n[^\n\\]*)*)", text
    )
    assert commands, "README shows no CLI invocations"
    parser = build_parser()
    for command in commands:
        argv = command.replace("\\\n", " ").split()
        if not argv or "/" in argv[0]:
            continue  # prose mention ("generate/stats/..."), not an invocation
        parser.parse_args(argv)
