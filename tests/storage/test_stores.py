"""Backend-agnostic contract tests for the embedding storage layer.

Every test in :class:`TestStoreContract` runs against all three backends
(dense, shared, mmap); backend-specific behavior (persistence, pickling
semantics, read-only enforcement, segment cleanup) lives in the dedicated
classes below.
"""

import gc
import pickle

import numpy as np
import pytest

from repro.storage import (
    STORE_BACKENDS,
    DenseStore,
    MmapStore,
    SharedMatrix,
    SharedMemStore,
    make_store,
    normalize_rows,
)


def _matrices(rows=8, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dim)), rng.normal(size=(rows, dim))


@pytest.fixture(params=STORE_BACKENDS)
def store(request, tmp_path):
    """One store per backend, pre-loaded with deterministic matrices."""
    center, context = _matrices()
    directory = tmp_path / "store" if request.param == "mmap" else None
    s = make_store(request.param, center, context, directory=directory)
    yield s
    s.close()


class TestMakeStore:
    def test_backend_names(self, tmp_path):
        assert make_store("dense").backend == "dense"
        assert make_store("shared").backend == "shared"
        assert make_store("mmap", directory=tmp_path / "m").backend == "mmap"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            make_store("etcd")

    def test_directory_rejected_for_ram_backends(self, tmp_path):
        with pytest.raises(ValueError, match="directory"):
            make_store("dense", directory=tmp_path)

    def test_default_is_dense(self):
        assert isinstance(make_store(), DenseStore)


class TestStoreContract:
    def test_roundtrip(self, store):
        center, context = _matrices()
        np.testing.assert_array_equal(store.center, center)
        np.testing.assert_array_equal(store.context, context)
        assert store.n_rows == 8
        assert store.dim == 4

    def test_empty_store_raises_attribute_error(self, store):
        empty = make_store(store.backend)
        with empty:
            with pytest.raises(AttributeError, match="center"):
                empty.as_array("center")
            assert not hasattr_center(empty)

    def test_bad_matrix_name_rejected(self, store):
        with pytest.raises(ValueError, match="matrix name"):
            store.as_array("weights")

    def test_set_matrix_bumps_version(self, store):
        before = store.version
        store.set_matrix("center", np.zeros((8, 4)))
        assert store.version == before + 1
        np.testing.assert_array_equal(store.center, np.zeros((8, 4)))

    def test_put_row_bumps_version_and_writes(self, store):
        before = store.version
        store.put_row(3, np.arange(4, dtype=float))
        assert store.version == before + 1
        np.testing.assert_array_equal(store.get_row(3), np.arange(4.0))

    def test_view_gathers_rows(self, store):
        gathered = store.view([2, 0, 2], name="context")
        expected = store.context[[2, 0, 2]]
        np.testing.assert_array_equal(gathered, expected)

    def test_grow_appends_and_bumps(self, store):
        before = store.version
        new_c = np.full((3, 4), 7.0)
        new_x = np.full((3, 4), 9.0)
        first = store.grow(new_c, new_x)
        assert first == 8
        assert store.n_rows == 11
        assert store.version == before + 1
        np.testing.assert_array_equal(store.center[8:], new_c)
        np.testing.assert_array_equal(store.context[8:], new_x)

    def test_grow_zero_rows_is_noop(self, store):
        before = store.version
        assert store.grow(np.empty((0, 4)), np.empty((0, 4))) == 8
        assert store.n_rows == 8
        assert store.version == before

    def test_grow_shape_mismatch_rejected(self, store):
        with pytest.raises(ValueError, match="matching"):
            store.grow(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_normalized_matches_reference(self, store):
        np.testing.assert_array_equal(
            store.normalized("center"), normalize_rows(store.center)
        )

    def test_normalized_cached_until_mutation(self, store):
        first = store.normalized("center")
        assert store.normalized("center") is first
        store.put_row(0, np.ones(4))
        second = store.normalized("center")
        assert second is not first
        np.testing.assert_array_equal(second, normalize_rows(store.center))

    def test_bump_invalidates_after_inplace_write(self, store):
        cached = store.normalized("center")
        store.center[0] = 5.0  # in-place SGD-style write, store unaware
        assert store.normalized("center") is cached  # stale until bump
        store.bump()
        assert store.normalized("center") is not cached

    def test_coerces_to_float64(self, store):
        store.set_matrix("center", np.ones((8, 4), dtype=np.float32))
        assert store.center.dtype == np.float64

    def test_one_dim_matrix_rejected(self, store):
        with pytest.raises(ValueError, match="2-D"):
            store.set_matrix("center", np.zeros(4))

    def test_pickle_roundtrip(self, store):
        restored = pickle.loads(pickle.dumps(store))
        try:
            np.testing.assert_array_equal(restored.center, store.center)
            np.testing.assert_array_equal(restored.context, store.context)
            assert restored.version == store.version
            assert restored.backend == store.backend
        finally:
            restored.close()

    def test_close_idempotent(self, store):
        store.close()
        store.close()

    def test_repr_mentions_shape(self, store):
        assert "8x4" in repr(store)


def hasattr_center(store):
    """hasattr-style probe mirroring prediction-model attribute checks."""
    try:
        store.center
    except AttributeError:
        return False
    return True


class TestDenseStore:
    def test_float64_input_adopted_zero_copy(self):
        center, context = _matrices()
        store = DenseStore(center, context)
        assert store.center is center
        store.center[0, 0] = 42.0
        assert center[0, 0] == 42.0


class TestSharedMemStore:
    def test_inplace_put_preserves_segment(self):
        center, context = _matrices()
        with SharedMemStore(center, context) as store:
            view = store.center
            store.set_matrix("center", np.zeros((8, 4)))
            assert store.center is view  # same pages, overwritten in place

    def test_shape_change_reallocates(self):
        center, context = _matrices()
        with SharedMemStore(center, context) as store:
            store.set_matrix("center", np.zeros((12, 4)))
            assert store.center.shape == (12, 4)

    def test_unpickled_store_is_private(self):
        center, context = _matrices()
        with SharedMemStore(center, context) as store:
            with pickle.loads(pickle.dumps(store)) as restored:
                restored.center[0, 0] = -1.0
                assert store.center[0, 0] == center[0, 0]

    def test_segment_unlinked_when_dropped_without_close(self):
        """The weakref.finalize crash guard unlinks leaked segments."""
        from multiprocessing import shared_memory

        matrix = SharedMatrix(np.zeros((2, 2)))
        name = matrix._shm.name
        del matrix
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_store_segments_unlinked_on_drop(self):
        from multiprocessing import shared_memory

        center, context = _matrices()
        store = SharedMemStore(center, context)
        names = [seg._shm.name for seg in store._segments.values()]
        del store
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestMmapStore:
    def test_files_on_disk(self, tmp_path):
        center, context = _matrices()
        with MmapStore(center, context, directory=tmp_path / "m") as store:
            store.flush()
            assert (tmp_path / "m" / "center.npy").exists()
            assert (tmp_path / "m" / "context.npy").exists()

    def test_reopen_sees_writes(self, tmp_path):
        center, context = _matrices()
        store = MmapStore(center, context, directory=tmp_path / "m")
        store.put_row(0, np.ones(4))
        store.close()
        with MmapStore.open(tmp_path / "m") as reopened:
            np.testing.assert_array_equal(reopened.get_row(0), np.ones(4))
            np.testing.assert_array_equal(reopened.context, context)

    def test_readonly_mode_rejects_writes(self, tmp_path):
        center, context = _matrices()
        MmapStore(center, context, directory=tmp_path / "m").close()
        with MmapStore.open(tmp_path / "m", mode="r") as ro:
            with pytest.raises(ValueError, match="read-only"):
                ro.set_matrix("center", np.zeros((8, 4)))
            with pytest.raises((ValueError, OSError)):
                ro.center[0, 0] = 1.0

    def test_readonly_without_directory_rejected(self):
        with pytest.raises(ValueError, match="directory"):
            MmapStore(mode="r")

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            MmapStore(directory=tmp_path, mode="w+")

    def test_grow_persists_across_reopen(self, tmp_path):
        center, context = _matrices()
        store = MmapStore(center, context, directory=tmp_path / "m")
        store.grow(np.ones((2, 4)), np.ones((2, 4)))
        store.close()
        with MmapStore.open(tmp_path / "m") as reopened:
            assert reopened.n_rows == 10
            np.testing.assert_array_equal(reopened.center[8:], np.ones((2, 4)))

    def test_no_tmp_files_left_behind(self, tmp_path):
        center, context = _matrices()
        with MmapStore(center, context, directory=tmp_path / "m") as store:
            store.grow(np.ones((2, 4)), np.ones((2, 4)))
            leftovers = list((tmp_path / "m").glob("*.tmp"))
            assert leftovers == []

    def test_pickle_references_directory(self, tmp_path):
        """Mmap pickles carry the path, not the matrices."""
        center, context = _matrices(rows=64, dim=32)
        with MmapStore(center, context, directory=tmp_path / "m") as store:
            blob = pickle.dumps(store)
            assert len(blob) < center.nbytes  # no embedded matrix payload
            with pickle.loads(blob) as restored:
                np.testing.assert_array_equal(restored.center, center)
