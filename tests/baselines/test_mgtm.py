"""Tests for the MGTM approximation."""

import numpy as np
import pytest

from repro.baselines import MGTM
from tests.baselines.test_lgta import region_corpus


class TestConstruction:
    def test_inherits_lgta_interface(self):
        model = MGTM()
        assert model.name == "MGTM"
        assert not model.supports_time

    def test_rejects_bad_coupling(self):
        with pytest.raises(ValueError):
            MGTM(coupling=1.5)

    def test_default_has_more_regions_than_lgta(self):
        from repro.baselines import LGTA

        assert MGTM().n_regions > LGTA().n_regions


class TestFit:
    @pytest.fixture(scope="class")
    def fitted(self):
        return MGTM(
            n_regions=6,
            n_topics=3,
            n_iter=15,
            coupling=0.4,
            vocab_min_count=1,
            seed=0,
        ).fit(region_corpus())

    def test_distributions_valid(self, fitted):
        np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0)

    def test_scoring_works(self, fitted):
        scores = fitted.score_candidates(
            target="text",
            candidates=[("coffee",), ("beer",)],
            location=(2.0, 2.0),
        )
        assert scores.shape == (2,)
        assert scores[0] > scores[1]

    def test_coupling_smooths_neighbor_mixtures(self):
        """Higher coupling -> adjacent regions' topic mixtures closer."""
        corpus = region_corpus()
        sharp = MGTM(
            n_regions=6, n_topics=3, n_iter=15, coupling=0.0,
            vocab_min_count=1, seed=0,
        ).fit(corpus)
        smooth = MGTM(
            n_regions=6, n_topics=3, n_iter=15, coupling=0.9,
            vocab_min_count=1, seed=0,
        ).fit(corpus)

        def mean_neighbor_gap(model):
            dist = np.linalg.norm(
                model.mu[:, None, :] - model.mu[None, :, :], axis=2
            )
            np.fill_diagonal(dist, np.inf)
            nearest = dist.argmin(axis=1)
            gaps = np.abs(model.theta - model.theta[nearest]).sum(axis=1)
            return gaps.mean()

        assert mean_neighbor_gap(smooth) <= mean_neighbor_gap(sharp)

    def test_zero_coupling_matches_lgta_family(self):
        """coupling=0 is plain LGTA with more regions — must still fit."""
        model = MGTM(
            n_regions=5, n_topics=3, n_iter=5, coupling=0.0,
            vocab_min_count=1, seed=0,
        ).fit(region_corpus(n_per=40))
        assert np.isfinite(model.phi).all()
