"""Tests for the CrossMap / CrossMap(U) baselines."""

import numpy as np
import pytest

from repro.baselines import CrossMap
from repro.graphs import EdgeType, NodeType


@pytest.fixture(scope="module")
def fitted(dataset):
    return CrossMap(
        dim=16, epochs=2, seed=0
    ).fit(dataset.train)


class TestCrossMap:
    def test_name(self):
        assert CrossMap().name == "CrossMap"
        assert CrossMap(include_users=True).name == "CrossMap(U)"

    def test_no_user_vertices_by_default(self, fitted):
        assert fitted.built.activity.counts_by_type()[NodeType.USER] == 0

    def test_smoothing_edges_present(self, fitted):
        assert len(fitted.built.activity.edge_set(EdgeType.LL)) > 0
        assert len(fitted.built.activity.edge_set(EdgeType.TT)) > 0

    def test_smoothing_can_be_disabled(self, dataset):
        model = CrossMap(
            dim=8, epochs=1, neighbor_smoothing=False, seed=0
        ).fit(dataset.train)
        assert len(model.built.activity.edge_set(EdgeType.LL)) == 0

    def test_embeddings_shape_and_finite(self, fitted):
        assert fitted.center.shape[0] == fitted.built.activity.n_nodes
        assert fitted.center.shape[1] == 16
        assert np.isfinite(fitted.center).all()

    def test_score_candidates(self, fitted, dataset):
        records = dataset.test.records[:4]
        scores = fitted.score_candidates(
            target="text",
            candidates=[r.words for r in records],
            time=records[0].timestamp,
            location=records[0].location,
        )
        assert scores.shape == (4,)
        assert np.isfinite(scores).all()

    def test_supports_time(self, fitted):
        assert fitted.supports_time

    def test_crossmap_u_includes_user_vertices(self, dataset):
        model = CrossMap(
            dim=8, epochs=1, include_users=True, seed=0
        ).fit(dataset.train)
        counts = model.built.activity.counts_by_type()
        assert counts[NodeType.USER] > 0
        assert len(model.built.activity.edge_set(EdgeType.UW)) > 0

    def test_seeded_reproducibility(self, dataset):
        a = CrossMap(dim=8, epochs=1, seed=3).fit(dataset.train)
        b = CrossMap(dim=8, epochs=1, seed=3).fit(dataset.train)
        np.testing.assert_array_equal(a.center, b.center)
