"""Tests for the LINE / LINE(U) activity-graph baselines."""

import numpy as np
import pytest

from repro.baselines import LineModel
from repro.graphs import NodeType


class TestLineModel:
    def test_names(self):
        assert LineModel().name == "LINE"
        assert LineModel(include_users=True).name == "LINE(U)"

    def test_fit_produces_finite_embeddings(self, dataset):
        model = LineModel(dim=8, n_samples=5_000, seed=0).fit(dataset.train)
        assert model.center.shape[1] == 8
        assert np.isfinite(model.center).all()

    def test_plain_line_excludes_users(self, dataset):
        model = LineModel(dim=8, n_samples=2_000, seed=0).fit(dataset.train)
        assert model.built.activity.counts_by_type()[NodeType.USER] == 0

    def test_line_u_includes_users(self, dataset):
        model = LineModel(
            dim=8, n_samples=2_000, include_users=True, seed=0
        ).fit(dataset.train)
        assert model.built.activity.counts_by_type()[NodeType.USER] > 0

    def test_first_order_variant(self, dataset):
        model = LineModel(
            dim=8, order=1, n_samples=2_000, seed=0
        ).fit(dataset.train)
        assert model.center is model.context

    def test_score_candidates(self, dataset):
        model = LineModel(dim=8, n_samples=2_000, seed=0).fit(dataset.train)
        records = dataset.test.records[:3]
        scores = model.score_candidates(
            target="location",
            candidates=[r.location for r in records],
            time=records[0].timestamp,
            words=records[0].words,
        )
        assert scores.shape == (3,)

    def test_default_sample_budget_scales_with_edges(self, dataset):
        model = LineModel(dim=8, seed=0)
        assert model.n_samples is None  # resolved at fit time
        model.fit(dataset.train)
        assert np.isfinite(model.center).all()
