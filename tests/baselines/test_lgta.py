"""Tests for the LGTA geographical topic model."""

import numpy as np
import pytest

from repro.baselines import LGTA
from repro.data import Corpus, Record


def region_corpus(seed=0, n_per=120):
    """Two regions with disjoint vocabularies — easy for a topic model."""
    rng = np.random.default_rng(seed)
    records = []
    rid = 0
    themes = (
        ((2.0, 2.0), ["coffee", "brunch", "bakery"]),
        ((15.0, 15.0), ["beer", "concert", "dancing"]),
    )
    for center, vocabulary in themes:
        for _ in range(n_per):
            loc = rng.normal(center, 0.5, size=2)
            words = tuple(
                rng.choice(vocabulary, size=3, replace=True).tolist()
            )
            records.append(
                Record(
                    record_id=rid,
                    user=f"u{rid % 9}",
                    timestamp=float(rng.uniform(0, 24)),
                    location=(float(loc[0]), float(loc[1])),
                    words=words,
                )
            )
            rid += 1
    return Corpus(records=records)


@pytest.fixture(scope="module")
def fitted():
    return LGTA(
        n_regions=4, n_topics=3, n_iter=25, vocab_min_count=1, seed=0
    ).fit(region_corpus())


class TestConstruction:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            LGTA(n_regions=0)
        with pytest.raises(ValueError):
            LGTA(n_topics=0)
        with pytest.raises(ValueError):
            LGTA(n_iter=0)

    def test_does_not_support_time(self):
        assert not LGTA.supports_time

    def test_unfitted_score_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LGTA().score_candidates(
                target="text", candidates=[("a",)], location=(0.0, 0.0)
            )


class TestFit:
    def test_parameters_are_valid_distributions(self, fitted):
        assert fitted.pi.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0)
        assert (fitted.sigma2 > 0).all()

    def test_loglik_nondecreasing_tail(self, fitted):
        """EM monotonicity (allowing tiny numerical slack)."""
        history = fitted.loglik_history
        assert len(history) == 25
        for earlier, later in zip(history[5:-1], history[6:]):
            assert later >= earlier - abs(earlier) * 1e-6

    def test_region_means_near_data_clusters(self, fitted):
        mu = fitted.mu
        heavy = fitted.pi > 0.1
        assert heavy.sum() >= 2
        dist_a = np.linalg.norm(mu[heavy] - [2, 2], axis=1).min()
        dist_b = np.linalg.norm(mu[heavy] - [15, 15], axis=1).min()
        assert dist_a < 1.0
        assert dist_b < 1.0


class TestScoring:
    def test_text_prediction_prefers_regional_words(self, fitted):
        scores = fitted.score_candidates(
            target="text",
            candidates=[("coffee", "bakery"), ("beer", "dancing")],
            location=(2.0, 2.0),
        )
        assert scores[0] > scores[1]

    def test_location_prediction_prefers_regional_locations(self, fitted):
        scores = fitted.score_candidates(
            target="location",
            candidates=[(2.0, 2.0), (15.0, 15.0)],
            words=("beer", "concert"),
        )
        assert scores[1] > scores[0]

    def test_time_target_raises(self, fitted):
        with pytest.raises(ValueError, match="time"):
            fitted.score_candidates(
                target="time", candidates=[1.0], words=("a",)
            )

    def test_text_without_location_raises(self, fitted):
        with pytest.raises(ValueError, match="location"):
            fitted.score_candidates(target="text", candidates=[("a",)])

    def test_location_without_words_raises(self, fitted):
        with pytest.raises(ValueError, match="text"):
            fitted.score_candidates(
                target="location", candidates=[(0.0, 0.0)]
            )

    def test_empty_candidate_bag_scores_neg_inf(self, fitted):
        scores = fitted.score_candidates(
            target="text",
            candidates=[(), ("coffee",)],
            location=(2.0, 2.0),
        )
        assert scores[0] == -np.inf
        assert np.isfinite(scores[1])

    def test_out_of_vocab_words_ignored_in_query(self, fitted):
        scores = fitted.score_candidates(
            target="location",
            candidates=[(2.0, 2.0), (15.0, 15.0)],
            words=("unseen_word", "coffee"),
        )
        assert scores[0] > scores[1]
