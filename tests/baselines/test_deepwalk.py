"""Tests for the DeepWalk / node2vec baselines."""

import numpy as np
import pytest

from repro.baselines.deepwalk import DeepWalk, Node2Vec, _HomogeneousAdjacency
from repro.graphs import NodeType


@pytest.fixture(scope="module")
def fitted(dataset):
    return DeepWalk(
        dim=16, walks_per_node=2, walk_length=10, epochs=1, seed=0
    ).fit(dataset.train)


class TestDeepWalk:
    def test_name(self):
        assert DeepWalk().name == "DeepWalk"

    def test_validation(self):
        with pytest.raises(ValueError):
            DeepWalk(walks_per_node=0)
        with pytest.raises(ValueError):
            DeepWalk(walk_length=0)
        with pytest.raises(ValueError):
            DeepWalk(window=0)

    def test_embeddings_finite(self, fitted):
        assert np.isfinite(fitted.center).all()
        assert fitted.center.shape[1] == 16

    def test_no_user_vertices(self, fitted):
        assert fitted.built.activity.counts_by_type()[NodeType.USER] == 0

    def test_score_candidates(self, fitted, dataset):
        records = dataset.test.records[:3]
        scores = fitted.score_candidates(
            target="text",
            candidates=[r.words for r in records],
            time=records[0].timestamp,
            location=records[0].location,
        )
        assert scores.shape == (3,)

    def test_walks_stay_on_graph_edges(self, fitted):
        adjacency = _HomogeneousAdjacency(fitted.built.activity)
        rng = np.random.default_rng(1)
        walk = fitted._walk_from(0, adjacency, rng)
        for a, b in zip(walk, walk[1:]):
            assert b in adjacency.neighbor_set(a)

    def test_seeded_reproducibility(self, dataset):
        a = DeepWalk(
            dim=8, walks_per_node=1, walk_length=6, epochs=1, seed=3
        ).fit(dataset.train)
        b = DeepWalk(
            dim=8, walks_per_node=1, walk_length=6, epochs=1, seed=3
        ).fit(dataset.train)
        np.testing.assert_array_equal(a.center, b.center)


class TestNode2Vec:
    def test_name_and_params(self):
        model = Node2Vec(p=0.5, q=2.0)
        assert model.name == "node2vec"
        assert model.p == 0.5
        assert model.q == 2.0

    def test_rejects_bad_bias_params(self):
        with pytest.raises(ValueError):
            Node2Vec(p=0.0)
        with pytest.raises(ValueError):
            Node2Vec(q=-1.0)

    def test_fit_runs(self, dataset):
        model = Node2Vec(
            dim=8,
            p=0.5,
            q=2.0,
            walks_per_node=1,
            walk_length=8,
            epochs=1,
            seed=0,
        ).fit(dataset.train)
        assert np.isfinite(model.center).all()

    def test_biased_walk_valid_edges(self, fitted):
        model = Node2Vec(p=0.25, q=4.0, walk_length=12)
        model.built = fitted.built  # reuse the built graph
        adjacency = _HomogeneousAdjacency(fitted.built.activity)
        rng = np.random.default_rng(2)
        walk = model._walk_from(0, adjacency, rng)
        assert len(walk) > 1
        for a, b in zip(walk, walk[1:]):
            assert b in adjacency.neighbor_set(a)

    def test_low_p_increases_backtracking(self, fitted):
        """p << 1 makes returning to the previous node much more likely."""
        adjacency = _HomogeneousAdjacency(fitted.built.activity)

        def backtrack_rate(p, seed):
            model = Node2Vec(p=p, q=1.0, walk_length=20)
            model.built = fitted.built
            rng = np.random.default_rng(seed)
            backtracks = steps = 0
            for start in range(0, 40):
                walk = model._walk_from(start, adjacency, rng)
                for i in range(2, len(walk)):
                    steps += 1
                    if walk[i] == walk[i - 2]:
                        backtracks += 1
            return backtracks / max(1, steps)

        assert backtrack_rate(0.05, seed=3) > backtrack_rate(20.0, seed=3)
