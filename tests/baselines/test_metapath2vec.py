"""Tests for the metapath2vec baseline."""

import numpy as np
import pytest

from repro.baselines import MetaPath2Vec
from repro.graphs import NodeType


class TestConstruction:
    def test_rejects_bad_letters(self):
        with pytest.raises(ValueError, match="meta_path"):
            MetaPath2Vec(meta_path="LXW")

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError, match="meta_path"):
            MetaPath2Vec(meta_path="")

    def test_rejects_unwalkable_pattern(self):
        # TIME-TIME edges exist as a type (TT), but T-L-T-L is fine; an
        # unwalkable cyclic pattern would be impossible to build here since
        # all type pairs have an edge type. Pattern validation still runs.
        MetaPath2Vec(meta_path="LWTW")  # the paper's default must validate


class TestFit:
    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        return MetaPath2Vec(
            dim=16,
            walks_per_node=2,
            walk_length=12,
            epochs=1,
            seed=0,
        ).fit(dataset.train)

    def test_embeddings_finite(self, fitted):
        assert np.isfinite(fitted.center).all()

    def test_walks_follow_meta_path(self, fitted, dataset):
        """Regenerated walks must follow a rotation of L-W-T-W.

        Walks start from every node whose type appears in the pattern, so
        each walk's type sequence matches the pattern rotated to begin at
        its start node's type.
        """
        from repro.baselines.metapath2vec import _TypedAdjacency

        rng = np.random.default_rng(1)
        adjacency = _TypedAdjacency(fitted.built.activity)
        walks = fitted._generate_walks(fitted.built.activity, adjacency, rng)
        assert walks
        pattern = [NodeType.LOCATION, NodeType.WORD, NodeType.TIME, NodeType.WORD]
        rotations = [pattern[i:] + pattern[:i] for i in range(4)]
        for walk in walks[:40]:
            types = [fitted.built.activity.type_of(n) for n in walk]
            assert any(
                all(
                    t is rot[i % 4] for i, t in enumerate(types)
                )
                for rot in rotations
                if rot[0] is types[0]
            ), types

    def test_walks_start_from_every_pattern_type(self, fitted):
        """Coverage fix: walks must start at W and T nodes too, not only L."""
        from repro.baselines.metapath2vec import _TypedAdjacency

        rng = np.random.default_rng(2)
        adjacency = _TypedAdjacency(fitted.built.activity)
        walks = fitted._generate_walks(fitted.built.activity, adjacency, rng)
        start_types = {fitted.built.activity.type_of(w[0]) for w in walks}
        assert {NodeType.LOCATION, NodeType.WORD, NodeType.TIME} <= start_types

    def test_no_user_vertices_for_default_path(self, fitted):
        assert fitted.built.activity.counts_by_type()[NodeType.USER] == 0

    def test_score_candidates(self, fitted, dataset):
        records = dataset.test.records[:3]
        scores = fitted.score_candidates(
            target="time",
            candidates=[r.timestamp for r in records],
            location=records[0].location,
            words=records[0].words,
        )
        assert scores.shape == (3,)

    def test_window_pairs_within_bounds(self, fitted):
        pairs = fitted._walk_pairs([[1, 2, 3, 4, 5]])
        # window=3: every ordered pair within distance 3
        expected_count = sum(
            1
            for i in range(5)
            for j in range(max(0, i - 3), min(5, i + 4))
            if i != j
        )
        assert pairs.shape == (expected_count, 2)
