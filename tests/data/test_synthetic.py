"""Tests for the synthetic city simulator (the datasets substitute)."""

import numpy as np
import pytest

from repro.data import CityConfig, CityModel


class TestCityConfig:
    def test_defaults_valid(self):
        CityConfig()

    def test_rejects_bad_mention_rate(self):
        with pytest.raises(ValueError):
            CityConfig(mention_rate=1.5)

    def test_rejects_fraction_overflow(self):
        with pytest.raises(ValueError, match="must be <= 1"):
            CityConfig(topic_word_fraction=0.8, venue_word_fraction=0.4)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            CityConfig(n_topics=0)


class TestCityModel:
    @pytest.fixture(scope="class")
    def small_city(self):
        return CityModel(
            CityConfig(n_topics=4, venues_per_topic=3, n_users=30), seed=1
        )

    def test_topic_count(self, small_city):
        assert len(small_city.topics) == 4

    def test_venue_count(self, small_city):
        assert len(small_city.venues) == 4 * 3

    def test_venues_inside_city(self, small_city):
        span = small_city.config.city_span_km
        for venue in small_city.venues:
            assert 0.0 <= venue.location[0] <= span
            assert 0.0 <= venue.location[1] <= span

    def test_topic_keyword_probs_normalized(self, small_city):
        for topic in small_city.topics:
            assert sum(topic.keyword_probs) == pytest.approx(1.0)

    def test_user_prefs_normalized(self, small_city):
        for user in small_city.users:
            assert user.topic_prefs.sum() == pytest.approx(1.0)

    def test_users_have_friends(self, small_city):
        for user in small_city.users:
            assert 0 < len(user.friends) <= small_city.config.friends_per_user
            assert all(0 <= f < len(small_city.users) for f in user.friends)

    def test_generation_is_seeded(self):
        config = CityConfig(n_users=20)
        a = CityModel(config, seed=5).generate_corpus(50)
        b = CityModel(config, seed=5).generate_corpus(50)
        for ra, rb in zip(a, b):
            assert ra == rb

    def test_different_seeds_differ(self):
        config = CityConfig(n_users=20)
        a = CityModel(config, seed=5).generate_corpus(50)
        b = CityModel(config, seed=6).generate_corpus(50)
        assert any(ra != rb for ra, rb in zip(a, b))

    def test_record_ids_sequential(self, small_city):
        corpus = CityModel(
            CityConfig(n_users=10), seed=0
        ).generate_corpus(10)
        assert [r.record_id for r in corpus] == list(range(10))


class TestGenerativeStructure:
    """The corpus must exhibit the structure ACTOR is designed to exploit."""

    @pytest.fixture(scope="class")
    def city(self):
        return CityModel(
            CityConfig(n_topics=6, n_users=100, mention_rate=0.2), seed=3
        )

    @pytest.fixture(scope="class")
    def corpus(self, city):
        return city.generate_corpus(2000)

    def test_mention_rate_near_configured(self, corpus, city):
        rate = corpus.mention_rate()
        assert abs(rate - city.config.mention_rate) < 0.05

    def test_social_records_have_exactly_one_mention(self, corpus):
        for record in corpus:
            assert len(record.mentions) <= 1

    def test_mentions_are_real_users(self, corpus, city):
        names = {u.name for u in city.users}
        for record in corpus:
            for mention in record.mentions:
                assert mention in names

    def test_topic_words_cooccur_with_topic_hours(self, corpus, city):
        """Non-social records' hours cluster near their topic's peak hour."""
        for topic in city.topics:
            signature = topic.keywords[0]
            hours = [
                r.time_of_day
                for r in corpus
                if signature in r.words and not r.mentions
            ]
            if len(hours) < 10:
                continue
            diff = np.abs(np.asarray(hours) - topic.peak_hour)
            circular = np.minimum(diff, 24.0 - diff)
            # von Mises with kappa=3 has circular std ~ 2.4h; the mean
            # offset of true draws must be far below the uniform baseline 6h.
            assert circular.mean() < 4.0

    def test_venue_tokens_colocate(self, corpus, city):
        """Records naming a venue sit near that venue (non-social ones)."""
        by_token: dict[str, list] = {}
        for record in corpus:
            if record.mentions:
                continue
            for word in record.words:
                if word.startswith("venue_"):
                    by_token.setdefault(word, []).append(record.location)
        checked = 0
        for token, locations in by_token.items():
            venue = city.venue_by_token(token)
            if venue is None or len(locations) < 5:
                continue
            dists = [
                np.linalg.norm(np.asarray(l) - np.asarray(venue.location))
                for l in locations
            ]
            assert float(np.median(dists)) < 1.0  # GPS noise is 0.15 km
            checked += 1
        assert checked > 0

    def test_ground_truth_topic_of_word(self, city):
        topic = city.topics[0]
        assert city.topic_of_word(topic.keywords[0]) == topic.topic_id
        assert city.topic_of_word("common_001") is None

    def test_rejects_nonpositive_corpus_size(self, city):
        with pytest.raises(ValueError):
            city.generate_corpus(0)


class TestQueryStream:
    @pytest.fixture(scope="class")
    def stream_city(self):
        return CityModel(
            CityConfig(n_topics=4, venues_per_topic=3, n_users=40), seed=9
        )

    @pytest.fixture(scope="class")
    def events(self, stream_city):
        return stream_city.generate_query_stream(150, duration=6.0, n_noise=4)

    def test_count_and_offsets_sorted_in_range(self, events):
        assert len(events) == 150
        offsets = [e.offset for e in events]
        assert offsets == sorted(offsets)
        assert all(0.0 <= o <= 6.0 for o in offsets)

    def test_bodies_are_json_ready(self, events):
        import json

        for event in events:
            round_trip = json.loads(json.dumps(event.body))
            assert round_trip == event.body

    def test_mixed_endpoints_and_modalities(self, events):
        endpoints = {e.endpoint for e in events}
        assert endpoints == {"/v1/predict", "/v1/neighbors"}
        targets = {
            e.body["target"] for e in events if e.endpoint == "/v1/predict"
        }
        assert targets == {"text", "location", "time"}

    def test_predict_bodies_have_truth_among_candidates(self, events):
        for event in events:
            if event.endpoint != "/v1/predict":
                continue
            body = event.body
            assert len(body["candidates"]) == 5  # truth + n_noise
            present = [
                key for key in ("time", "location", "words") if key in body
            ]
            assert len(present) == 2  # the two non-target modalities

    def test_neighbor_bodies_well_formed(self, events):
        for event in events:
            if event.endpoint != "/v1/neighbors":
                continue
            assert event.body["modality"] in ("word", "time", "location")
            assert event.body["k"] == 10

    def test_zipf_popularity_is_skewed(self, stream_city):
        events = stream_city.generate_query_stream(400, duration=1.0)
        counts = {}
        for event in events:
            counts[event.user] = counts.get(event.user, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # The head of a Zipf(1.1) over 40 users carries far more traffic
        # than the uniform share (400/40 = 10).
        assert top[0] > 25
        assert len(counts) < 40

    def test_diurnal_peak_concentrates_traffic(self, stream_city):
        events = stream_city.generate_query_stream(
            600, duration=24.0, diurnal_amplitude=0.9, peak_hour=20.0
        )
        hours = np.asarray([e.offset for e in events])  # duration==24h
        near_peak = np.sum(np.abs(hours - 20.0) < 3.0)
        near_trough = np.sum(np.abs(hours - 8.0) < 3.0)
        assert near_peak > 2 * near_trough

    def test_stream_is_seeded(self):
        config = CityConfig(n_topics=4, venues_per_topic=3, n_users=30)
        first = CityModel(config, seed=3).generate_query_stream(40)
        second = CityModel(config, seed=3).generate_query_stream(40)
        assert first == second

    def test_rejects_bad_arguments(self, stream_city):
        with pytest.raises(ValueError):
            stream_city.generate_query_stream(0)
        with pytest.raises(ValueError):
            stream_city.generate_query_stream(5, neighbor_fraction=1.5)
