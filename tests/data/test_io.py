"""Tests for JSONL corpus persistence."""

import json

import pytest

from repro.data import Corpus, Record, load_corpus, save_corpus
from repro.data.io import record_from_dict, record_to_dict


def sample_corpus():
    return Corpus.from_records(
        [
            Record(
                record_id=0,
                user="alice",
                timestamp=12.25,
                location=(3.5, -1.25),
                words=("harbor", "dock"),
                mentions=("bob",),
            ),
            Record(
                record_id=1,
                user="bob",
                timestamp=0.0,
                location=(0.0, 0.0),
                words=(),
            ),
        ]
    )


class TestRecordDictRoundtrip:
    def test_roundtrip_exact(self):
        record = sample_corpus()[0]
        assert record_from_dict(record_to_dict(record)) == record

    def test_missing_mentions_defaults_empty(self):
        data = record_to_dict(sample_corpus()[1])
        del data["mentions"]
        assert record_from_dict(data).mentions == ()


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        corpus = sample_corpus()
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.records == corpus.records

    def test_one_record_per_line(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(sample_corpus(), path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # each line is standalone JSON

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(sample_corpus(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_corpus(path)) == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record_id": 0}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_corpus(path)

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(load_corpus(path)) == 0
