"""Tests for the Record/Corpus data model."""

import pytest

from repro.data import Corpus, Record


def make_record(record_id=0, **overrides):
    base = dict(
        record_id=record_id,
        user="alice",
        timestamp=26.5,
        location=(1.0, 2.0),
        words=("coffee", "brunch"),
        mentions=(),
    )
    base.update(overrides)
    return Record(**base)


class TestRecord:
    def test_time_of_day_wraps_daily(self):
        assert make_record(timestamp=26.5).time_of_day == pytest.approx(2.5)

    def test_time_of_day_identity_within_day(self):
        assert make_record(timestamp=13.0).time_of_day == pytest.approx(13.0)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError, match="timestamp"):
            make_record(timestamp=-1.0)

    def test_rejects_non_2d_location(self):
        with pytest.raises(ValueError, match="location"):
            make_record(location=(1.0, 2.0, 3.0))

    def test_rejects_empty_user(self):
        with pytest.raises(ValueError, match="user"):
            make_record(user="")

    def test_records_are_immutable(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.user = "bob"


class TestCorpus:
    def test_len_and_iteration(self):
        corpus = Corpus.from_records(make_record(i) for i in range(3))
        assert len(corpus) == 3
        assert [r.record_id for r in corpus] == [0, 1, 2]

    def test_getitem(self):
        corpus = Corpus.from_records([make_record(0), make_record(1)])
        assert corpus[1].record_id == 1

    def test_users_includes_mentions_in_first_seen_order(self):
        corpus = Corpus.from_records(
            [
                make_record(0, user="alice", mentions=("carol",)),
                make_record(1, user="bob"),
            ]
        )
        assert corpus.users() == ["alice", "carol", "bob"]

    def test_users_deduplicates(self):
        corpus = Corpus.from_records(
            [make_record(0, user="alice"), make_record(1, user="alice")]
        )
        assert corpus.users() == ["alice"]

    def test_word_counts(self):
        corpus = Corpus.from_records(
            [
                make_record(0, words=("a", "b", "a")),
                make_record(1, words=("b",)),
            ]
        )
        counts = corpus.word_counts()
        assert counts["a"] == 2
        assert counts["b"] == 2

    def test_mention_rate(self):
        corpus = Corpus.from_records(
            [
                make_record(0, mentions=("bob",)),
                make_record(1),
                make_record(2),
                make_record(3),
            ]
        )
        assert corpus.mention_rate() == pytest.approx(0.25)

    def test_mention_rate_empty_corpus(self):
        assert Corpus().mention_rate() == 0.0

    def test_subset_preserves_order(self):
        corpus = Corpus.from_records(make_record(i) for i in range(5))
        sub = corpus.subset([4, 0, 2])
        assert [r.record_id for r in sub] == [4, 0, 2]

    def test_locations_and_timestamps(self):
        corpus = Corpus.from_records(
            [make_record(0, location=(3.0, 4.0), timestamp=5.0)]
        )
        assert corpus.locations() == [(3.0, 4.0)]
        assert corpus.timestamps() == [5.0]
