"""Tests for random corpus splitting."""

import pytest

from repro.data import Corpus, Record, SplitSizes, train_valid_test_split


def make_corpus(n):
    return Corpus.from_records(
        Record(
            record_id=i,
            user=f"u{i}",
            timestamp=float(i),
            location=(0.0, 0.0),
            words=("w",),
        )
        for i in range(n)
    )


class TestSplitSizes:
    def test_defaults(self):
        sizes = SplitSizes()
        assert sizes.train + sizes.valid + sizes.test == pytest.approx(1.0)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="sum to at most 1"):
            SplitSizes(train=0.9, valid=0.2, test=0.2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SplitSizes(train=-0.1)


class TestTrainValidTestSplit:
    def test_partition_is_disjoint_and_complete(self):
        corpus = make_corpus(100)
        train, valid, test = train_valid_test_split(corpus, seed=0)
        all_ids = (
            [r.record_id for r in train]
            + [r.record_id for r in valid]
            + [r.record_id for r in test]
        )
        assert len(all_ids) == len(set(all_ids))
        assert len(all_ids) == 100

    def test_sizes_follow_fractions(self):
        corpus = make_corpus(200)
        sizes = SplitSizes(train=0.8, valid=0.1, test=0.1)
        train, valid, test = train_valid_test_split(corpus, sizes=sizes, seed=0)
        assert len(train) == 160
        assert len(valid) == 20
        assert len(test) == 20

    def test_seeded_reproducibility(self):
        corpus = make_corpus(50)
        a = train_valid_test_split(corpus, seed=4)
        b = train_valid_test_split(corpus, seed=4)
        for ca, cb in zip(a, b):
            assert [r.record_id for r in ca] == [r.record_id for r in cb]

    def test_different_seed_shuffles(self):
        corpus = make_corpus(50)
        a, _, _ = train_valid_test_split(corpus, seed=1)
        b, _, _ = train_valid_test_split(corpus, seed=2)
        assert [r.record_id for r in a] != [r.record_id for r in b]

    def test_small_corpus_gets_nonempty_eval_splits(self):
        corpus = make_corpus(20)
        _, valid, test = train_valid_test_split(
            corpus, sizes=SplitSizes(train=0.8, valid=0.1, test=0.1), seed=0
        )
        assert len(valid) == 2
        assert len(test) == 2
