"""Tests for tokenization and vocabulary management."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import Vocabulary, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Harbor SUNSET") == ["harbor", "sunset"]

    def test_strips_punctuation(self):
        assert tokenize("coffee, tea! and (cake)") == ["coffee", "tea", "cake"]

    def test_removes_stopwords(self):
        assert "the" not in tokenize("the harbor")

    def test_drops_mentions(self):
        assert tokenize("hello @alice nightlife") == ["hello", "nightlife"]

    def test_keeps_hashtags_without_hash(self):
        assert tokenize("#brunch time") == ["brunch", "time"]

    def test_min_length_filter(self):
        assert tokenize("a b cc", min_length=2) == ["cc"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert tokenize("route 66") == ["route", "66"]


class TestVocabulary:
    def test_fit_assigns_ids_by_frequency(self):
        vocab = Vocabulary().fit([["b", "a", "a"], ["a", "b", "c"]])
        assert vocab.id_of("a") == 0  # most frequent
        assert vocab.id_of("b") == 1
        assert vocab.id_of("c") == 2

    def test_frequency_ties_break_lexicographically(self):
        vocab = Vocabulary().fit([["zebra", "apple"]])
        assert vocab.id_of("apple") < vocab.id_of("zebra")

    def test_min_count_prunes(self):
        vocab = Vocabulary(min_count=2).fit([["a", "a", "b"]])
        assert "a" in vocab
        assert "b" not in vocab

    def test_max_size_keeps_most_frequent(self):
        vocab = Vocabulary(max_size=1).fit([["a", "a", "b"]])
        assert len(vocab) == 1
        assert "a" in vocab

    def test_encode_skips_pruned_words(self):
        vocab = Vocabulary(min_count=2).fit([["a", "a", "b"]])
        assert vocab.encode(["a", "b", "a"]) == [0, 0]

    def test_decode_roundtrip(self):
        vocab = Vocabulary().fit([["x", "y", "z"]])
        ids = vocab.encode(["x", "z"])
        assert vocab.decode(ids) == ["x", "z"]

    def test_count_of(self):
        vocab = Vocabulary().fit([["a", "a"]])
        assert vocab.count_of("a") == 2
        assert vocab.count_of("missing") == 0

    def test_double_fit_raises(self):
        vocab = Vocabulary().fit([["a"]])
        with pytest.raises(RuntimeError, match="already fitted"):
            vocab.fit([["b"]])

    def test_is_fitted_flag(self):
        vocab = Vocabulary()
        assert not vocab.is_fitted
        vocab.fit([["a"]])
        assert vocab.is_fitted

    def test_id_of_unknown_raises_keyerror(self):
        vocab = Vocabulary().fit([["a"]])
        with pytest.raises(KeyError):
            vocab.id_of("unknown")

    def test_rejects_bad_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError):
            Vocabulary(max_size=0)

    @given(
        docs=st.lists(
            st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), max_size=6),
            max_size=20,
        )
    )
    def test_property_ids_are_dense_and_bijective(self, docs):
        vocab = Vocabulary().fit(docs)
        ids = [vocab.id_of(w) for w in vocab.words]
        assert sorted(ids) == list(range(len(vocab)))
        for word in vocab.words:
            assert vocab.word_of(vocab.id_of(word)) == word

    @given(
        docs=st.lists(
            st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=5),
            min_size=1,
            max_size=15,
        ),
        min_count=st.integers(min_value=1, max_value=4),
    )
    def test_property_min_count_respected(self, docs, min_count):
        vocab = Vocabulary(min_count=min_count).fit(docs)
        for word in vocab.words:
            assert vocab.count_of(word) >= min_count
