"""Tests for the dataset presets (Table 1 substitutes)."""

import pytest

from repro.data import generate_dataset, preset_config
from repro.data.datasets import PRESETS


class TestPresetConfig:
    def test_known_presets(self):
        for name in ("utgeo2011", "tweet", "4sq"):
            assert preset_config(name) is PRESETS[name]

    def test_aliases(self):
        assert preset_config("tweet_like") is PRESETS["tweet"]
        assert preset_config("foursquare_like") is PRESETS["4sq"]
        assert preset_config("utgeo2011_like") is PRESETS["utgeo2011"]

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="unknown dataset preset"):
            preset_config("nope")

    def test_only_utgeo_has_mentions(self):
        """The paper: only UTGEO2011 carries user interaction data."""
        assert PRESETS["utgeo2011"].mention_rate == pytest.approx(0.168)
        assert PRESETS["tweet"].mention_rate == 0.0
        assert PRESETS["4sq"].mention_rate == 0.0

    def test_4sq_has_smallest_vocabulary_configuration(self):
        """4SQ's Table-1 row: tiny vocabulary, venue-dominated text."""
        assert (
            PRESETS["4sq"].keywords_per_topic
            < PRESETS["tweet"].keywords_per_topic
        )
        assert PRESETS["4sq"].n_common_words < PRESETS["tweet"].n_common_words
        assert (
            PRESETS["4sq"].venue_word_fraction
            > PRESETS["tweet"].venue_word_fraction
        )


class TestGenerateDataset:
    @pytest.fixture(scope="class")
    def bundle(self):
        return generate_dataset("utgeo2011", n_records=600, seed=2)

    def test_split_sizes_sum_to_total(self, bundle):
        assert (
            len(bundle.train) + len(bundle.valid) + len(bundle.test)
            <= len(bundle.corpus)
        )
        assert len(bundle.train) > len(bundle.test) > 0
        assert len(bundle.valid) > 0

    def test_splits_are_disjoint(self, bundle):
        ids = lambda c: {r.record_id for r in c}  # noqa: E731
        assert not (ids(bundle.train) & ids(bundle.test))
        assert not (ids(bundle.train) & ids(bundle.valid))
        assert not (ids(bundle.valid) & ids(bundle.test))

    def test_summary_fields(self, bundle):
        summary = bundle.summary()
        assert summary["name"] == "utgeo2011"
        assert summary["n_records"] == 600
        assert summary["vocab_size"] > 0
        assert 0.0 < summary["mention_rate"] < 0.3

    def test_reproducible(self):
        a = generate_dataset("4sq", n_records=100, seed=9)
        b = generate_dataset("4sq", n_records=100, seed=9)
        assert a.corpus.records == b.corpus.records
        assert [r.record_id for r in a.train] == [r.record_id for r in b.train]

    def test_tweet_preset_has_no_mentions(self):
        bundle = generate_dataset("tweet", n_records=200, seed=1)
        assert bundle.corpus.mention_rate() == 0.0

    def test_city_ground_truth_attached(self, bundle):
        assert bundle.city.topics
        assert bundle.city.venues
