"""Tests for vocabulary growth (streaming support)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Vocabulary


class TestAddWord:
    def test_requires_fitted(self):
        with pytest.raises(RuntimeError, match="fit"):
            Vocabulary().add_word("late")

    def test_appends_with_next_id(self):
        vocab = Vocabulary().fit([["a", "b"]])
        new_id = vocab.add_word("c")
        assert new_id == 2
        assert vocab.word_of(2) == "c"
        assert vocab.id_of("c") == 2

    def test_existing_word_returns_same_id(self):
        vocab = Vocabulary().fit([["a"]])
        assert vocab.add_word("a") == vocab.id_of("a")
        assert len(vocab) == 1

    def test_rejects_empty_string(self):
        vocab = Vocabulary().fit([["a"]])
        with pytest.raises(ValueError, match="non-empty"):
            vocab.add_word("")

    def test_respects_max_size(self):
        vocab = Vocabulary(max_size=2).fit([["a", "a", "b"]])
        with pytest.raises(ValueError, match="max_size"):
            vocab.add_word("c")

    def test_added_word_encodable(self):
        vocab = Vocabulary().fit([["a"]])
        vocab.add_word("fresh")
        assert vocab.encode(["fresh", "a"]) == [1, 0]

    def test_added_word_count_is_zero(self):
        """add_word registers the id; it does not fabricate corpus counts."""
        vocab = Vocabulary().fit([["a"]])
        vocab.add_word("fresh")
        assert vocab.count_of("fresh") == 0

    @settings(max_examples=25, deadline=None)
    @given(
        base=st.lists(
            st.sampled_from(["a", "b", "c"]), min_size=1, max_size=10
        ),
        additions=st.lists(
            st.sampled_from(["x", "y", "z", "a"]), max_size=8
        ),
    )
    def test_property_ids_stay_dense_after_growth(self, base, additions):
        vocab = Vocabulary().fit([base])
        for word in additions:
            vocab.add_word(word)
        ids = sorted(vocab.id_of(w) for w in vocab.words)
        assert ids == list(range(len(vocab)))
