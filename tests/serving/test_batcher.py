"""Tests for the request batcher: coalescing, fan-back, errors, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.batcher import BatcherClosed, RequestBatcher
from repro.utils.metrics import MetricsRegistry


def echo_dispatch(batch):
    """A dispatch function that tags each item with its batch size."""
    return [{"item": item, "batch_size": len(batch)} for item in batch]


class TestCoalescing:
    def test_single_request_round_trips(self):
        with RequestBatcher(echo_dispatch) as batcher:
            result = batcher.submit("a")
        assert result == {"item": "a", "batch_size": 1}

    def test_concurrent_requests_share_a_batch(self):
        """Requests parked within the window dispatch as one batch."""
        release = threading.Event()

        def gated_dispatch(batch):
            return echo_dispatch(batch)

        results = {}
        with RequestBatcher(
            gated_dispatch, max_batch=64, max_wait_ms=100.0
        ) as batcher:

            def client(name):
                release.wait()
                results[name] = batcher.submit(name)

            threads = [
                threading.Thread(target=client, args=(f"q{i}",))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            release.set()
            for t in threads:
                t.join()
        assert set(results) == {f"q{i}" for i in range(8)}
        for name, result in results.items():
            assert result["item"] == name
        # With an ample window at least one dispatch must have coalesced.
        assert max(r["batch_size"] for r in results.values()) > 1

    def test_max_batch_cuts_dispatches(self):
        """No dispatch ever exceeds max_batch even under a pile-up."""
        sizes = []
        lock = threading.Lock()

        def recording_dispatch(batch):
            with lock:
                sizes.append(len(batch))
            return list(batch)

        with RequestBatcher(
            recording_dispatch, max_batch=3, max_wait_ms=50.0
        ) as batcher:
            threads = [
                threading.Thread(target=batcher.submit, args=(i,))
                for i in range(10)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sum(sizes) == 10
        assert max(sizes) <= 3

    def test_order_preserved_within_batch(self):
        """Fan-back pairs result i with submitter i, not arbitrarily."""
        with RequestBatcher(
            lambda batch: [item * 10 for item in batch],
            max_wait_ms=50.0,
        ) as batcher:
            results = {}
            threads = [
                threading.Thread(
                    target=lambda i=i: results.update({i: batcher.submit(i)})
                )
                for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == {i: i * 10 for i in range(12)}

    def test_metrics_recorded(self):
        registry = MetricsRegistry()
        with RequestBatcher(echo_dispatch, metrics=registry) as batcher:
            batcher.submit("a")
        assert registry.counter("serve.batches").value >= 1


class TestErrors:
    def test_dispatch_exception_delivered_to_callers(self):
        def broken(batch):
            raise RuntimeError("engine exploded")

        with RequestBatcher(broken) as batcher:
            with pytest.raises(RuntimeError, match="engine exploded"):
                batcher.submit("a")

    def test_dispatch_survives_for_later_requests(self):
        """One poisoned batch must not kill the dispatcher thread."""
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return echo_dispatch(batch)

        with RequestBatcher(flaky) as batcher:
            with pytest.raises(RuntimeError, match="transient"):
                batcher.submit("a")
            assert batcher.submit("b")["item"] == "b"

    def test_per_item_exception_raised_only_in_that_caller(self):
        def selective(batch):
            return [
                ValueError("bad item") if item == "bad" else item
                for item in batch
            ]

        with RequestBatcher(selective, max_wait_ms=50.0) as batcher:
            outcomes = {}

            def client(item):
                try:
                    outcomes[item] = batcher.submit(item)
                except ValueError as exc:
                    outcomes[item] = f"raised:{exc}"

            threads = [
                threading.Thread(target=client, args=(item,))
                for item in ("ok1", "bad", "ok2")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert outcomes["ok1"] == "ok1"
        assert outcomes["ok2"] == "ok2"
        assert outcomes["bad"] == "raised:bad item"

    def test_length_mismatch_is_an_error(self):
        with RequestBatcher(lambda batch: []) as batcher:
            with pytest.raises(RuntimeError, match="0 results for 1 requests"):
                batcher.submit("a")

    def test_submit_timeout(self):
        def stuck(batch):
            time.sleep(10.0)
            return list(batch)

        batcher = RequestBatcher(stuck)
        try:
            with pytest.raises(TimeoutError):
                batcher.submit("a", timeout=0.05)
        finally:
            # The dispatcher thread is daemonic and still sleeping; don't
            # join it, just mark the batcher closed for new work.
            batcher._closed = True


class TestClose:
    def test_submit_after_close_raises(self):
        batcher = RequestBatcher(echo_dispatch)
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit("a")

    def test_close_drains_queued_work(self):
        """Requests parked before close() still get their results."""
        started = threading.Event()
        release = threading.Event()

        def slow_dispatch(batch):
            started.set()
            release.wait(timeout=5.0)
            return echo_dispatch(batch)

        batcher = RequestBatcher(slow_dispatch, max_wait_ms=1.0)
        results = {}
        t = threading.Thread(
            target=lambda: results.update({"a": batcher.submit("a")})
        )
        t.start()
        assert started.wait(timeout=5.0)
        closer = threading.Thread(target=batcher.close)
        closer.start()
        release.set()
        t.join(timeout=5.0)
        closer.join(timeout=5.0)
        assert results["a"]["item"] == "a"

    def test_close_is_idempotent(self):
        batcher = RequestBatcher(echo_dispatch)
        batcher.close()
        batcher.close()
