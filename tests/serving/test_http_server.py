"""Tests for QueryServer: the ``repro serve`` HTTP daemon.

Covers the serving parity contract end to end (coalesced HTTP responses
identical to direct QueryEngine execution, including degenerate queries),
concurrent clients, structured 400s for malformed bodies, the telemetry
surface on the same socket, and drain-on-shutdown.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import QueryServer
from repro.serving.service import QueryService
from repro.utils.metrics import MetricsRegistry


def _post(url: str, body, *, raw: bytes | None = None, timeout=30):
    """POST ``body`` as JSON; returns (status, parsed_payload)."""
    data = raw if raw is not None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(url: str):
    """GET ``url``; returns (status, body_text)."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


PREDICT_BODIES = [
    {
        "target": "time",
        "candidates": [2.0, 9.5, 13.0, 21.5],
        "words": ["common_000"],
        "location": [1.0, 2.0],
    },
    {
        "target": "location",
        "candidates": [[0.5, 0.5], [10.0, 12.0], [3.3, 7.7]],
        "time": 20.0,
        "words": ["common_001"],
    },
    {
        "target": "text",
        "candidates": [["common_000", "common_001"], ["common_002"]],
        "time": 9.0,
        "location": [5.0, 5.0],
    },
    # Degenerate: fully-OOV query bag, unseen far-away location.
    {
        "target": "time",
        "candidates": [1.0, 12.0, 23.0],
        "words": ["never_in_any_vocab_xyz"],
        "location": [-400.0, 900.0],
    },
]

NEIGHBOR_BODIES = [
    {"modality": "word", "time": 21.0, "k": 5},
    {"modality": "time", "words": ["common_000"], "k": 3},
    {"modality": "location", "time": 3.0, "k": 4},
    {"modality": "word", "words": ["never_in_any_vocab_xyz"], "k": 2},
]


@pytest.fixture(scope="module")
def server(tiny_actor):
    """A running coalescing QueryServer on an ephemeral port."""
    with QueryServer(
        tiny_actor, port=0, metrics=MetricsRegistry()
    ) as server:
        yield server


class TestLifecycle:
    def test_ephemeral_port_and_url(self, server):
        assert server.running
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_unknown_endpoints_404(self, server):
        status, _ = _get(f"{server.url}/nope")
        assert status == 404
        status, payload = _post(f"{server.url}/v1/nope", {"x": 1})
        assert status == 404
        assert "error" in payload


class TestServingParity:
    def test_http_responses_identical_to_direct_engine(
        self, server, tiny_actor
    ):
        """Coalesced HTTP responses == direct QueryService execution.

        Python prints floats shortest-round-trip, so equality on the
        parsed JSON payloads is bit-exactness of every score.
        """
        direct = QueryService(tiny_actor, metrics=MetricsRegistry())
        for body in PREDICT_BODIES:
            status, payload = _post(f"{server.url}/v1/predict", body)
            assert status == 200
            request = direct.validate_predict(body)
            assert payload == direct.dispatch([request])[0]
        for body in NEIGHBOR_BODIES:
            status, payload = _post(f"{server.url}/v1/neighbors", body)
            assert status == 200
            request = direct.validate_neighbors(body)
            assert payload == direct.dispatch([request])[0]

    def test_concurrent_clients_all_get_their_own_answer(
        self, server, tiny_actor
    ):
        """A coalesced burst returns per-client results with exact parity."""
        direct = QueryService(tiny_actor, metrics=MetricsRegistry())
        bodies = [
            {
                "target": "time",
                "candidates": [float(i), float(i + 6) % 24.0, 12.0],
                "words": [f"common_{i % 5:03d}"],
            }
            for i in range(16)
        ]
        expected = [
            direct.dispatch([direct.validate_predict(b)])[0] for b in bodies
        ]
        results: list = [None] * len(bodies)
        barrier = threading.Barrier(len(bodies))

        def client(i):
            barrier.wait()
            results[i] = _post(f"{server.url}/v1/predict", bodies[i])

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(bodies))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for (status, payload), want in zip(results, expected):
            assert status == 200
            assert payload == want

    def test_coalescing_actually_happened(self, server):
        """The burst above must have produced at least one >1 batch."""
        histogram = server.metrics.histogram("serve.batch_size")
        assert histogram.count > 0
        assert histogram.max > 1


class TestBadRequests:
    def test_malformed_json_is_a_structured_400(self, server):
        before = server.metrics.counter("serve.bad_requests").value
        status, payload = _post(
            f"{server.url}/v1/predict", None, raw=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in payload["error"]
        assert server.metrics.counter("serve.bad_requests").value == before + 1

    def test_validation_failure_is_a_structured_400(self, server):
        status, payload = _post(
            f"{server.url}/v1/predict",
            {"target": "venue", "candidates": [1.0], "time": 2.0},
        )
        assert status == 400
        assert payload["field"] == "target"
        assert "venue" in payload["error"]

    def test_wrong_shape_candidates_400_not_500(self, server):
        before = server.metrics.counter("serve.errors").value
        status, payload = _post(
            f"{server.url}/v1/neighbors", {"modality": "word", "words": [3]}
        )
        assert status == 400
        assert payload["field"] == "words"
        assert server.metrics.counter("serve.errors").value == before

    def test_non_object_body_400(self, server):
        status, payload = _post(f"{server.url}/v1/predict", [1, 2, 3])
        assert status == 400
        assert "JSON object" in payload["error"]


class TestTelemetrySurface:
    def test_metrics_endpoint_on_same_socket(self, server):
        # Serve one query first so serve.* metrics exist.
        _post(f"{server.url}/v1/neighbors", NEIGHBOR_BODIES[0])
        status, text = _get(f"{server.url}/metrics")
        assert status == 200
        assert "repro_serve_requests_total" in text

    def test_healthz_reports_serving_state(self, server):
        status, text = _get(f"{server.url}/healthz")
        assert status == 200
        payload = json.loads(text)
        assert payload["status"] == "ok"
        assert payload["serving"]["accepting"] is True
        assert payload["serving"]["coalesce"] is True

    def test_varz_includes_batcher_depth(self, server):
        status, text = _get(f"{server.url}/varz")
        assert status == 200
        assert "batcher_depth" in json.loads(text)["serving"]


class TestNonCoalescedPath:
    def test_coalesce_false_serves_identically(self, tiny_actor):
        direct = QueryService(tiny_actor, metrics=MetricsRegistry())
        with QueryServer(tiny_actor, port=0, coalesce=False) as server:
            for body in PREDICT_BODIES:
                status, payload = _post(f"{server.url}/v1/predict", body)
                assert status == 200
                request = direct.validate_predict(body)
                assert payload == direct.dispatch([request])[0]
            assert server.batcher is None


class TestDrain:
    def test_requests_after_stop_get_503(self, tiny_actor):
        server = QueryServer(tiny_actor, port=0).start()
        url = server.url
        server._accepting = False
        status, payload = _post(
            f"{url}/v1/neighbors", {"modality": "word", "time": 2.0}
        )
        assert status == 503
        assert "draining" in payload["error"]
        server._accepting = True
        server.stop()
        assert not server.running

    def test_inflight_requests_complete_during_drain(self, tiny_actor):
        """stop() waits for parked requests instead of dropping them."""
        server = QueryServer(
            tiny_actor, port=0, batch_window_ms=150.0, max_batch=64
        ).start()
        url = server.url
        results = {}

        def client():
            results["response"] = _post(
                f"{url}/v1/neighbors", {"modality": "word", "time": 21.0}
            )

        t = threading.Thread(target=client)
        t.start()
        # Give the request time to arrive and park in the batch window,
        # then begin the drain while it is still in flight.
        deadline = threading.Event()
        deadline.wait(0.05)
        server.stop()
        t.join(timeout=10.0)
        status, payload = results["response"]
        assert status == 200
        assert len(payload["neighbors"]) == 10

    def test_stop_is_idempotent(self, tiny_actor):
        server = QueryServer(tiny_actor, port=0).start()
        server.stop()
        server.stop()
        assert not server.running
