"""Tests for QueryService: validation → typed requests, batched dispatch.

The dispatch parity assertions are *bit-exact* (``==`` on the float
lists, not ``allclose``): the request coalescer is only safe because a
request's response never depends on its batch co-travellers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.service import (
    BadRequest,
    NeighborsRequest,
    PredictRequest,
    QueryService,
)
from repro.utils.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def service(tiny_actor):
    return QueryService(tiny_actor, metrics=MetricsRegistry())


@pytest.fixture(scope="module")
def sample_requests(tiny_actor, dataset):
    """A mixed bag of valid typed requests drawn from real test records."""
    records = list(dataset.test)[:24]
    requests = []
    for i, record in enumerate(records):
        noise = records[(i + 1) % len(records)]
        target = ("text", "location", "time")[i % 3]
        if i % 4 == 3:
            requests.append(
                NeighborsRequest(
                    modality=("word", "time", "location")[i % 3],
                    time=record.timestamp,
                    location=record.location,
                    words=record.words,
                    k=5,
                )
            )
            continue
        if target == "text":
            candidates = (record.words, noise.words)
        elif target == "location":
            candidates = (record.location, noise.location)
        else:
            candidates = (record.timestamp, noise.timestamp)
        requests.append(
            PredictRequest(
                target=target,
                candidates=candidates,
                time=None if target == "time" else record.timestamp,
                location=None if target == "location" else record.location,
                words=None if target == "text" else record.words,
            )
        )
    return requests


class TestValidatePredict:
    def test_happy_path(self, service):
        request = service.validate_predict(
            {
                "target": "time",
                "candidates": [1.0, 13.5],
                "words": ["coffee"],
                "location": [1.0, 2.0],
                "k": 1,
            }
        )
        assert request == PredictRequest(
            target="time",
            candidates=(1.0, 13.5),
            time=None,
            location=(1.0, 2.0),
            words=("coffee",),
            k=1,
        )

    @pytest.mark.parametrize(
        "body, field",
        [
            ({"candidates": [1.0], "time": 2.0}, "target"),
            ({"target": "venue", "candidates": [1.0]}, "target"),
            ({"target": "time", "time": 2.0}, "candidates"),
            ({"target": "time", "candidates": [], "time": 2.0}, "candidates"),
            (
                {"target": "time", "candidates": ["x"], "words": ["a"]},
                "candidates",
            ),
            (
                {"target": "location", "candidates": [[1.0]], "time": 2.0},
                "candidates",
            ),
            (
                {"target": "text", "candidates": [[1]], "time": 2.0},
                "candidates",
            ),
            (
                {"target": "time", "candidates": [1.0], "location": [1.0]},
                "location",
            ),
            (
                {"target": "time", "candidates": [1.0], "words": "coffee"},
                "words",
            ),
            (
                {"target": "time", "candidates": [1.0], "words": [1]},
                "words",
            ),
            (
                {
                    "target": "time",
                    "candidates": [1.0],
                    "time": 2.0,
                    "k": 0,
                },
                "k",
            ),
            (
                {
                    "target": "time",
                    "candidates": [1.0],
                    "time": 2.0,
                    "k": True,
                },
                "k",
            ),
        ],
    )
    def test_field_errors_are_attributed(self, service, body, field):
        with pytest.raises(BadRequest) as excinfo:
            service.validate_predict(body)
        assert excinfo.value.field == field
        assert excinfo.value.to_payload()["field"] == field

    def test_non_dict_body_rejected(self, service):
        with pytest.raises(BadRequest, match="JSON object"):
            service.validate_predict([1, 2, 3])

    def test_no_query_modality_rejected(self, service):
        with pytest.raises(BadRequest, match="at least one query modality"):
            service.validate_predict(
                {"target": "time", "candidates": [1.0]}
            )

    def test_candidate_cap(self, service):
        with pytest.raises(BadRequest, match="at most"):
            service.validate_predict(
                {
                    "target": "time",
                    "candidates": [0.0] * 5000,
                    "words": ["a"],
                }
            )

    def test_bool_is_not_a_number(self, service):
        with pytest.raises(BadRequest):
            service.validate_predict(
                {"target": "time", "candidates": [True], "words": ["a"]}
            )


class TestValidateNeighbors:
    def test_happy_path(self, service):
        request = service.validate_neighbors(
            {"modality": "word", "time": 21.5}
        )
        assert request == NeighborsRequest(
            modality="word", time=21.5, location=None, words=None, k=10
        )

    def test_unknown_modality_rejected(self, service):
        with pytest.raises(BadRequest) as excinfo:
            service.validate_neighbors({"modality": "text", "time": 2.0})
        assert excinfo.value.field == "modality"

    def test_no_query_modality_rejected(self, service):
        with pytest.raises(BadRequest, match="at least one query modality"):
            service.validate_neighbors({"modality": "word"})

    def test_k_bounds(self, service):
        with pytest.raises(BadRequest):
            service.validate_neighbors(
                {"modality": "word", "time": 2.0, "k": 100_000}
            )


class TestDispatchParity:
    def test_batched_dispatch_is_bit_identical_to_singles(
        self, service, sample_requests
    ):
        """dispatch(batch)[i] == dispatch([batch[i]])[0], exactly."""
        batched = service.dispatch(sample_requests)
        singles = [service.dispatch([r])[0] for r in sample_requests]
        assert batched == singles

    def test_parity_with_oov_words_and_unseen_values(self, service):
        """Degenerate queries keep parity: OOV bags, unseen hotspots."""
        requests = [
            PredictRequest(
                target="time",
                candidates=(3.0, 15.0, 23.9),
                words=("never_in_any_vocab",),
            ),
            PredictRequest(
                target="text",
                candidates=(("also_not_in_vocab",), ("common_000",)),
                time=2.5,
                location=(-50.0, 90.0),
            ),
            NeighborsRequest(modality="word", location=(999.0, -999.0)),
            NeighborsRequest(
                modality="location", words=("never_in_any_vocab",)
            ),
        ]
        batched = service.dispatch(requests)
        singles = [service.dispatch([r])[0] for r in requests]
        assert batched == singles

    def test_order_preserved_across_target_groups(self, service):
        """Interleaved targets come back in submission order."""
        requests = [
            PredictRequest(target="time", candidates=(1.0,), words=("a",)),
            PredictRequest(
                target="location", candidates=((0.0, 0.0),), time=5.0
            ),
            NeighborsRequest(modality="word", time=5.0),
            PredictRequest(target="time", candidates=(2.0, 3.0), words=("b",)),
        ]
        responses = service.dispatch(requests)
        assert responses[0]["target"] == "time"
        assert responses[0]["n_candidates"] == 1
        assert responses[1]["target"] == "location"
        assert responses[2]["modality"] == "word"
        assert responses[3]["n_candidates"] == 2

    def test_unsupported_request_type_rejected(self, service):
        with pytest.raises(TypeError, match="unsupported request"):
            service.dispatch(["not a request"])


class TestResponseShapes:
    def test_predict_response(self, service):
        request = PredictRequest(
            target="time", candidates=(1.0, 13.0, 22.0), words=("common_000",)
        )
        response = service.dispatch([request])[0]
        assert response["n_candidates"] == 3
        assert len(response["scores"]) == 3
        assert sorted(response["ranking"]) == [0, 1, 2]
        # Ranking is descending by score with stable ties.
        scores = np.asarray(response["scores"])
        expected = np.argsort(-scores, kind="stable").tolist()
        assert response["ranking"] == expected

    def test_predict_k_truncates_ranking(self, service):
        request = PredictRequest(
            target="time", candidates=(1.0, 13.0, 22.0), words=("a",), k=2
        )
        response = service.dispatch([request])[0]
        assert len(response["ranking"]) == 2
        assert len(response["scores"]) == 3

    def test_neighbors_word_response(self, service):
        request = NeighborsRequest(modality="word", time=21.0, k=4)
        response = service.dispatch([request])[0]
        assert response["modality"] == "word"
        assert len(response["neighbors"]) == 4
        for entry in response["neighbors"]:
            assert isinstance(entry["word"], str)
            assert isinstance(entry["score"], float)

    def test_neighbors_time_response_resolves_hours(self, service):
        request = NeighborsRequest(modality="time", words=("common_000",), k=3)
        response = service.dispatch([request])[0]
        for entry in response["neighbors"]:
            assert 0.0 <= entry["hour"] < 24.0
            assert isinstance(entry["hotspot"], int)

    def test_neighbors_location_response_resolves_centers(self, service):
        request = NeighborsRequest(modality="location", time=12.0, k=3)
        response = service.dispatch([request])[0]
        for entry in response["neighbors"]:
            assert len(entry["center"]) == 2

    def test_requests_counter_increments(self, tiny_actor):
        registry = MetricsRegistry()
        service = QueryService(tiny_actor, metrics=registry)
        service.dispatch(
            [
                PredictRequest(
                    target="time", candidates=(1.0,), words=("a",)
                ),
                NeighborsRequest(modality="word", time=2.0),
            ]
        )
        assert registry.counter("serve.requests").value == 2
