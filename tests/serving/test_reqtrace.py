"""Tests for request-scoped tracing: ids, span links, ring, attribution.

The live-server tests pin the tentpole contracts: every response echoes
the id its client sent (even through coalescing), every traced request
links to exactly one batch entry, and per-stage durations never exceed
the request's wall time.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import QueryServer
from repro.serving.reqtrace import (
    RequestContext,
    TraceRing,
    load_request_trace,
    render_tail_summary,
    request_id_from_header,
    summarize_tail,
)

PREDICT_BODY = {"target": "time", "candidates": [0.25, 0.75], "time": 2.0}
NEIGHBORS_BODY = {"modality": "word", "time": 2.0, "k": 3}


def _post(url, body, *, headers=None, timeout=30):
    """POST JSON; returns (status, payload, response_headers)."""
    merged = {"Content-Type": "application/json"}
    if headers:
        merged.update(headers)
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers=merged,
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), err.headers


def _get(url, *, timeout=30):
    """GET JSON; returns (status, payload)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestRequestIdFromHeader:
    def test_honors_clean_inbound_id(self):
        assert request_id_from_header("client-abc-123") == "client-abc-123"

    def test_generates_when_missing(self):
        generated = request_id_from_header(None)
        assert len(generated) == 16
        assert generated != request_id_from_header("")

    def test_rejects_whitespace_and_control_characters(self):
        for hostile in ("two words", "tab\tchar", "new\nline", "\x00evil"):
            replaced = request_id_from_header(hostile)
            assert replaced != hostile
            assert len(replaced) == 16

    def test_truncates_oversized_ids(self):
        assert len(request_id_from_header("x" * 500)) == 128


class TestRequestContext:
    def test_stages_accumulate(self):
        ctx = RequestContext("r1", "/v1/predict")
        ctx.stage("fanback", 0.001)
        ctx.stage("fanback", 0.002)
        assert ctx.stages["fanback"] == pytest.approx(0.003)

    def test_entry_shape(self):
        ctx = RequestContext("r1", "/v1/predict")
        ctx.begin_batch("b7", 4, queue_wait=0.002)
        ctx.dispatch_seconds = 0.01
        ctx.note("ann.probed_fraction", 0.125)
        ctx.lifecycle = {"epoch": 3, "state": "idle"}
        ctx.finish(200)
        entry = ctx.to_entry()
        assert entry["kind"] == "request"
        assert entry["id"] == "r1"
        assert entry["batch"] == {"id": "b7", "size": 4, "dispatch_ms": 10.0}
        assert entry["stages_ms"]["queue_wait"] == pytest.approx(2.0)
        assert entry["values"]["ann.probed_fraction"] == 0.125
        assert entry["lifecycle"]["epoch"] == 3
        assert "error" not in entry

    def test_error_entry(self):
        ctx = RequestContext("r2", "/v1/neighbors")
        ctx.finish(500, error="RuntimeError: boom")
        entry = ctx.to_entry()
        assert entry["status"] == 500
        assert entry["error"] == "RuntimeError: boom"
        assert entry["batch"] is None


class TestTraceRing:
    def _entry(self, request_id, *, status=200, duration=1.0, error=None):
        entry = {
            "kind": "request",
            "id": request_id,
            "status": status,
            "duration_ms": duration,
            "stages_ms": {},
        }
        if error:
            entry["error"] = error
        return entry

    def test_capacity_evicts_oldest(self):
        ring = TraceRing(4)
        for i in range(10):
            ring.record(self._entry(f"r{i}"))
        ids = [e["id"] for e in ring.entries()]
        assert ids == ["r6", "r7", "r8", "r9"]
        assert ring.recorded == 10

    def test_errors_survive_healthy_eviction(self):
        ring = TraceRing(4, error_capacity=8)
        ring.record(self._entry("bad", status=500, error="boom"))
        for i in range(6):
            ring.record(self._entry(f"ok{i}"))
        snapshot = ring.snapshot()
        assert [e["id"] for e in snapshot["errors"]] == ["bad"]
        assert ring.recorded_errors == 1

    def test_snapshot_ranks_slowest(self):
        ring = TraceRing(8)
        for i, duration in enumerate([5.0, 50.0, 1.0, 20.0]):
            ring.record(self._entry(f"r{i}", duration=duration))
        slowest = ring.snapshot(slowest=2)["slowest"]
        assert [e["id"] for e in slowest] == ["r1", "r3"]

    def test_export_roundtrip(self, tmp_path):
        ring = TraceRing(8)
        ring.record(self._entry("r1"))
        ring.record_batch(
            {"kind": "batch", "id": "b1", "size": 1, "links": ["r1"]}
        )
        path = ring.export_jsonl(tmp_path / "requests.jsonl")
        requests, batches = load_request_trace(path)
        assert [e["id"] for e in requests] == ["r1"]
        assert [e["id"] for e in batches] == ["b1"]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceRing(0)


class TestTailAttribution:
    def _requests(self):
        fast = [
            {
                "id": f"fast{i}",
                "endpoint": "/v1/predict",
                "status": 200,
                "duration_ms": 2.0,
                "stages_ms": {"score": 1.0, "queue_wait": 0.5},
            }
            for i in range(99)
        ]
        slow = [
            {
                "id": "slow0",
                "endpoint": "/v1/predict",
                "status": 200,
                "duration_ms": 100.0,
                "stages_ms": {"score": 10.0, "queue_wait": 80.0},
                "batch": {"id": "b9", "size": 7, "dispatch_ms": 12.0},
                "lifecycle": {"epoch": 2, "swap_in_progress": False},
            }
        ]
        return fast + slow

    def test_tail_stage_ranking(self):
        summary = summarize_tail(self._requests(), q=99.0, slowest=3)
        assert summary["n"] == 100
        assert summary["tail"]["n"] == 1
        assert summary["stages"][0]["stage"] == "queue_wait"
        assert summary["stages"][0]["share"] == pytest.approx(0.8)
        assert summary["slowest"][0]["id"] == "slow0"

    def test_render_mentions_batch_and_epoch(self):
        text = render_tail_summary(summarize_tail(self._requests()))
        assert "queue_wait" in text
        assert "batch=b9" in text
        assert "epoch=2" in text

    def test_empty_input(self):
        summary = summarize_tail([])
        assert summary["n"] == 0
        assert summary["stages"] == []
        assert "0 requests" in render_tail_summary(summary)


class TestTracePropagation:
    """Tentpole contracts, exercised against a live coalescing server."""

    def test_concurrent_clients_get_their_own_ids_back(self, tiny_actor):
        n_clients = 16
        with QueryServer(
            tiny_actor, port=0, max_batch=8, batch_window_ms=20.0
        ) as server:
            barrier = threading.Barrier(n_clients)
            results: dict[int, tuple] = {}

            def client(i):
                """One client posting with its own X-Request-Id."""
                barrier.wait()
                results[i] = _post(
                    f"{server.url}/v1/predict",
                    PREDICT_BODY,
                    headers={"X-Request-Id": f"client-{i}"},
                )

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            ring = server.trace_ring
            entries = {e["id"]: e for e in ring.entries()}
            batches = {b["id"]: b for b in ring.batch_entries()}

        assert len(results) == n_clients
        for i, (status, _payload, headers) in results.items():
            # Echo contract: the response carries the id the client sent.
            assert status == 200
            assert headers.get("X-Request-Id") == f"client-{i}"
            assert float(headers.get("X-Queue-Wait-Ms")) >= 0.0

        coalesced = False
        for i in range(n_clients):
            entry = entries[f"client-{i}"]
            # Span-link contract: exactly one batch, and that batch
            # lists this request among its links.
            batch = entry["batch"]
            assert batch is not None
            assert batch["id"] in batches
            assert f"client-{i}" in batches[batch["id"]]["links"]
            assert batch["size"] == batches[batch["id"]]["size"]
            coalesced = coalesced or batch["size"] > 1
            # Accounting invariant: stages partition (a subset of) the
            # request's wall time; rounding is to 3 decimals per stage.
            stage_sum = sum(entry["stages_ms"].values())
            assert stage_sum <= entry["duration_ms"] + 0.1
            assert "queue_wait" in entry["stages_ms"]
            assert entry["lifecycle"]["epoch"] == 0
            assert entry["lifecycle"]["swap_in_progress"] is False
        # With a 20ms window and a barrier start, at least one batch
        # must have coalesced multiple clients.
        assert coalesced

    def test_batch_entries_carry_engine_stages(self, tiny_actor):
        with QueryServer(tiny_actor, port=0) as server:
            status, _payload, _headers = _post(
                f"{server.url}/v1/predict", PREDICT_BODY
            )
            assert status == 200
            batches = server.trace_ring.batch_entries()
        assert batches
        stages = batches[-1]["stages_ms"]
        assert "score" in stages
        assert batches[-1]["dispatch_ms"] >= stages["score"]

    def test_errors_carry_request_id_in_payload(self, tiny_actor):
        with QueryServer(tiny_actor, port=0) as server:
            status, payload, headers = _post(
                f"{server.url}/v1/predict",
                {"target": "venue", "candidates": [1.0]},
                headers={"X-Request-Id": "bad-req-1"},
            )
            snapshot = server.trace_ring.snapshot()
        assert status == 400
        assert payload["request_id"] == "bad-req-1"
        assert headers.get("X-Request-Id") == "bad-req-1"
        recorded = {e["id"]: e for e in snapshot["recent"]}
        assert recorded["bad-req-1"]["status"] == 400
        # Validation rejected it before dispatch: no batch link.
        assert recorded["bad-req-1"]["batch"] is None

    def test_hostile_header_is_replaced(self, tiny_actor):
        with QueryServer(tiny_actor, port=0) as server:
            status, _payload, headers = _post(
                f"{server.url}/v1/predict",
                PREDICT_BODY,
                headers={"X-Request-Id": "two words here"},
            )
        assert status == 200
        echoed = headers.get("X-Request-Id")
        assert echoed != "two words here"
        assert len(echoed) == 16

    def test_non_coalesced_path_traces_direct_batches(self, tiny_actor):
        with QueryServer(tiny_actor, port=0, coalesce=False) as server:
            status, _payload, headers = _post(
                f"{server.url}/v1/neighbors",
                NEIGHBORS_BODY,
                headers={"X-Request-Id": "direct-1"},
            )
            assert status == 200
            entry = {e["id"]: e for e in server.trace_ring.entries()}[
                "direct-1"
            ]
        assert headers.get("X-Request-Id") == "direct-1"
        assert entry["batch"]["id"].startswith("d")
        assert entry["batch"]["size"] == 1

    def test_debug_requests_endpoint(self, tiny_actor):
        with QueryServer(tiny_actor, port=0) as server:
            for i in range(3):
                _post(
                    f"{server.url}/v1/predict",
                    PREDICT_BODY,
                    headers={"X-Request-Id": f"scrape-{i}"},
                )
            status, snapshot = _get(f"{server.url}/debug/requests")
        assert status == 200
        assert snapshot["recorded"] == 3
        assert {e["id"] for e in snapshot["recent"]} == {
            "scrape-0",
            "scrape-1",
            "scrape-2",
        }
        assert snapshot["slowest"][0]["duration_ms"] >= snapshot["slowest"][
            -1
        ]["duration_ms"]
        assert snapshot["batches"]

    def test_tracing_disabled_still_serves_and_counts_slo(self, tiny_actor):
        with QueryServer(tiny_actor, port=0, trace_requests=False) as server:
            status, _payload, headers = _post(
                f"{server.url}/v1/predict", PREDICT_BODY
            )
            assert status == 200
            # No ring, no /debug/requests...
            assert server.trace_ring is None
            with pytest.raises(urllib.error.HTTPError):
                _get(f"{server.url}/debug/requests")
            # ...but SLO accounting still sees the traffic.
            assert server.metrics.counter("serve.responses").value == 1

    def test_coalescing_parity_is_preserved(self, tiny_actor):
        """Traced and untraced servers return identical 200 payloads."""
        with QueryServer(tiny_actor, port=0) as traced:
            _status, traced_payload, _h = _post(
                f"{traced.url}/v1/predict", PREDICT_BODY
            )
        with QueryServer(tiny_actor, port=0, trace_requests=False) as plain:
            _status, plain_payload, _h = _post(
                f"{plain.url}/v1/predict", PREDICT_BODY
            )
        assert traced_payload == plain_payload
