"""Tests for the load generator: pacing, concurrency, reporting."""

from __future__ import annotations

import threading

import pytest

from repro.data.synthetic import QueryEvent
from repro.serving import LoadGenerator, QueryServer, http_transport
from repro.serving.loadgen import percentile


def _events(n, *, endpoint="/v1/predict", spread=0.2):
    return [
        QueryEvent(
            offset=i * spread / max(n - 1, 1),
            user=f"user_{i % 3}",
            endpoint=endpoint,
            body={"i": i},
        )
        for i in range(n)
    ]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 1) == 1.0


class TestReplay:
    def test_every_event_fires_exactly_once(self):
        seen = []
        lock = threading.Lock()

        def transport(endpoint, body):
            with lock:
                seen.append(body["i"])
            return 200, {"ok": True}

        report = LoadGenerator(
            _events(25), transport, concurrency=4
        ).run()
        assert sorted(seen) == list(range(25))
        assert report["n_requests"] == 25
        assert report["statuses"] == {"200": 25}
        assert report["server_errors"] == 0

    def test_status_classes_tallied(self):
        def transport(endpoint, body):
            i = body["i"]
            if i % 3 == 0:
                return 500, {"error": "boom"}
            if i % 3 == 1:
                return 400, {"error": "bad"}
            return 0, {"error": "refused"}

        report = LoadGenerator(_events(9), transport, concurrency=3).run()
        assert report["server_errors"] == 3
        assert report["client_errors"] == 3
        assert report["transport_errors"] == 3

    def test_per_endpoint_breakdown(self):
        events = _events(6) + _events(4, endpoint="/v1/neighbors")

        def transport(endpoint, body):
            return 200, {}

        report = LoadGenerator(events, transport, concurrency=2).run()
        assert report["endpoints"]["/v1/predict"]["n"] == 6
        assert report["endpoints"]["/v1/neighbors"]["n"] == 4
        assert report["qps"] > 0

    def test_speedup_compresses_schedule(self):
        def transport(endpoint, body):
            return 200, {}

        events = [
            QueryEvent(offset=o, user="u", endpoint="/v1/predict", body={})
            for o in (0.0, 2.0)
        ]
        report = LoadGenerator(
            events, transport, concurrency=2, speedup=40.0
        ).run()
        # 2-second stream replayed 40x faster: well under a second.
        assert report["wall_seconds"] < 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="concurrency"):
            LoadGenerator([], lambda e, b: (200, {}), concurrency=0)
        with pytest.raises(ValueError, match="speedup"):
            LoadGenerator([], lambda e, b: (200, {}), speedup=0.0)


class TestHTTPTransport:
    def test_against_live_server(self, tiny_actor, dataset):
        """End to end: city traffic through HTTP into a live QueryServer."""
        events = dataset.city.generate_query_stream(
            30, duration=0.2, n_noise=3
        )
        with QueryServer(tiny_actor, port=0) as server:
            report = LoadGenerator(
                events,
                http_transport(server.url),
                concurrency=6,
            ).run()
        assert report["n_requests"] == 30
        assert report["server_errors"] == 0
        assert report["transport_errors"] == 0
        # City traffic is drawn from the same generative process the
        # model trained on, so requests validate cleanly.
        assert report["client_errors"] == 0

    def test_transport_reports_connection_failure_as_status_zero(self):
        transport = http_transport("http://127.0.0.1:9", timeout=2.0)
        status, payload = transport("/v1/predict", {})
        assert status == 0
        assert "error" in payload
