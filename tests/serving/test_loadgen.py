"""Tests for the load generator: pacing, concurrency, reporting."""

from __future__ import annotations

import threading

import pytest

from repro.data.synthetic import QueryEvent
from repro.serving import LoadGenerator, QueryServer, http_transport
from repro.serving.loadgen import percentile


def _events(n, *, endpoint="/v1/predict", spread=0.2):
    return [
        QueryEvent(
            offset=i * spread / max(n - 1, 1),
            user=f"user_{i % 3}",
            endpoint=endpoint,
            body={"i": i},
        )
        for i in range(n)
    ]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 1) == 1.0


class TestReplay:
    def test_every_event_fires_exactly_once(self):
        seen = []
        lock = threading.Lock()

        def transport(endpoint, body):
            with lock:
                seen.append(body["i"])
            return 200, {"ok": True}

        report = LoadGenerator(
            _events(25), transport, concurrency=4
        ).run()
        assert sorted(seen) == list(range(25))
        assert report["n_requests"] == 25
        assert report["statuses"] == {"200": 25}
        assert report["server_errors"] == 0

    def test_status_classes_tallied(self):
        def transport(endpoint, body):
            i = body["i"]
            if i % 3 == 0:
                return 500, {"error": "boom"}
            if i % 3 == 1:
                return 400, {"error": "bad"}
            return 0, {"error": "refused"}

        report = LoadGenerator(_events(9), transport, concurrency=3).run()
        assert report["server_errors"] == 3
        assert report["client_errors"] == 3
        assert report["transport_errors"] == 3

    def test_per_endpoint_breakdown(self):
        events = _events(6) + _events(4, endpoint="/v1/neighbors")

        def transport(endpoint, body):
            return 200, {}

        report = LoadGenerator(events, transport, concurrency=2).run()
        assert report["endpoints"]["/v1/predict"]["n"] == 6
        assert report["endpoints"]["/v1/neighbors"]["n"] == 4
        assert report["qps"] > 0

    def test_speedup_compresses_schedule(self):
        def transport(endpoint, body):
            return 200, {}

        events = [
            QueryEvent(offset=o, user="u", endpoint="/v1/predict", body={})
            for o in (0.0, 2.0)
        ]
        report = LoadGenerator(
            events, transport, concurrency=2, speedup=40.0
        ).run()
        # 2-second stream replayed 40x faster: well under a second.
        assert report["wall_seconds"] < 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="concurrency"):
            LoadGenerator([], lambda e, b: (200, {}), concurrency=0)
        with pytest.raises(ValueError, match="speedup"):
            LoadGenerator([], lambda e, b: (200, {}), speedup=0.0)
        with pytest.raises(ValueError, match="max_exemplars"):
            LoadGenerator([], lambda e, b: (200, {}), max_exemplars=-1)

    def test_three_tuple_transport_feeds_exemplars(self):
        """Info-bearing transports populate queue waits + slowest list."""

        def transport(endpoint, body):
            i = body["i"]
            return (
                200,
                {},
                {"request_id": f"req-{i}", "queue_wait_ms": float(i)},
            )

        report = LoadGenerator(_events(8), transport, concurrency=2).run()
        predict = report["endpoints"]["/v1/predict"]
        assert predict["queue_wait_p50_ms"] >= 0.0
        assert predict["queue_wait_p99_ms"] >= predict["queue_wait_p50_ms"]
        assert len(report["slowest"]) == 8
        top = report["slowest"][0]
        assert top["request_id"].startswith("req-")
        assert top["latency_ms"] >= report["slowest"][-1]["latency_ms"]
        assert report["failures"] == []

    def test_failures_name_server_request_ids(self):
        """Non-200 responses surface the id the server assigned them."""

        def transport(endpoint, body):
            i = body["i"]
            if i % 2 == 0:
                return 500, {"error": "boom", "request_id": f"bad-{i}"}
            return 200, {}, {"request_id": f"ok-{i}"}

        report = LoadGenerator(_events(6), transport, concurrency=3).run()
        failures = report["failures"]
        assert len(failures) == 3
        assert all(f["status"] == 500 for f in failures)
        assert {f["request_id"] for f in failures} == {
            "bad-0",
            "bad-2",
            "bad-4",
        }
        assert all(f["error"] == "boom" for f in failures)

    def test_exemplar_lists_are_capped(self):
        def transport(endpoint, body):
            return 503, {"error": "down", "request_id": "x"}

        report = LoadGenerator(
            _events(10), transport, concurrency=2, max_exemplars=4
        ).run()
        assert len(report["failures"]) == 4
        assert len(report["slowest"]) == 4


class TestHTTPTransport:
    def test_against_live_server(self, tiny_actor, dataset):
        """End to end: city traffic through HTTP into a live QueryServer."""
        events = dataset.city.generate_query_stream(
            30, duration=0.2, n_noise=3
        )
        with QueryServer(tiny_actor, port=0) as server:
            report = LoadGenerator(
                events,
                http_transport(server.url),
                concurrency=6,
            ).run()
        assert report["n_requests"] == 30
        assert report["server_errors"] == 0
        assert report["transport_errors"] == 0
        # City traffic is drawn from the same generative process the
        # model trained on, so requests validate cleanly.
        assert report["client_errors"] == 0

    def test_transport_reports_connection_failure_as_status_zero(self):
        transport = http_transport("http://127.0.0.1:9", timeout=2.0)
        status, payload, info = transport("/v1/predict", {})
        assert status == 0
        assert "error" in payload
        assert info == {}

    def test_transport_surfaces_request_id_and_queue_wait(
        self, tiny_actor
    ):
        """The live server's tracing headers ride back in the info dict."""
        with QueryServer(tiny_actor, port=0) as server:
            transport = http_transport(server.url)
            status, _payload, info = transport(
                "/v1/neighbors", {"modality": "word", "time": 2.0, "k": 3}
            )
        assert status == 200
        assert info["request_id"]
        assert info["queue_wait_ms"] >= 0.0
