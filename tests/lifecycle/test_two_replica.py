"""Two serving replicas on one bundle root: the marker protocol drill.

A bundle root is a *shared* coordination surface: the ``CURRENT``
pointer and per-epoch ``VETOED`` markers are how independently-polling
replicas converge on the same serving epoch without talking to each
other.  These tests run two live :class:`QueryServer` +
:class:`LifecycleManager` stacks against one root and assert the
convergence properties the fleet relies on — same epoch after a
promote, same epoch after a veto, and zero 5xx responses while the
promotion sweeps through the fleet (``tools/ci_lifecycle.sh`` runs the
same drill as two OS processes).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core import load_bundle, save_bundle
from repro.core.drift import make_probe_queries
from repro.lifecycle import (
    BundlePublisher,
    BundleWatcher,
    LifecycleManager,
    read_pointer,
)
from repro.serving import QueryServer
from repro.utils.metrics import MetricsRegistry

from tests.lifecycle.conftest import scrambled_center

PREDICT_BODY = {
    "target": "time",
    "candidates": [2.0, 9.5, 13.0, 21.5],
    "words": ["common_000"],
    "location": [1.0, 2.0],
}


def _post_predict(server) -> int:
    data = json.dumps(PREDICT_BODY).encode("utf-8")
    request = urllib.request.Request(
        server.url + "/v1/predict",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status
    except urllib.error.HTTPError as exc:
        return exc.code


@pytest.fixture()
def fleet(bundles_root, tiny_actor, dataset):
    """Two independent server+manager stacks polling one bundle root."""
    publisher = BundlePublisher(bundles_root, retain=None)
    first = publisher.publish(tiny_actor)
    probe = make_probe_queries(dataset.test, max_queries=64)
    stacks = []
    try:
        for _ in range(2):
            server = QueryServer(
                load_bundle(first, mmap=True),
                port=0,
                metrics=MetricsRegistry(),
            ).start()
            manager = LifecycleManager(
                server,
                bundles_root,
                initial_epoch=1,
                probe_queries=probe,
            )
            stacks.append((server, manager))
        yield publisher, stacks
    finally:
        for server, _manager in stacks:
            server.stop()


class TestPromotionConvergence:
    def test_both_replicas_promote_with_zero_5xx(self, fleet, alt_actor):
        publisher, stacks = fleet
        statuses = [_post_predict(server) for server, _ in stacks]

        publisher.publish(alt_actor)
        # Replicas poll independently (no coordination beyond the root);
        # traffic keeps flowing between every poll.
        for server, manager in stacks:
            decision = manager.poll_once()
            assert decision["action"] == "promote"
            statuses.extend(_post_predict(s) for s, _ in stacks)

        for server, manager in stacks:
            assert manager.swapper.active_epoch == 2
            assert server.active_epoch == 2
        assert read_pointer(publisher.root) == 2
        statuses.extend(_post_predict(server) for server, _ in stacks)
        assert all(status == 200 for status in statuses)
        for server, _ in stacks:
            assert (
                server.metrics.counter("serve.responses_5xx").value == 0
            )

    def test_decision_log_carries_both_replicas(self, fleet, alt_actor):
        publisher, stacks = fleet
        publisher.publish(alt_actor)
        for _server, manager in stacks:
            manager.poll_once()
        log = (publisher.root / "decisions.jsonl").read_text().splitlines()
        actions = [json.loads(line)["action"] for line in log]
        assert actions == ["promote", "promote"]


class TestVetoConvergence:
    def test_veto_marker_stops_the_second_replica(
        self, fleet, tiny_actor, tmp_path
    ):
        publisher, stacks = fleet
        save_bundle(tiny_actor, tmp_path / "bad")
        bad = load_bundle(tmp_path / "bad")
        bad.center = scrambled_center(tiny_actor.center)
        publisher.publish(bad)

        (first_server, first_manager), (second_server, second_manager) = (
            stacks
        )
        decision = first_manager.poll_once()
        assert decision["action"] == "veto"
        assert BundleWatcher(publisher.root).vetoed(2)

        # The second replica never re-gates the vetoed epoch: the marker
        # in the shared root already carries the verdict.
        second_manager._polls_since_monitor = -10  # keep its monitor quiet
        assert second_manager.poll_once() is None
        for server, manager in stacks:
            assert manager.swapper.active_epoch == 1
            assert server.active_epoch == 1
        assert _post_predict(first_server) == 200
        assert _post_predict(second_server) == 200
