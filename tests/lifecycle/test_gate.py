"""PromotionGate: structural checks, probe MRR, force semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import load_bundle, save_bundle
from repro.core.drift import make_probe_queries
from repro.lifecycle import PromotionGate
from repro.utils.metrics import MetricsRegistry


from tests.lifecycle.conftest import scrambled_center


@pytest.fixture(scope="module")
def probe_queries(dataset):
    return make_probe_queries(dataset.test, max_queries=64, seed=0)


@pytest.fixture()
def mutable_copy(tmp_path, tiny_actor):
    """An eager, independently-mutable copy of the tiny actor."""
    save_bundle(tiny_actor, tmp_path / "copy")
    return load_bundle(tmp_path / "copy")


def _check(decision, name):
    for check in decision.checks:
        if check["name"] == name:
            return check
    raise AssertionError(
        f"no check named {name!r}; ran {[c['name'] for c in decision.checks]}"
    )


class TestStructuralChecks:
    def test_identical_candidate_promotes(self, tiny_actor, probe_queries):
        gate = PromotionGate(probe_queries=probe_queries)
        decision = gate.evaluate(
            tiny_actor, epoch=2, reference_model=tiny_actor
        )
        assert decision.verdict == "promote"
        assert decision.ok
        assert not decision.forced
        assert decision.candidate_mrr == pytest.approx(
            decision.reference_mrr
        )
        payload = decision.to_payload()
        assert payload["epoch"] == 2
        assert payload["verdict"] == "promote"

    def test_nan_embeddings_veto(self, tiny_actor, mutable_copy):
        center = np.array(mutable_copy.center)
        center[0, 0] = np.nan
        mutable_copy.center = center
        gate = PromotionGate()
        decision = gate.evaluate(
            mutable_copy, epoch=2, reference_model=tiny_actor
        )
        assert decision.verdict == "veto"
        assert not _check(decision, "finite_embeddings")["ok"]

    def test_dim_mismatch_vetoes(self, tiny_actor, mutable_copy):
        mutable_copy.center = np.array(mutable_copy.center)[:, :8]
        mutable_copy.context = np.array(mutable_copy.context)[:, :8]
        gate = PromotionGate()
        decision = gate.evaluate(
            mutable_copy, epoch=2, reference_model=tiny_actor
        )
        assert decision.verdict == "veto"
        assert not _check(decision, "dim_match")["ok"]

    def test_norm_blowup_vetoes(self, tiny_actor, mutable_copy):
        mutable_copy.center = np.array(mutable_copy.center) * 100.0
        gate = PromotionGate(norm_ratio=4.0)
        decision = gate.evaluate(
            mutable_copy, epoch=2, reference_model=tiny_actor
        )
        assert decision.verdict == "veto"
        assert not _check(decision, "norm_ratio")["ok"]


class TestProbeMrr:
    def test_scrambled_candidate_fails_probe_mrr(
        self, tiny_actor, mutable_copy, probe_queries
    ):
        mutable_copy.center = scrambled_center(tiny_actor.center)
        gate = PromotionGate(probe_queries=probe_queries, mrr_drop=0.2)
        decision = gate.evaluate(
            mutable_copy, epoch=3, reference_model=tiny_actor
        )
        assert decision.verdict == "veto"
        assert _check(decision, "norm_ratio")["ok"]
        assert not _check(decision, "probe_mrr")["ok"]

    def test_explicit_reference_mrr_is_the_bar(
        self, tiny_actor, probe_queries
    ):
        gate = PromotionGate(probe_queries=probe_queries, mrr_drop=0.2)
        actual = gate.probe_mrr(tiny_actor)
        # Baseline far above what the candidate scores: must veto even
        # though candidate and reference models are identical.
        decision = gate.evaluate(
            tiny_actor,
            epoch=2,
            reference_model=tiny_actor,
            reference_mrr=actual * 10.0,
        )
        assert decision.verdict == "veto"

    def test_no_probes_skips_mrr_check(self, tiny_actor):
        gate = PromotionGate()
        decision = gate.evaluate(
            tiny_actor, epoch=2, reference_model=tiny_actor
        )
        assert decision.verdict == "promote"
        assert decision.candidate_mrr is None
        names = [check["name"] for check in decision.checks]
        assert "probe_mrr" not in names


class TestForce:
    def test_force_promotes_failing_candidate(
        self, tiny_actor, mutable_copy, probe_queries
    ):
        mutable_copy.center = scrambled_center(tiny_actor.center)
        metrics = MetricsRegistry()
        gate = PromotionGate(probe_queries=probe_queries, metrics=metrics)
        decision = gate.evaluate(
            mutable_copy, epoch=3, reference_model=tiny_actor, force=True
        )
        assert decision.verdict == "promote"
        assert decision.forced
        assert not decision.ok  # failures still recorded
        assert decision.failures()
        assert metrics.counter("lifecycle.gate_fail").value == 1

    def test_force_on_passing_candidate_is_not_flagged(
        self, tiny_actor, probe_queries
    ):
        gate = PromotionGate(probe_queries=probe_queries)
        decision = gate.evaluate(
            tiny_actor, epoch=2, reference_model=tiny_actor, force=True
        )
        assert decision.verdict == "promote"
        assert not decision.forced


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            PromotionGate(mrr_drop=1.0)
        with pytest.raises(ValueError):
            PromotionGate(norm_ratio=0.5)
