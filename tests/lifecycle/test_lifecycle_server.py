"""LifecycleManager driving a live QueryServer: promote, veto, rollback."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core import load_bundle, save_bundle
from repro.core.drift import make_probe_queries
from repro.lifecycle import (
    BundlePublisher,
    BundleWatcher,
    LifecycleManager,
    read_pointer,
)
from repro.serving import QueryServer
from repro.serving.service import QueryService
from repro.utils.metrics import MetricsRegistry

from tests.lifecycle.conftest import scrambled_center

PREDICT_BODY = {
    "target": "time",
    "candidates": [2.0, 9.5, 13.0, 21.5],
    "words": ["common_000"],
    "location": [1.0, 2.0],
}


def _post(url: str, body: dict):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get_varz(server):
    with urllib.request.urlopen(server.url + "/varz", timeout=10.0) as resp:
        return json.loads(resp.read())


@pytest.fixture()
def stack(bundles_root, tiny_actor, dataset):
    """A publisher, a server on epoch 1, and a manager polling the root."""
    publisher = BundlePublisher(bundles_root, retain=None)
    first = publisher.publish(tiny_actor)
    server = QueryServer(
        load_bundle(first, mmap=True), port=0, metrics=MetricsRegistry()
    ).start()
    manager = LifecycleManager(
        server,
        bundles_root,
        initial_epoch=1,
        probe_queries=make_probe_queries(dataset.test, max_queries=64),
        monitor_every=1,
    )
    try:
        yield publisher, server, manager
    finally:
        server.stop()


class TestPromotion:
    def test_gated_promotion_under_traffic(self, stack, alt_actor):
        publisher, server, manager = stack
        status, before = _post(server.url + "/v1/predict", PREDICT_BODY)
        assert status == 200

        path = publisher.publish(alt_actor)
        decision = manager.poll_once()
        assert decision["action"] == "promote"
        assert manager.swapper.active_epoch == 2
        assert read_pointer(publisher.root) == 2
        assert manager.swapper.last_good is not None
        assert manager.swapper.last_good.epoch == 1

        # Served responses now come from the new generation, and match a
        # direct dispatch against the promoted bundle exactly.
        status, after = _post(server.url + "/v1/predict", PREDICT_BODY)
        assert status == 200
        direct = QueryService(load_bundle(path), metrics=MetricsRegistry())
        expected = direct.dispatch([direct.validate_predict(PREDICT_BODY)])[0]
        assert after == expected
        assert after != before

        varz = _get_varz(server)
        assert varz["lifecycle"]["active_epoch"] == 2
        assert varz["lifecycle"]["last_decision"]["action"] == "promote"
        assert server.metrics.gauge("lifecycle.active_epoch").value == 2
        assert server.metrics.counter("lifecycle.promotions").value == 1

    def test_idle_poll_is_a_noop(self, stack):
        _publisher, _server, manager = stack
        manager._polls_since_monitor = -10  # keep the monitor quiet
        assert manager.poll_once() is None
        assert manager.swapper.active_epoch == 1


class TestVeto:
    def test_degraded_candidate_is_vetoed(self, stack, tiny_actor, tmp_path):
        publisher, server, manager = stack
        save_bundle(tiny_actor, tmp_path / "bad")
        bad = load_bundle(tmp_path / "bad")
        bad.center = scrambled_center(tiny_actor.center)
        path = publisher.publish(bad)

        decision = manager.poll_once()
        assert decision["action"] == "veto"
        assert "probe_mrr" in [
            c["name"] for c in decision["checks"] if not c["ok"]
        ]
        assert manager.swapper.active_epoch == 1
        assert BundleWatcher(publisher.root).vetoed(2)
        assert (path / "VETOED").read_text().startswith("gate:")
        assert server.metrics.counter("lifecycle.vetoes").value == 1
        # The vetoed epoch is never offered again.
        assert manager.poll_once() is None or (
            manager.poll_once()["action"] != "promote"
        )

    def test_unloadable_candidate_is_vetoed(self, stack):
        publisher, _server, manager = stack
        epoch_dir = publisher.root / "000002"
        epoch_dir.mkdir()
        (epoch_dir / "manifest.json").write_text("{not json")
        decision = manager.poll_once()
        assert decision["action"] == "veto"
        assert "unloadable" in decision["reason"]
        assert manager.swapper.active_epoch == 1


class TestRollback:
    def test_operator_rollback(self, stack, alt_actor):
        publisher, server, manager = stack
        publisher.publish(alt_actor)
        assert manager.poll_once()["action"] == "promote"

        BundleWatcher(publisher.root).request_rollback("drill")
        decision = manager.poll_once()
        assert decision["action"] == "rollback"
        assert decision["reason"] == "drill"
        assert decision["restored_epoch"] == 1
        assert manager.swapper.active_epoch == 1
        assert read_pointer(publisher.root) == 1
        assert BundleWatcher(publisher.root).vetoed(2)
        assert server.metrics.counter("lifecycle.rollbacks").value == 1
        status, _ = _post(server.url + "/v1/predict", PREDICT_BODY)
        assert status == 200

    def test_rollback_without_last_good_fails_safely(self, stack):
        _publisher, _server, manager = stack
        BundleWatcher(manager.watcher.root).request_rollback("too early")
        decision = manager.poll_once()
        assert decision["action"] == "rollback_failed"
        assert manager.swapper.active_epoch == 1

    def test_forced_promotion_then_auto_rollback(
        self, stack, tiny_actor, tmp_path
    ):
        publisher, server, manager = stack
        baseline = manager.baseline_mrr
        save_bundle(tiny_actor, tmp_path / "bad")
        bad = load_bundle(tmp_path / "bad")
        bad.center = scrambled_center(tiny_actor.center)
        publisher.publish(bad, force=True)

        decision = manager.poll_once()
        assert decision["action"] == "promote"
        assert decision["forced"] is True
        assert manager.swapper.active_epoch == 2
        # Forced promotion must not move the quality baseline.
        assert manager.baseline_mrr == baseline

        # monitor_every=1: the next idle poll probes the active model,
        # sees the regression, and auto-rolls back to last-good.
        decision = manager.poll_once()
        assert decision["action"] == "rollback"
        assert "fell below floor" in decision["reason"]
        assert manager.swapper.active_epoch == 1
        assert read_pointer(publisher.root) == 1
        varz = _get_varz(server)
        assert varz["lifecycle"]["active_epoch"] == 1
        assert varz["lifecycle"]["last_decision"]["action"] == "rollback"

        log = (publisher.root / "decisions.jsonl").read_text().splitlines()
        actions = [json.loads(line)["action"] for line in log]
        assert actions == ["promote", "rollback"]


class TestBackgroundThread:
    def test_start_stop_and_background_promotion(self, stack, alt_actor):
        import time

        publisher, _server, manager = stack
        manager.poll_interval = 0.05
        manager.start()
        with pytest.raises(RuntimeError):
            manager.start()
        try:
            publisher.publish(alt_actor)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if manager.swapper.active_epoch == 2:
                    break
                time.sleep(0.05)
            assert manager.swapper.active_epoch == 2
        finally:
            manager.stop()
        manager.stop()  # idempotent
