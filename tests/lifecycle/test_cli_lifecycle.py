"""CLI surface of the lifecycle: export --force, promote, rollback, serve."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lifecycle import list_epochs, read_pointer


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("lifecycle-cli") / "corpus.jsonl"
    assert (
        main(
            [
                "generate",
                "--preset", "utgeo2011",
                "--n-records", "600",
                "--seed", "21",
                "--out", str(path),
            ]
        )
        == 0
    )
    return path


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, tiny_actor):
    path = tmp_path_factory.mktemp("lifecycle-cli-model") / "actor.pkl"
    tiny_actor.save(path)
    return path


class TestExportForce:
    def test_reexport_onto_existing_bundle_refuses(
        self, tmp_path, model_path, capsys
    ):
        out = tmp_path / "bundle"
        assert main(["export", "--model", str(model_path), "--out", str(out)]) == 0
        capsys.readouterr()

        code = main(["export", "--model", str(model_path), "--out", str(out)])
        assert code == 2
        err = capsys.readouterr().err
        assert "--force" in err
        assert "repro promote" in err

    def test_force_overwrites_in_place(self, tmp_path, model_path, capsys):
        out = tmp_path / "bundle"
        assert main(["export", "--model", str(model_path), "--out", str(out)]) == 0
        manifest_before = (out / "manifest.json").read_text()
        code = main(
            ["export", "--model", str(model_path), "--out", str(out), "--force"]
        )
        assert code == 0
        assert "exported portable bundle" in capsys.readouterr().out
        assert (out / "manifest.json").read_text() == manifest_before


class TestPromoteCli:
    def test_promote_publishes_sequential_epochs(
        self, tmp_path, model_path, capsys
    ):
        bundles = tmp_path / "bundles"
        for expected in ("000001", "000002"):
            code = main(
                [
                    "promote",
                    "--model", str(model_path),
                    "--bundles", str(bundles),
                ]
            )
            assert code == 0
            assert f"published epoch {expected}" in capsys.readouterr().out
        assert [e for e, _ in list_epochs(bundles)] == [1, 2]
        assert read_pointer(bundles, "LATEST") == 2

    def test_promote_shards_publishes_v3_epoch(
        self, tmp_path, model_path, capsys
    ):
        bundles = tmp_path / "bundles"
        code = main(
            [
                "promote",
                "--model", str(model_path),
                "--bundles", str(bundles),
                "--shards", "2",
            ]
        )
        assert code == 0
        assert "published epoch 000001" in capsys.readouterr().out
        manifest = json.loads(
            (bundles / "000001" / "manifest.json").read_text()
        )
        assert manifest["sharding"]["n_shards"] == 2

    def test_promote_rejects_nonpositive_shards(
        self, tmp_path, model_path, capsys
    ):
        code = main(
            [
                "promote",
                "--model", str(model_path),
                "--bundles", str(tmp_path / "bundles"),
                "--shards", "0",
            ]
        )
        assert code == 2
        assert "shards" in capsys.readouterr().err

    def test_promote_force_lands_in_promote_json(
        self, tmp_path, model_path, capsys
    ):
        bundles = tmp_path / "bundles"
        code = main(
            [
                "promote",
                "--model", str(model_path),
                "--bundles", str(bundles),
                "--force",
            ]
        )
        assert code == 0
        assert "forced" in capsys.readouterr().out
        promote = json.loads((bundles / "000001" / "promote.json").read_text())
        assert promote == {"force": True}


class TestRollbackCli:
    def test_rollback_writes_marker(self, tmp_path, capsys):
        bundles = tmp_path / "bundles"
        code = main(
            [
                "rollback",
                "--bundles", str(bundles),
                "--reason", "bad p99 after promote",
            ]
        )
        assert code == 0
        assert "rollback requested" in capsys.readouterr().out
        marker = bundles / "ROLLBACK"
        assert marker.read_text().strip() == "bad p99 after promote"


class TestServeLifecycle:
    def test_serve_requires_model_or_bundles(self, capsys):
        code = main(["serve", "--port", "0", "--max-seconds", "0.1"])
        assert code == 2
        assert "--watch-bundles" in capsys.readouterr().err

    def test_serve_empty_bundle_root_refuses(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--watch-bundles", str(tmp_path / "empty"),
                "--port", "0",
                "--max-seconds", "0.1",
            ]
        )
        assert code == 2
        assert "no" in capsys.readouterr().err

    def test_serve_watch_bundles_cold_start(
        self, tmp_path, model_path, capsys
    ):
        bundles = tmp_path / "bundles"
        assert (
            main(
                ["promote", "--model", str(model_path), "--bundles", str(bundles)]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--watch-bundles", str(bundles),
                "--port", "0",
                "--poll-interval", "0.2",
                "--max-seconds", "0.8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lifecycle epoch 1 watching" in out
        assert "server drained and stopped" in out


class TestStreamPublish:
    def test_stream_publishes_bundles(
        self, tmp_path, model_path, corpus_path, capsys
    ):
        bundles = tmp_path / "bundles"
        code = main(
            [
                "stream",
                "--model", str(model_path),
                "--corpus", str(corpus_path),
                "--batch-size", "200",
                "--steps-per-batch", "5",
                "--publish-bundles", str(bundles),
                "--publish-every", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 600 records / 200 per batch = 3 batches: one mid-stream publish
        # (batch 2) plus the unconditional end-of-stream publish.
        assert out.count("published bundle epoch") == 2
        assert [e for e, _ in list_epochs(bundles)] == [1, 2]
