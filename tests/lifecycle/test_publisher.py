"""Publisher + watcher: epochs, pointers, retention, markers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import OnlineActor, load_bundle, save_bundle
from repro.lifecycle import (
    BundlePublisher,
    BundleWatcher,
    epoch_name,
    list_epochs,
    parse_epoch,
    read_pointer,
    write_pointer,
)


class TestEpochNames:
    def test_round_trip(self):
        assert epoch_name(3) == "000003"
        assert parse_epoch("000003") == 3
        assert parse_epoch(epoch_name(123456)) == 123456

    def test_non_epoch_entries_rejected(self):
        assert parse_epoch("CURRENT") is None
        assert parse_epoch("0003") is None
        assert parse_epoch(".tmp-000003-99") is None
        assert parse_epoch("0000030") is None

    def test_negative_epoch_raises(self):
        with pytest.raises(ValueError):
            epoch_name(-1)


class TestPublish:
    def test_sequential_epochs_and_latest_pointer(self, publisher, tiny_actor):
        first = publisher.publish(tiny_actor)
        second = publisher.publish(tiny_actor)
        assert first.name == "000001"
        assert second.name == "000002"
        assert [e for e, _ in list_epochs(publisher.root)] == [1, 2]
        assert read_pointer(publisher.root, "LATEST") == 2
        assert publisher.next_epoch() == 3

    def test_promote_json_records_force(self, publisher, tiny_actor):
        plain = publisher.publish(tiny_actor)
        forced = publisher.publish(tiny_actor, force=True)
        assert json.loads((plain / "promote.json").read_text()) == {
            "force": False
        }
        assert json.loads((forced / "promote.json").read_text()) == {
            "force": True
        }

    def test_published_bundle_loads(self, publisher, tiny_actor):
        path = publisher.publish(tiny_actor)
        model = load_bundle(path, mmap=True)
        np.testing.assert_array_equal(
            np.asarray(model.center), np.asarray(tiny_actor.center)
        )

    def test_list_epochs_ignores_partial_and_foreign_entries(
        self, publisher, tiny_actor
    ):
        publisher.publish(tiny_actor)
        (publisher.root / ".tmp-000009-123").mkdir()
        (publisher.root / "000005").mkdir()  # no manifest: still publishing
        (publisher.root / "notes.txt").write_text("hi")
        assert [e for e, _ in list_epochs(publisher.root)] == [1]

    def test_streamed_model_publishes_extra_nodes(
        self, publisher, stream_actor
    ):
        base, records = stream_actor
        online = OnlineActor(base, seed=7)
        online.partial_fit(records)
        assert online._extra_nodes, "stream should have grown new nodes"
        path = publisher.publish(online)
        model = load_bundle(path)
        assert model.center.shape == np.asarray(online.center).shape
        nodes = json.loads((path / "nodes.json").read_text())
        assert len(nodes) == online.center.shape[0]

    def test_save_bundle_refuses_inconsistent_extra_rows(
        self, tmp_path, stream_actor
    ):
        base, records = stream_actor
        online = OnlineActor(base, seed=7)
        online.partial_fit(records)
        broken = dict(online._extra_nodes)
        # Skip a row so the registry no longer tiles the matrix.
        key = next(iter(broken))
        broken[key] = broken[key] + 1_000
        online._extra_nodes = broken
        with pytest.raises(ValueError):
            save_bundle(online, tmp_path / "bundle")


class TestRetention:
    def test_prunes_oldest_unpinned(self, bundles_root, tiny_actor):
        publisher = BundlePublisher(bundles_root, retain=2)
        for _ in range(4):
            publisher.publish(tiny_actor)
        assert [e for e, _ in list_epochs(bundles_root)] == [3, 4]

    def test_current_pointer_pins_its_epoch(self, bundles_root, tiny_actor):
        publisher = BundlePublisher(bundles_root, retain=2)
        publisher.publish(tiny_actor)
        write_pointer(bundles_root, 1, "CURRENT")
        for _ in range(3):
            publisher.publish(tiny_actor)
        kept = [e for e, _ in list_epochs(bundles_root)]
        assert 1 in kept, "the serving epoch must never be pruned"
        assert kept[-1] == 4

    def test_retain_validation(self, bundles_root):
        with pytest.raises(ValueError):
            BundlePublisher(bundles_root, retain=0)


class TestPointers:
    def test_unset_and_dangling_pointers_read_none(
        self, bundles_root, publisher, tiny_actor
    ):
        assert read_pointer(bundles_root) is None
        write_pointer(bundles_root, 42)  # no such epoch on disk
        assert read_pointer(bundles_root) is None

    def test_write_is_replace(self, publisher, tiny_actor):
        publisher.publish(tiny_actor)
        publisher.publish(tiny_actor)
        write_pointer(publisher.root, 1)
        write_pointer(publisher.root, 2)
        assert read_pointer(publisher.root) == 2


class TestWatcher:
    def test_candidate_and_veto(self, publisher, tiny_actor):
        publisher.publish(tiny_actor)
        publisher.publish(tiny_actor, force=True)
        watcher = BundleWatcher(publisher.root)
        candidate = watcher.candidate(after=1)
        assert candidate is not None
        assert candidate.epoch == 2
        assert candidate.force is True
        assert watcher.candidate(after=2) is None

        watcher.veto(2, "probe MRR regression")
        assert watcher.vetoed(2)
        assert watcher.candidate(after=1) is None
        # A newer publish is offered even over the vetoed one.
        publisher.publish(tiny_actor)
        assert watcher.candidate(after=1).epoch == 3

    def test_serving_epoch_prefers_current(self, publisher, tiny_actor):
        publisher.publish(tiny_actor)
        publisher.publish(tiny_actor)
        watcher = BundleWatcher(publisher.root)
        assert watcher.serving_epoch() == 2  # newest, no pointer yet
        write_pointer(publisher.root, 1)
        assert watcher.serving_epoch() == 1
        watcher.veto(1, "bad")
        assert watcher.serving_epoch() == 2  # pointer target vetoed

    def test_rollback_marker_round_trip(self, bundles_root):
        watcher = BundleWatcher(bundles_root)
        assert not watcher.rollback_requested()
        watcher.request_rollback("drill")
        assert watcher.rollback_requested()
        assert watcher.clear_rollback() == "drill"
        assert not watcher.rollback_requested()

    def test_empty_root(self, bundles_root):
        watcher = BundleWatcher(bundles_root)
        assert watcher.candidate() is None
        assert watcher.serving_epoch() is None
