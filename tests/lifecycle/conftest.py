"""Lifecycle fixtures: a bundle root seeded from the tiny actor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Actor, ActorConfig
from repro.lifecycle import BundlePublisher

from tests.conftest import STORE_BACKEND


@pytest.fixture(scope="session")
def alt_actor(dataset):
    """A second, distinct model (different seed) for swap tests.

    Seed 13 scores within the default gate's probe-MRR floor of the
    session ``tiny_actor`` (seed 5), so promoting one over the other in
    either direction passes an honest gate.
    """
    config = ActorConfig(
        dim=16,
        epochs=3,
        line_samples=5_000,
        batches_per_epoch=4,
        seed=13,
        store_backend=STORE_BACKEND,
    )
    return Actor(config).fit(dataset.train)


@pytest.fixture(scope="module")
def stream_actor():
    """A private fitted base + fresh records for streaming-growth tests.

    Session fixtures must stay immutable, and ``OnlineActor.partial_fit``
    grows the *shared* built vocabulary — so streamed-publish tests get
    their own model.
    """
    from repro.data import generate_dataset

    data = generate_dataset("utgeo2011", n_records=1000, seed=31)
    config = ActorConfig(
        dim=16,
        epochs=2,
        line_samples=5_000,
        batches_per_epoch=4,
        seed=2,
        store_backend=STORE_BACKEND,
    )
    base = Actor(config).fit(data.train)
    return base, list(data.test)[:120]


@pytest.fixture()
def bundles_root(tmp_path):
    """An empty bundle root directory."""
    return tmp_path / "bundles"


@pytest.fixture()
def publisher(bundles_root):
    """A publisher over the empty root (retention disabled)."""
    return BundlePublisher(bundles_root, retain=None)


def scrambled_center(reference_center, seed=0):
    """Random rows rescaled to the reference's mean norm.

    A maximally degraded model whose norm mass still matches the
    reference, so gate vetoes (and monitor rollbacks) can only come from
    the probe-MRR regression — the signal these tests inject.
    """
    reference = np.asarray(reference_center)
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=reference.shape)
    rows *= (
        np.linalg.norm(reference, axis=1).mean()
        / np.linalg.norm(rows, axis=1).mean()
    )
    return rows
