"""Swap atomicity under fire: concurrent clients through promote cycles.

Eight client threads hammer ``/v1/predict`` while the control loop
repeatedly promotes alternating bundle versions (and finishes with an
operator rollback).  The contract under test:

* zero non-200 responses for valid requests, through every flip;
* zero torn reads — every response body equals, byte for byte, the
  payload one specific bundle version produces for that request (never a
  blend of two generations);
* ``lifecycle.active_epoch`` is nondecreasing while only promotions run.
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.core import load_bundle
from repro.lifecycle import BundleWatcher, LifecycleManager
from repro.serving import QueryServer
from repro.serving.service import QueryService
from repro.utils.metrics import MetricsRegistry

PREDICT_BODY = {
    "target": "time",
    "candidates": [2.0, 9.5, 13.0, 21.5],
    "words": ["common_000", "common_001"],
    "location": [1.5, -0.5],
}
CLIENTS = 8
PROMOTE_CYCLES = 6


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _expected_payload(path) -> str:
    """The exact response body a bundle version serves for PREDICT_BODY."""
    service = QueryService(load_bundle(path), metrics=MetricsRegistry())
    result = service.dispatch([service.validate_predict(PREDICT_BODY)])[0]
    # The HTTP layer JSON-encodes the dispatch result; round-trip so
    # float formatting matches what clients parse back.
    return _canonical(json.loads(json.dumps(result)))


class _Client(threading.Thread):
    """Hammer /v1/predict until stopped; record every (status, body)."""

    def __init__(self, url: str, stop: threading.Event) -> None:
        super().__init__(daemon=True)
        self.url = url + "/v1/predict"
        self.stop_event = stop
        self.results: list[tuple[int, str]] = []
        self.errors: list[str] = []

    def run(self) -> None:
        data = json.dumps(PREDICT_BODY).encode("utf-8")
        while not self.stop_event.is_set():
            request = urllib.request.Request(
                self.url,
                data=data,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=30.0) as resp:
                    body = json.loads(resp.read())
                    self.results.append((resp.status, _canonical(body)))
            except urllib.error.HTTPError as exc:
                self.results.append((exc.code, exc.read().decode()))
            except Exception as exc:  # noqa: BLE001 - fail the assert below
                self.errors.append(f"{type(exc).__name__}: {exc}")
                return


def test_no_torn_reads_across_promote_and_rollback_cycles(
    bundles_root, publisher, tiny_actor, alt_actor
):
    first = publisher.publish(tiny_actor)
    server = QueryServer(
        load_bundle(first, mmap=True), port=0, metrics=MetricsRegistry()
    ).start()
    # probe_queries=None: structural-only gate keeps each flip fast, so
    # the traffic phase covers many swaps instead of waiting on MRR runs.
    manager = LifecycleManager(server, bundles_root, initial_epoch=1)
    try:
        versions = {
            _expected_payload(first),
        }
        stop = threading.Event()
        clients = [_Client(server.url, stop) for _ in range(CLIENTS)]
        for client in clients:
            client.start()

        epochs_seen = [manager.swapper.active_epoch]
        for cycle in range(PROMOTE_CYCLES):
            model = alt_actor if cycle % 2 == 0 else tiny_actor
            path = publisher.publish(model)
            versions.add(_expected_payload(path))
            decision = manager.poll_once()
            assert decision["action"] == "promote", decision
            epochs_seen.append(manager.swapper.active_epoch)

        assert epochs_seen == sorted(epochs_seen), (
            "active_epoch must be nondecreasing under promotions: "
            f"{epochs_seen}"
        )
        assert epochs_seen[-1] == PROMOTE_CYCLES + 1

        # Finish with an operator rollback — clients keep hammering.
        BundleWatcher(bundles_root).request_rollback("stress drill")
        decision = manager.poll_once()
        assert decision["action"] == "rollback", decision

        stop.set()
        for client in clients:
            client.join(timeout=30.0)
            assert not client.is_alive(), "client thread wedged"
    finally:
        stop.set()
        server.stop()

    # Both bundle versions appear in `versions` (published repeatedly,
    # payloads dedupe); two distinct models → two distinct payloads.
    assert len(versions) == 2

    total = 0
    for client in clients:
        assert client.errors == [], client.errors
        for status, body in client.results:
            total += 1
            assert status == 200, (status, body)
            assert body in versions, (
                "torn read: response matches no single bundle version: "
                + body
            )
    # The stress is only meaningful if traffic actually overlapped the
    # flips; eight looping clients across seven swaps clear this easily.
    assert total >= CLIENTS * 4, f"only {total} requests completed"
