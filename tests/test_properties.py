"""Cross-cutting property-based tests on core invariants.

These complement the per-module hypothesis tests with properties that span
multiple subsystems: graph construction determinism, hotspot assignment
consistency, and the evaluation protocol's fairness guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Corpus, Record, Vocabulary
from repro.graphs import GraphBuilder, NodeType
from repro.hotspots import HotspotDetector, circular_mean_shift


def record_strategy(n_users=5, n_words=8, span=20.0):
    words = [f"w{i}" for i in range(n_words)]
    return st.builds(
        Record,
        record_id=st.integers(0, 10_000),
        user=st.sampled_from([f"u{i}" for i in range(n_users)]),
        timestamp=st.floats(0.0, 500.0, allow_nan=False),
        location=st.tuples(
            st.floats(0.0, span, allow_nan=False),
            st.floats(0.0, span, allow_nan=False),
        ),
        words=st.lists(st.sampled_from(words), max_size=5).map(tuple),
        mentions=st.lists(
            st.sampled_from([f"u{i}" for i in range(n_users)]), max_size=1
        ).map(tuple),
    )


corpus_strategy = st.lists(record_strategy(), min_size=10, max_size=40).map(
    lambda records: Corpus(records=records)
)


class TestGraphBuildProperties:
    @settings(max_examples=15, deadline=None)
    @given(corpus=corpus_strategy)
    def test_build_is_deterministic(self, corpus):
        def build():
            return GraphBuilder(
                detector=HotspotDetector(
                    spatial_bandwidth=2.0,
                    temporal_bandwidth=2.0,
                    min_support=1,
                ),
                vocab=Vocabulary(min_count=1),
            ).build(corpus)

        a, b = build(), build()
        assert a.activity.n_nodes == b.activity.n_nodes
        assert a.activity.n_edges == b.activity.n_edges
        for edge_type, edge_set in a.activity.edge_sets.items():
            other = b.activity.edge_set(edge_type)
            np.testing.assert_array_equal(edge_set.src, other.src)
            np.testing.assert_array_equal(edge_set.weight, other.weight)

    @settings(max_examples=15, deadline=None)
    @given(corpus=corpus_strategy)
    def test_every_record_maps_to_existing_units(self, corpus):
        built = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=2.0, temporal_bandwidth=2.0, min_support=1
            ),
            vocab=Vocabulary(min_count=1),
        ).build(corpus)
        n = built.activity.n_nodes
        for units in built.record_units:
            assert 0 <= units.time_node < n
            assert 0 <= units.location_node < n
            assert built.activity.type_of(units.time_node) is NodeType.TIME
            assert (
                built.activity.type_of(units.location_node)
                is NodeType.LOCATION
            )

    @settings(max_examples=15, deadline=None)
    @given(corpus=corpus_strategy)
    def test_edge_weights_are_integral_cooccurrence_counts(self, corpus):
        """With unit link weights, all accumulated weights are whole numbers."""
        built = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=2.0, temporal_bandwidth=2.0, min_support=1
            ),
            vocab=Vocabulary(min_count=1),
        ).build(corpus)
        for edge_set in built.activity.edge_sets.values():
            np.testing.assert_array_equal(
                edge_set.weight, np.round(edge_set.weight)
            )


class TestHotspotAssignmentProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        hours=st.lists(
            st.floats(0.0, 24.0, exclude_max=True, allow_nan=False),
            min_size=5,
            max_size=50,
        ),
        shift=st.floats(0.0, 240.0, allow_nan=False),
    )
    def test_temporal_assignment_is_period_invariant(self, hours, shift):
        """Assigning t and t + k*24 must give the same hotspot."""
        detector = HotspotDetector(
            spatial_bandwidth=1.0, temporal_bandwidth=2.0, min_support=1
        )
        locations = np.zeros((len(hours), 2))
        detector.fit_arrays(locations, np.asarray(hours))
        base = detector.assign_temporal(np.asarray(hours))
        shifted = detector.assign_temporal(
            np.asarray(hours) + 24.0 * round(shift / 24.0)
        )
        np.testing.assert_array_equal(base, shifted)

    @settings(max_examples=15, deadline=None)
    @given(
        centers=st.lists(
            st.sampled_from([2.0, 8.0, 14.0, 20.0]),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        offset=st.floats(0.0, 24.0, allow_nan=False),
        seed=st.integers(0, 500),
    )
    def test_circular_meanshift_rotation_equivariance(
        self, centers, offset, seed
    ):
        """Rotating well-separated clusters preserves the mode count.

        Exact equivariance does not hold for arbitrary scattered data (the
        binned seeding grid and merge-radius decisions are not rotation
        invariant at basin borders), so the property is asserted on the
        structurally stable case the detector is designed for: tight
        clusters far apart relative to the bandwidth.
        """
        rng = np.random.default_rng(seed)
        values = np.concatenate(
            [rng.normal(c, 0.2, size=30) for c in centers]
        ) % 24.0
        base = circular_mean_shift(values, bandwidth=1.5, min_support=1)
        rotated = circular_mean_shift(
            (values + offset) % 24.0, bandwidth=1.5, min_support=1
        )
        assert base.n_modes == len(centers)
        assert rotated.n_modes == len(centers)


class TestEvaluationProtocolProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_candidate_sets_identical_across_models(self, seed):
        """The harness must give every model the exact same candidates."""
        from repro.eval import make_queries

        rng = np.random.default_rng(seed)
        corpus = Corpus.from_records(
            Record(
                record_id=i,
                user=f"u{i % 4}",
                timestamp=float(rng.uniform(0, 24)),
                location=(float(rng.uniform(0, 9)), float(rng.uniform(0, 9))),
                words=(f"w{i % 5}",),
            )
            for i in range(30)
        )
        a = make_queries(corpus, "time", n_noise=5, seed=seed)
        b = make_queries(corpus, "time", n_noise=5, seed=seed)
        for qa, qb in zip(a, b):
            assert qa.candidates == qb.candidates
            assert qa.truth_index == qb.truth_index
