"""Property test: the ANN index never serves stale rows under streaming.

Interleaves the two serving-time mutation paths — ``partial_fit`` growth
(new vocabulary rows appended to the store) and in-place SGD bursts
(rows scattered in place, then ``invalidate_query_cache``) — with ANN
and exact queries.  After *every* step, a full-coverage ANN probe
(``nprobe == nlist``) must reproduce, bit for bit, an exact einsum scan
over the store's *current* normalized rows: any stale index — old row
values, old row count, old key order — fails the comparison.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import IndexedQueryEngine
from repro.core import Actor, ActorConfig, OnlineActor
from repro.core.prediction import normalize_rows, top_k
from repro.utils.metrics import MetricsRegistry

ops_strategy = st.lists(
    st.sampled_from(["grow", "burst", "query", "query"]),
    min_size=3,
    max_size=7,
)


@pytest.fixture(scope="module")
def base_actor(dataset, store_backend):
    config = ActorConfig(
        dim=8,
        epochs=1,
        line_samples=1_000,
        batches_per_epoch=2,
        seed=21,
        store_backend=store_backend,
    )
    return Actor(config).fit(dataset.train)


def exact_reference(model, query, k):
    """Fresh exact top-``k`` over the live store, einsum kernel."""
    cache = model.modality_cache("word")
    q = normalize_rows(np.asarray(query, dtype=float)[None, :])[0]
    scores = np.einsum("nd,d->n", cache.normalized, q)
    order = top_k(scores, k)
    return [(cache.keys[int(i)], float(scores[i])) for i in order]


class TestStalenessProperty:
    @settings(max_examples=8, deadline=None)
    @given(ops=ops_strategy, seed=st.integers(0, 10_000))
    def test_property_index_tracks_every_mutation(
        self, dataset, base_actor, ops, seed
    ):
        rng = np.random.default_rng(seed)
        online = OnlineActor(
            base_actor, seed=seed, steps_per_batch=2, buffer_size=256
        )
        engine = IndexedQueryEngine(
            online, nlist=4, nprobe=4, metrics=MetricsRegistry()
        )
        grown = 0
        for step, op in enumerate(ops):
            if op == "grow":
                novel = [
                    replace(
                        r,
                        words=tuple(
                            f"novel_{seed}_{grown}_{j}"
                            for j in range(len(r.words) or 1)
                        ),
                    )
                    for r in dataset.test.records[
                        5 * step : 5 * step + 3
                    ]
                ]
                grown += 1
                rows_before = online.store.n_rows
                online.partial_fit(novel)
                assert online.store.n_rows > rows_before
            elif op == "burst":
                _keys, rows = online.modality_rows("word")
                pick = rows[int(rng.integers(0, len(rows)))]
                online.center[pick] += rng.normal(
                    scale=0.5, size=online.center.shape[1]
                )
                online.invalidate_query_cache()
            # After every op (including right after mutations) the ANN
            # answer must match an exact scan of the *current* store.
            query = rng.normal(size=online.center.shape[1])
            got = engine.neighbors(query, "word", 5)
            want = exact_reference(online, query, 5)
            assert [k for k, _ in got] == [k for k, _ in want]
            assert [s for _, s in got] == [s for _, s in want]
        if grown:
            # grown vocabulary is retrievable through the index: probing
            # with a novel word's own embedding returns that word first.
            cache = online.modality_cache("word")
            novel_keys = [
                k for k in cache.keys if str(k).startswith("novel_")
            ]
            key = novel_keys[-1]
            vec = np.asarray(
                cache.matrix[cache.position_of[key]], dtype=float
            )
            if np.linalg.norm(vec) > 0:
                assert engine.neighbors(vec, "word", 1)[0][0] == key
