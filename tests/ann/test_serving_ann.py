"""End-to-end serving tests for ``repro serve --ann``.

The serving contracts under ANN: `/v1/neighbors` over HTTP is identical
to direct IndexedQueryEngine execution (coalesced or not — each query's
probe depends only on that query and the index snapshot, so batching is
invisible); `/v1/predict` still rides the exact candidate path; the
telemetry surface reports the index state; and indexes are built eagerly
before the socket binds, so the first request never pays the build.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.ann import IndexedQueryEngine
from repro.serving import QueryServer
from repro.serving.service import QueryService
from repro.utils.metrics import MetricsRegistry


def _post(url: str, body, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


NEIGHBOR_BODIES = [
    {"modality": "word", "time": 21.0, "k": 5},
    {"modality": "time", "words": ["common_000"], "k": 3},
    {"modality": "location", "time": 3.0, "k": 4},
    {"modality": "word", "words": ["never_in_any_vocab_xyz"], "k": 2},
    {"modality": "word", "location": [2.0, 3.0], "k": 6},
]

PREDICT_BODIES = [
    {
        "target": "time",
        "candidates": [2.0, 9.5, 13.0, 21.5],
        "words": ["common_000"],
        "location": [1.0, 2.0],
    },
    {
        "target": "location",
        "candidates": [[0.5, 0.5], [10.0, 12.0], [3.3, 7.7]],
        "time": 20.0,
        "words": ["common_001"],
    },
]


@pytest.fixture(scope="module")
def ann_server(tiny_actor):
    """A running coalescing QueryServer with ANN retrieval enabled."""
    with QueryServer(
        tiny_actor,
        port=0,
        metrics=MetricsRegistry(),
        ann=True,
        ann_nlist=8,
        ann_nprobe=8,
    ) as server:
        yield server


class TestServeAnn:
    def test_indexes_built_eagerly_at_startup(self, ann_server):
        status = ann_server.engine.ann_status()
        assert set(status["indexes"]) == {"word", "time", "location"}
        assert all(
            not entry["stale"] for entry in status["indexes"].values()
        )
        assert (
            ann_server.metrics.counter("ann.index_builds").value >= 3
        )

    def test_http_neighbors_identical_to_direct_ann_engine(
        self, ann_server, tiny_actor
    ):
        """Coalesced HTTP == direct batch-of-1 on a private ANN service."""
        direct = QueryService(
            tiny_actor,
            engine=IndexedQueryEngine(
                tiny_actor, nlist=8, nprobe=8, metrics=MetricsRegistry()
            ),
            metrics=MetricsRegistry(),
        )
        for body in NEIGHBOR_BODIES:
            status, payload = _post(
                f"{ann_server.url}/v1/neighbors", body
            )
            assert status == 200
            request = direct.validate_neighbors(body)
            assert payload == direct.dispatch([request])[0]

    def test_http_predict_still_exact(self, ann_server, tiny_actor):
        """/v1/predict rides the inherited exact candidate path."""
        exact = QueryService(tiny_actor, metrics=MetricsRegistry())
        for body in PREDICT_BODIES:
            status, payload = _post(f"{ann_server.url}/v1/predict", body)
            assert status == 200
            request = exact.validate_predict(body)
            assert payload == exact.dispatch([request])[0]

    def test_coalesced_burst_equals_batch_of_one(
        self, ann_server, tiny_actor
    ):
        """Concurrent ANN neighbor queries: same bits as sequential."""
        direct = QueryService(
            tiny_actor,
            engine=IndexedQueryEngine(
                tiny_actor, nlist=8, nprobe=8, metrics=MetricsRegistry()
            ),
            metrics=MetricsRegistry(),
        )
        bodies = [
            {"modality": "word", "time": float(i % 24), "k": 4}
            for i in range(12)
        ]
        expected = [
            direct.dispatch([direct.validate_neighbors(b)])[0]
            for b in bodies
        ]
        results: list = [None] * len(bodies)
        barrier = threading.Barrier(len(bodies))

        def client(i):
            barrier.wait()
            results[i] = _post(
                f"{ann_server.url}/v1/neighbors", bodies[i]
            )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(bodies))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for (status, payload), want in zip(results, expected):
            assert status == 200
            assert payload == want

    def test_varz_reports_ann_state(self, ann_server):
        varz = _get_json(f"{ann_server.url}/varz")
        assert varz["serving"]["ann"] is True
        assert varz["ann"]["nlist"] == 8
        assert varz["ann"]["nprobe"] == 8
        assert set(varz["ann"]["indexes"]) == {
            "word",
            "time",
            "location",
        }

    def test_plain_server_reports_ann_disabled(self, tiny_actor):
        with QueryServer(
            tiny_actor, port=0, metrics=MetricsRegistry()
        ) as server:
            varz = _get_json(f"{server.url}/varz")
            assert varz["serving"]["ann"] is False
            assert "ann" not in varz
