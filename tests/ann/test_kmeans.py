"""Tests for the spherical k-means coarse quantizer.

The quantizer's contract: deterministic builds, unit-norm centroids,
labels identical to its own assignment kernel, and — the independent
cross-check — dot-product assignment over normalized rows agreeing with
the mean-shift module's KD-tree Euclidean assignment (on the unit sphere
cosine-nearest and Euclidean-nearest coincide).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann.kmeans import kmeans, kmeans_seeds, nearest_centroid
from repro.core.prediction import normalize_rows
from repro.hotspots.meanshift import assign_nearest


def clustered(n=400, dim=8, centers=5, seed=0, spread=0.05):
    """Tight unit-sphere bumps: the regime the quantizer must nail."""
    rng = np.random.default_rng(seed)
    bumps = normalize_rows(rng.normal(size=(centers, dim)))
    assign = rng.integers(0, centers, size=n)
    return normalize_rows(
        bumps[assign] + spread * rng.normal(size=(n, dim))
    )


class TestNearestCentroid:
    def test_matches_meanshift_kdtree_reference(self):
        """Dot-product argmax == KD-tree Euclidean nearest on the sphere."""
        points = clustered(seed=1)
        centroids = normalize_rows(
            np.random.default_rng(2).normal(size=(7, 8))
        )
        labels = nearest_centroid(points, centroids)
        reference, _counts = assign_nearest(points, centroids)
        np.testing.assert_array_equal(labels, reference)

    def test_chunking_is_invisible(self):
        points = clustered(n=101)
        centroids = points[:9]
        full = nearest_centroid(points, centroids)
        chunked = nearest_centroid(points, centroids, chunk_rows=7)
        np.testing.assert_array_equal(full, chunked)

    def test_ties_resolve_to_lowest_centroid(self):
        points = np.array([[1.0, 0.0]])
        centroids = np.array([[1.0, 0.0], [1.0, 0.0]])  # exact tie
        assert nearest_centroid(points, centroids).tolist() == [0]


class TestSeeds:
    def test_seeds_are_distinct_row_indices(self):
        points = clustered(n=50)
        seeds = kmeans_seeds(points, 6, np.random.default_rng(0))
        assert seeds.shape == (6,)
        assert ((seeds >= 0) & (seeds < 50)).all()
        # D^2 sampling zeroes chosen rows' mass, so no index repeats
        assert len(set(seeds.tolist())) == 6

    def test_duplicate_heavy_data_still_seeds(self):
        """All-identical rows: D^2 mass is zero, uniform fallback kicks in."""
        points = normalize_rows(np.ones((20, 4)))
        seeds = kmeans_seeds(points, 3, np.random.default_rng(1))
        assert seeds.shape == (3,)
        assert ((seeds >= 0) & (seeds < 20)).all()


class TestKMeans:
    def test_result_invariants(self):
        points = clustered()
        result = kmeans(points, 5, seed=3)
        assert result.modes.shape == (5, points.shape[1])
        np.testing.assert_allclose(
            np.linalg.norm(result.modes, axis=1), 1.0, atol=1e-12
        )
        assert result.labels.shape == (points.shape[0],)
        assert result.counts.sum() == points.shape[0]
        # ordered by descending support, labels self-consistent
        assert (np.diff(result.counts) <= 0).all()
        np.testing.assert_array_equal(
            result.labels, nearest_centroid(points, result.modes)
        )

    def test_deterministic_across_builds(self):
        points = clustered(seed=4)
        a = kmeans(points, 6, seed=11)
        b = kmeans(points, 6, seed=11)
        np.testing.assert_array_equal(a.modes, b.modes)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_n_clusters_clamped_to_n_points(self):
        points = clustered(n=3)
        result = kmeans(points, 10, seed=0)
        assert result.modes.shape[0] <= 3
        assert result.counts.sum() == 3

    def test_quantization_is_tight_on_clustered_data(self):
        """Assigned centroid nearly collinear with each point (cos > 0.9)."""
        points = clustered(n=600, centers=6, spread=0.03, seed=5)
        result = kmeans(points, 6, seed=6)
        cos = np.einsum(
            "nd,nd->n", points, result.modes[result.labels]
        )
        assert (cos > 0.9).mean() > 0.95

    def test_rejects_empty_and_bad_k(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 4)), 3)
        with pytest.raises(ValueError):
            kmeans(clustered(n=10), 0)
