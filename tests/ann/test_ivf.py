"""Tests for the IVF inverted-file index.

The load-bearing contracts: CSR list structure is a permutation
consistent with the quantizer labels; probing every cell is *bit-exact*
brute force under the engine's einsum kernel (including the stable
ascending-row tie rule); partial probes only ever return probed rows;
and every per-query result is independent of the surrounding batch (the
coalescing-parity property serving relies on).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import IVFIndex
from repro.ann.kmeans import nearest_centroid
from repro.core.prediction import normalize_rows, top_k


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(42)
    centers = normalize_rows(rng.normal(size=(6, 12)))
    points = centers[rng.integers(0, 6, size=500)]
    return normalize_rows(points + 0.02 * rng.normal(size=(500, 12)))


@pytest.fixture(scope="module")
def index(matrix):
    return IVFIndex(matrix, nlist=8, nprobe=2, seed=0)


@pytest.fixture(scope="module")
def queries(matrix):
    rng = np.random.default_rng(7)
    return normalize_rows(
        matrix[rng.integers(0, matrix.shape[0], size=12)]
        + 0.01 * rng.normal(size=(12, matrix.shape[1]))
    )


class TestBuild:
    def test_csr_structure_is_a_labeled_permutation(self, index, matrix):
        assert index.list_offsets[0] == 0
        assert index.list_offsets[-1] == index.n_rows
        assert (np.diff(index.list_offsets) >= 0).all()
        assert sorted(index.list_rows.tolist()) == list(range(500))
        labels = nearest_centroid(matrix, index.centroids)
        for cell in range(index.nlist):
            rows = index.list_rows[
                index.list_offsets[cell] : index.list_offsets[cell + 1]
            ]
            # ascending within each list (the cheap-merge tie invariant)
            assert (np.diff(rows) > 0).all() or rows.size <= 1
            assert (labels[rows] == cell).all()
        np.testing.assert_array_equal(
            index.list_sizes, np.bincount(labels, minlength=index.nlist)
        )

    def test_deterministic_and_keeps_reference_not_copy(self, matrix):
        a = IVFIndex(matrix, nlist=8, seed=3)
        b = IVFIndex(matrix, nlist=8, seed=3)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.list_rows, b.list_rows)
        assert a.matrix is matrix
        assert a.build_seconds > 0

    def test_nlist_clamped_to_rows(self):
        small = normalize_rows(np.random.default_rng(0).normal(size=(5, 4)))
        index = IVFIndex(small, nlist=64, nprobe=64)
        assert index.nlist <= 5
        assert index.nprobe <= index.nlist

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError, match="non-empty"):
            IVFIndex(np.empty((0, 8)))


class TestSearch:
    def test_full_probe_is_bit_exact_brute_force(self, index, matrix, queries):
        """nprobe == nlist degrades to the exact einsum scan, bitwise."""
        rows_list, scores_list, stats = index.search(
            queries, 10, nprobe=index.nlist
        )
        assert stats.probed_fraction == 1.0
        for i, q in enumerate(queries):
            exact = np.einsum("nd,d->n", matrix, q)
            order = top_k(exact, 10)
            np.testing.assert_array_equal(rows_list[i], order)
            np.testing.assert_array_equal(scores_list[i], exact[order])

    def test_duplicate_rows_keep_the_stable_tie_order(self):
        """Exact duplicate rows tie; both paths break ties by row id."""
        base = normalize_rows(
            np.random.default_rng(1).normal(size=(3, 6))
        )
        matrix = np.tile(base, (10, 1))  # 30 rows, each vector 10 times
        index = IVFIndex(matrix, nlist=3, seed=0)
        rows_list, _, _ = index.search(base, 8, nprobe=index.nlist)
        for i in range(3):
            exact = np.einsum("nd,d->n", matrix, base[i])
            np.testing.assert_array_equal(rows_list[i], top_k(exact, 8))

    def test_partial_probe_returns_only_probed_rows(self, index, queries):
        probes = index.probe_cells(queries, 2)
        rows_list, scores_list, stats = index.search(queries, 10, nprobe=2)
        assert stats.nprobe == 2
        assert 0 < stats.probed_fraction < 1
        for i in range(len(queries)):
            allowed = set(index.candidate_rows(probes[i]).tolist())
            assert set(rows_list[i].tolist()) <= allowed
            # scores are genuine cosines of the returned rows
            np.testing.assert_array_equal(
                scores_list[i],
                np.einsum(
                    "nd,d->n", index.matrix[rows_list[i]], queries[i]
                ),
            )
            # descending score order
            assert (np.diff(scores_list[i]) <= 1e-15).all()

    def test_each_query_independent_of_batch(self, index, queries):
        """Batch-of-1 == same query inside the full batch, bitwise."""
        batched_rows, batched_scores, _ = index.search(queries, 5, nprobe=2)
        for i in range(len(queries)):
            rows, scores, _ = index.search(queries[i : i + 1], 5, nprobe=2)
            np.testing.assert_array_equal(rows[0], batched_rows[i])
            np.testing.assert_array_equal(scores[0], batched_scores[i])

    def test_stats_accounting(self, index, queries):
        _, _, stats = index.search(queries, 3, nprobe=2)
        assert stats.n_queries == len(queries)
        assert stats.total_rows == len(queries) * index.n_rows
        probes = index.probe_cells(queries, 2)
        expected = sum(
            index.candidate_rows(probes[i]).shape[0]
            for i in range(len(queries))
        )
        assert stats.probed_rows == expected

    def test_k_edge_cases(self, index, queries):
        rows_list, scores_list, _ = index.search(queries[:1], 0)
        assert rows_list[0].size == 0 and scores_list[0].size == 0
        # k beyond the probed pool returns the whole pool, ranked
        rows_list, _, _ = index.search(queries[:1], 10_000, nprobe=1)
        probes = index.probe_cells(queries[:1], 1)
        assert rows_list[0].size == index.candidate_rows(probes[0]).size
        with pytest.raises(ValueError, match="k must be"):
            index.search(queries[:1], -1)

    def test_query_shape_and_nprobe_validation(self, index):
        with pytest.raises(ValueError, match="2-D"):
            index.search(np.zeros((2, 3)), 5)
        with pytest.raises(ValueError, match="nprobe"):
            index.search(np.zeros((1, index.dim)), 5, nprobe=0)
        # oversized nprobe clamps instead of failing
        _, _, stats = index.search(
            np.zeros((1, index.dim)), 5, nprobe=10_000
        )
        assert stats.nprobe == index.nlist
