"""Tests for IndexedQueryEngine: the ANN layer behind the engine seam.

Three contracts: (1) full-vocabulary retrieval through the index agrees
with the model's exact dense scan; (2) explicit-candidate ranking — the
Table-2 evaluation path — inherits the exact engine *unchanged*, so
``evaluate --ann`` is exact by construction; (3) the index is stamped
with the store's version counter and can never serve rows from before a
mutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import ANN_MODALITIES, IndexedQueryEngine
from repro.core import Actor, ActorConfig, QueryEngine

from repro.eval.mrr import make_queries
from repro.utils.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def engine(tiny_actor):
    """Full-coverage engine (nprobe == nlist): ANN == exact territory."""
    return IndexedQueryEngine(
        tiny_actor, nlist=8, nprobe=8, metrics=MetricsRegistry()
    )


@pytest.fixture(scope="module")
def mutable_actor(dataset, store_backend):
    """A cheap privately-owned actor (invalidation tests mutate it)."""
    config = ActorConfig(
        dim=8,
        epochs=1,
        line_samples=1_000,
        batches_per_epoch=2,
        seed=13,
        store_backend=store_backend,
    )
    return Actor(config).fit(dataset.train)


class TestNeighborParity:
    @pytest.mark.parametrize("modality", ANN_MODALITIES)
    def test_full_probe_matches_exact_dense_scan(
        self, tiny_actor, engine, modality
    ):
        cache = tiny_actor.modality_cache(modality)
        rng = np.random.default_rng(3)
        for row in rng.integers(0, len(cache.keys), size=5):
            probe = np.asarray(cache.matrix[row], dtype=float)
            ann = engine.neighbors(probe, modality, 5)
            exact = tiny_actor.neighbors(probe, modality, 5)
            assert [k for k, _ in ann] == [k for k, _ in exact]
            np.testing.assert_allclose(
                [s for _, s in ann], [s for _, s in exact], rtol=1e-12
            )

    def test_search_batch_equals_singles(self, tiny_actor, engine):
        cache = tiny_actor.modality_cache("word")
        queries = np.asarray(cache.matrix[:6], dtype=float)
        batched = engine.search("word", queries, 4)
        for i in range(6):
            assert engine.search("word", queries[i : i + 1], 4)[0] == (
                batched[i]
            )

    def test_unindexed_modality_falls_back_exact(self, tiny_actor):
        narrow = IndexedQueryEngine(
            tiny_actor, nlist=4, ann_modalities=("word",)
        )
        cache = tiny_actor.modality_cache("time")
        probe = np.asarray(cache.matrix[0], dtype=float)
        assert narrow.neighbors(probe, "time", 3) == tiny_actor.neighbors(
            probe, "time", 3
        )
        with pytest.raises(ValueError, match="not ANN-indexed"):
            narrow.index_for("time")

    def test_user_modality_always_exact(self, tiny_actor, engine):
        cache = tiny_actor.modality_cache("user")
        probe = np.asarray(cache.matrix[0], dtype=float)
        assert engine.neighbors(probe, "user", 3) == tiny_actor.neighbors(
            probe, "user", 3
        )

    def test_rejects_unknown_ann_modality(self, tiny_actor):
        with pytest.raises(ValueError, match="ann_modalities"):
            IndexedQueryEngine(tiny_actor, ann_modalities=("user",))
        with pytest.raises(ValueError, match="nlist"):
            IndexedQueryEngine(tiny_actor, nlist=0)


class TestExactFallbackMatrix:
    """Explicit-candidate ranking is the exact engine, bit for bit."""

    @pytest.mark.parametrize("target", ("text", "location", "time"))
    def test_rank_batch_bit_identical_to_exact_engine(
        self, tiny_actor, engine, dataset, target
    ):
        queries = make_queries(
            dataset.test, target, n_noise=8, max_queries=40, seed=1
        )
        exact = QueryEngine(tiny_actor, metrics=MetricsRegistry())
        assert engine.rank_batch(queries).tolist() == (
            exact.rank_batch(queries).tolist()
        )

    def test_table2_mrr_identical_under_ann(
        self, tiny_actor, engine, dataset
    ):
        """The ``repro evaluate --ann`` contract at test scale."""
        for target in ("text", "location", "time"):
            queries = make_queries(
                dataset.test, target, n_noise=8, max_queries=30, seed=2
            )
            exact = QueryEngine(tiny_actor, metrics=MetricsRegistry())
            assert engine.mean_reciprocal_rank(queries) == (
                exact.mean_reciprocal_rank(queries)
            )


class TestInvalidation:
    def test_index_cached_while_version_stands_still(self, engine):
        first = engine.index_for("word")
        assert engine.index_for("word") is first

    def test_bump_marks_stale_and_rebuilds(self, mutable_actor):
        engine = IndexedQueryEngine(
            mutable_actor, nlist=4, metrics=MetricsRegistry()
        )
        first = engine.index_for("word")
        assert engine.ann_status()["indexes"]["word"]["stale"] is False
        mutable_actor.store.bump()
        assert engine.ann_status()["indexes"]["word"]["stale"] is True
        rebuilt = engine.index_for("word")
        assert rebuilt is not first
        assert engine.ann_status()["indexes"]["word"]["stale"] is False

    def test_inplace_burst_is_served_fresh(self, mutable_actor):
        """A post-burst query sees the moved rows, not the old index."""
        engine = IndexedQueryEngine(
            mutable_actor, nlist=4, nprobe=4, metrics=MetricsRegistry()
        )
        cache = mutable_actor.modality_cache("word")
        target_key = cache.keys[7]
        engine.index_for("word")  # build against the pre-burst rows
        # SGD-style in-place scatter: move row 7 to a known direction.
        direction = np.zeros(mutable_actor.center.shape[1])
        direction[0] = 1.0
        _keys, rows = mutable_actor.modality_rows("word")
        mutable_actor.center[rows[7]] = 100.0 * direction
        mutable_actor.invalidate_query_cache()
        got = engine.neighbors(direction, "word", 1)
        assert got[0][0] == target_key
        assert engine.metrics.counter("ann.index_builds").value >= 2

    def test_ann_status_shape(self, engine):
        status = engine.ann_status()
        assert status["nlist"] == 8
        assert status["nprobe"] == 8
        assert status["modalities"] == list(ANN_MODALITIES)
        for entry in status["indexes"].values():
            assert set(entry) == {"rows", "nlist", "build_seconds", "stale"}
