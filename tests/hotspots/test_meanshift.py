"""Tests for mean-shift mode seeking (Euclidean and circular)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hotspots import circular_mean_shift, mean_shift


def two_blobs(rng, centers=((0.0, 0.0), (10.0, 10.0)), n=150, sigma=0.3):
    points = []
    for c in centers:
        points.append(rng.normal(c, sigma, size=(n, 2)))
    return np.concatenate(points)


class TestMeanShift:
    def test_finds_two_well_separated_modes(self):
        rng = np.random.default_rng(0)
        result = mean_shift(two_blobs(rng), bandwidth=1.0)
        assert result.n_modes == 2
        sorted_modes = result.modes[np.argsort(result.modes[:, 0])]
        np.testing.assert_allclose(sorted_modes[0], [0, 0], atol=0.3)
        np.testing.assert_allclose(sorted_modes[1], [10, 10], atol=0.3)

    def test_labels_partition_points(self):
        rng = np.random.default_rng(1)
        points = two_blobs(rng)
        result = mean_shift(points, bandwidth=1.0)
        assert result.labels.shape == (points.shape[0],)
        assert set(result.labels) == {0, 1}
        assert result.counts.sum() == points.shape[0]

    def test_modes_ordered_by_support(self):
        rng = np.random.default_rng(2)
        points = np.concatenate(
            [
                rng.normal((0, 0), 0.2, size=(300, 2)),
                rng.normal((8, 8), 0.2, size=(50, 2)),
            ]
        )
        result = mean_shift(points, bandwidth=1.0)
        assert result.counts[0] >= result.counts[1]
        np.testing.assert_allclose(result.modes[0], [0, 0], atol=0.3)

    def test_min_support_drops_noise_modes(self):
        rng = np.random.default_rng(3)
        points = np.concatenate(
            [rng.normal((0, 0), 0.2, size=(200, 2)), [[50.0, 50.0]]]
        )
        lenient = mean_shift(points, bandwidth=1.0, min_support=1)
        strict = mean_shift(points, bandwidth=1.0, min_support=5)
        assert strict.n_modes < lenient.n_modes

    def test_1d_input_accepted(self):
        rng = np.random.default_rng(4)
        values = np.concatenate(
            [rng.normal(0, 0.1, 100), rng.normal(5, 0.1, 100)]
        )
        result = mean_shift(values, bandwidth=0.5)
        assert result.n_modes == 2
        assert result.modes.shape == (2, 1)

    def test_single_point(self):
        result = mean_shift(np.asarray([[1.0, 2.0]]), bandwidth=1.0)
        assert result.n_modes == 1
        np.testing.assert_allclose(result.modes[0], [1.0, 2.0], atol=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            mean_shift(np.empty((0, 2)), bandwidth=1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            mean_shift(np.zeros((3, 2)), bandwidth=0.0)

    def test_modes_separated_by_at_least_bandwidth(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 20, size=(400, 2))
        result = mean_shift(points, bandwidth=2.0)
        for i in range(result.n_modes):
            for j in range(i + 1, result.n_modes):
                assert (
                    np.linalg.norm(result.modes[i] - result.modes[j]) >= 2.0
                )

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(5, 60),
        bandwidth=st.floats(0.5, 3.0),
        seed=st.integers(0, 1000),
    )
    def test_property_every_point_gets_a_label(self, n, bandwidth, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(n, 2))
        result = mean_shift(points, bandwidth=bandwidth)
        assert result.labels.shape == (n,)
        assert (result.labels >= 0).all()
        assert (result.labels < result.n_modes).all()
        assert result.counts.sum() == n


class TestCircularMeanShift:
    def test_mode_across_midnight(self):
        """23:30 and 00:30 data must merge into one mode near midnight."""
        rng = np.random.default_rng(0)
        hours = np.concatenate(
            [rng.normal(23.5, 0.2, 100), rng.normal(0.5, 0.2, 100)]
        ) % 24.0
        result = circular_mean_shift(hours, bandwidth=1.0)
        assert result.n_modes == 1
        mode = result.modes[0, 0]
        circ_dist = min(abs(mode - 0.0), 24.0 - abs(mode - 0.0))
        assert circ_dist < 0.5

    def test_two_opposite_modes(self):
        rng = np.random.default_rng(1)
        hours = np.concatenate(
            [rng.normal(6.0, 0.3, 100), rng.normal(18.0, 0.3, 100)]
        )
        result = circular_mean_shift(hours, bandwidth=1.0)
        assert result.n_modes == 2
        modes = sorted(result.modes.ravel())
        assert modes[0] == pytest.approx(6.0, abs=0.4)
        assert modes[1] == pytest.approx(18.0, abs=0.4)

    def test_modes_within_period(self):
        rng = np.random.default_rng(2)
        result = circular_mean_shift(
            rng.uniform(0, 24, 200), bandwidth=2.0
        )
        assert ((result.modes >= 0) & (result.modes < 24)).all()

    def test_custom_period(self):
        rng = np.random.default_rng(3)
        values = rng.normal(3.0, 0.1, 50) % 7.0
        result = circular_mean_shift(values, bandwidth=0.5, period=7.0)
        assert result.modes[0, 0] == pytest.approx(3.0, abs=0.3)

    def test_rejects_bandwidth_over_half_period(self):
        with pytest.raises(ValueError, match="period/2"):
            circular_mean_shift(np.asarray([1.0, 2.0]), bandwidth=13.0)

    def test_values_wrapped_into_period(self):
        result_wrapped = circular_mean_shift(
            np.asarray([25.0, 25.1, 25.2]), bandwidth=1.0
        )
        result_plain = circular_mean_shift(
            np.asarray([1.0, 1.1, 1.2]), bandwidth=1.0
        )
        np.testing.assert_allclose(
            result_wrapped.modes, result_plain.modes, atol=1e-6
        )
