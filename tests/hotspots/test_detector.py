"""Tests for the HotspotDetector front-end."""

import numpy as np
import pytest

from repro.data import Corpus, Record
from repro.hotspots import HotspotDetector


def clustered_corpus(seed=0, n_per=80):
    """Records around two venues and two daily peaks."""
    rng = np.random.default_rng(seed)
    records = []
    rid = 0
    for center, hour in (((2.0, 2.0), 9.0), ((12.0, 12.0), 21.0)):
        for _ in range(n_per):
            loc = rng.normal(center, 0.15, size=2)
            t = float(rng.normal(hour, 0.4) % 24.0) + 24.0 * rng.integers(0, 5)
            records.append(
                Record(
                    record_id=rid,
                    user=f"u{rid % 7}",
                    timestamp=float(t),
                    location=(float(loc[0]), float(loc[1])),
                    words=("w",),
                )
            )
            rid += 1
    return Corpus(records=records)


class TestFit:
    @pytest.fixture(scope="class")
    def detector(self):
        return HotspotDetector(
            spatial_bandwidth=1.0, temporal_bandwidth=1.0, min_support=3
        ).fit(clustered_corpus())

    def test_finds_two_spatial_hotspots(self, detector):
        assert detector.n_spatial == 2
        modes = detector.spatial_hotspots[
            np.argsort(detector.spatial_hotspots[:, 0])
        ]
        np.testing.assert_allclose(modes[0], [2, 2], atol=0.3)
        np.testing.assert_allclose(modes[1], [12, 12], atol=0.3)

    def test_finds_two_temporal_hotspots(self, detector):
        assert detector.n_temporal == 2
        hours = sorted(detector.temporal_hotspots)
        assert hours[0] == pytest.approx(9.0, abs=0.5)
        assert hours[1] == pytest.approx(21.0, abs=0.5)

    def test_unfitted_access_raises(self):
        detector = HotspotDetector()
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = detector.spatial_hotspots
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = detector.temporal_hotspots
        with pytest.raises(RuntimeError, match="not fitted"):
            detector.assign_spatial(np.zeros((1, 2)))


class TestAssign:
    @pytest.fixture(scope="class")
    def detector(self):
        return HotspotDetector(
            spatial_bandwidth=1.0, temporal_bandwidth=1.0
        ).fit(clustered_corpus())

    def test_assign_spatial_nearest(self, detector):
        idx = detector.assign_spatial(np.asarray([[2.1, 1.9], [11.8, 12.1]]))
        modes = detector.spatial_hotspots
        assert np.linalg.norm(modes[idx[0]] - [2, 2]) < 0.5
        assert np.linalg.norm(modes[idx[1]] - [12, 12]) < 0.5

    def test_assign_temporal_uses_circular_distance(self, detector):
        # An hour just before midnight must snap to the 21:00 hotspot, not
        # wrap incorrectly.
        idx = detector.assign_temporal(np.asarray([23.5]))
        assert detector.temporal_hotspots[idx[0]] == pytest.approx(21.0, abs=0.5)

    def test_assign_temporal_handles_absolute_timestamps(self, detector):
        same_hour = detector.assign_temporal(np.asarray([9.0, 33.0, 105.0]))
        assert len(set(same_hour.tolist())) == 1

    def test_assign_record(self, detector):
        s, t = detector.assign_record((2.0, 2.0), 9.2)
        assert np.linalg.norm(detector.spatial_hotspots[s] - [2, 2]) < 0.5
        assert detector.temporal_hotspots[t] == pytest.approx(9.0, abs=0.5)

    def test_new_points_far_away_still_assigned(self, detector):
        idx = detector.assign_spatial(np.asarray([[100.0, 100.0]]))
        assert 0 <= idx[0] < detector.n_spatial


class TestValidation:
    def test_rejects_bad_bandwidths(self):
        with pytest.raises(ValueError):
            HotspotDetector(spatial_bandwidth=0)
        with pytest.raises(ValueError):
            HotspotDetector(temporal_bandwidth=-1)

    def test_fit_arrays_shape_checks(self):
        detector = HotspotDetector()
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            detector.fit_arrays(np.zeros((5, 3)), np.zeros(5))
        with pytest.raises(ValueError, match="equal length"):
            detector.fit_arrays(np.zeros((5, 2)), np.zeros(4))

    def test_min_support_reduces_hotspots(self):
        corpus = clustered_corpus(n_per=30)
        few = HotspotDetector(
            spatial_bandwidth=0.3, min_support=25
        ).fit(corpus)
        many = HotspotDetector(
            spatial_bandwidth=0.3, min_support=1
        ).fit(corpus)
        assert few.n_spatial <= many.n_spatial
