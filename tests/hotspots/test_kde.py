"""Tests for the Epanechnikov kernel density estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hotspots import EpanechnikovKDE, epanechnikov


class TestKernel:
    def test_zero_offset_is_maximum(self):
        values = epanechnikov(np.asarray([[0.0], [0.5], [0.9]]))
        assert values[0] == max(values)

    def test_vanishes_outside_unit_ball(self):
        values = epanechnikov(np.asarray([[1.0], [1.5], [-2.0]]))
        np.testing.assert_array_equal(values, 0.0)

    def test_1d_normalizer(self):
        # c_1 = 3/4: K(0) = 0.75
        assert epanechnikov(np.asarray([[0.0]]))[0] == pytest.approx(0.75)

    def test_2d_normalizer(self):
        # c_2 = 2/pi
        assert epanechnikov(np.zeros((1, 2)))[0] == pytest.approx(2.0 / np.pi)

    def test_symmetry(self):
        u = np.asarray([[0.3], [-0.3]])
        values = epanechnikov(u)
        assert values[0] == pytest.approx(values[1])

    def test_1d_integral_is_one(self):
        grid = np.linspace(-1.5, 1.5, 3001)[:, None]
        values = epanechnikov(grid)
        integral = np.trapezoid(values, grid.ravel())
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_flat_length2_vector_means_two_scalar_offsets(self):
        """Regression: [a, b] is two 1-D offsets, not one 2-D point."""
        values = epanechnikov(np.asarray([0.0, 0.5]))
        assert values.shape == (2,)
        np.testing.assert_allclose(values, 0.75 * (1.0 - np.asarray([0.0, 0.25])))

    def test_flat_length3_vector_means_three_scalar_offsets(self):
        values = epanechnikov(np.asarray([0.0, 0.5, 2.0]))
        expected = epanechnikov(np.asarray([[0.0], [0.5], [2.0]]))
        np.testing.assert_array_equal(values, expected)

    def test_flat_vector_matches_column_for_every_length(self):
        rng = np.random.default_rng(7)
        for n in range(1, 6):
            flat = rng.uniform(-2, 2, size=n)
            np.testing.assert_array_equal(
                epanechnikov(flat), epanechnikov(flat[:, None])
            )

    def test_d_hint_reshapes_flat_vector(self):
        point = np.asarray([0.3, 0.4])
        single = epanechnikov(point, d=2)
        assert single.shape == (1,)
        np.testing.assert_array_equal(single, epanechnikov(point[None, :]))

    def test_d_hint_rejects_indivisible_flat_vector(self):
        with pytest.raises(ValueError, match="not divisible"):
            epanechnikov(np.asarray([0.0, 0.5, 1.0]), d=2)

    def test_d_hint_rejects_mismatched_2d_input(self):
        with pytest.raises(ValueError, match="d=3"):
            epanechnikov(np.zeros((4, 2)), d=3)

    def test_scalar_input_is_single_1d_offset(self):
        assert epanechnikov(0.0)[0] == pytest.approx(0.75)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match="shape"):
            epanechnikov(np.zeros((2, 2, 2)))


class TestEpanechnikovKDE:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            EpanechnikovKDE(0.0)

    def test_density_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            EpanechnikovKDE(1.0).density(np.zeros(1))

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            EpanechnikovKDE(1.0).fit(np.empty((0, 2)))

    def test_rejects_nonfinite_points(self):
        with pytest.raises(ValueError, match="non-finite"):
            EpanechnikovKDE(1.0).fit(np.asarray([[0.0], [np.nan]]))

    def test_density_peaks_at_data_cluster(self):
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [rng.normal(0, 0.2, size=(200, 1)), rng.normal(5, 0.2, size=(50, 1))]
        )
        kde = EpanechnikovKDE(0.5).fit(points)
        dens = kde.density(np.asarray([0.0, 2.5, 5.0]))
        assert dens[0] > dens[2] > dens[1]

    def test_1d_density_integrates_to_one(self):
        rng = np.random.default_rng(1)
        kde = EpanechnikovKDE(0.7).fit(rng.normal(0, 1, size=100))
        grid = np.linspace(-5, 5, 2001)
        integral = np.trapezoid(kde.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-2)

    def test_2d_queries(self):
        rng = np.random.default_rng(2)
        points = rng.normal(0, 1, size=(300, 2))
        kde = EpanechnikovKDE(1.0).fit(points)
        dens = kde.density(np.asarray([[0.0, 0.0], [10.0, 10.0]]))
        assert dens[0] > 0
        assert dens[1] == 0.0  # far outside every kernel support

    def test_single_2d_query_vector(self):
        kde = EpanechnikovKDE(1.0).fit(np.zeros((10, 2)))
        dens = kde.density(np.asarray([0.0, 0.0]))
        assert dens.shape == (1,)
        assert dens[0] > 0

    def test_dimension_mismatch_raises(self):
        kde = EpanechnikovKDE(1.0).fit(np.zeros((5, 2)))
        with pytest.raises(ValueError, match="dimension"):
            kde.density(np.zeros((3, 3)))

    def test_chunked_evaluation_matches_direct(self):
        """Memory chunking must not change results."""
        rng = np.random.default_rng(3)
        points = rng.normal(0, 1, size=(50, 2))
        kde = EpanechnikovKDE(1.0).fit(points)
        queries = rng.normal(0, 1, size=(40, 2))
        expected = np.asarray(
            [kde.density(q[None, :])[0] for q in queries]
        )
        np.testing.assert_allclose(kde.density(queries), expected)

    @settings(max_examples=25, deadline=None)
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.just(2)),
            elements=st.floats(-10, 10),
        ),
        bandwidth=st.floats(0.1, 5.0),
    )
    def test_property_density_nonnegative(self, points, bandwidth):
        kde = EpanechnikovKDE(bandwidth).fit(points)
        dens = kde.density(points)
        assert (dens >= 0).all()
        assert np.isfinite(dens).all()
