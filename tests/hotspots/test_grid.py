"""Tests for the grid-discretization alternative detector."""

import numpy as np
import pytest

from repro.hotspots.grid import GridDetector
from tests.hotspots.test_detector import clustered_corpus


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GridDetector(cell_km=0)
        with pytest.raises(ValueError):
            GridDetector(bucket_hours=-1)
        with pytest.raises(ValueError, match="period"):
            GridDetector(bucket_hours=30.0)

    def test_unfitted_access_raises(self):
        detector = GridDetector()
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = detector.spatial_hotspots
        with pytest.raises(RuntimeError, match="not fitted"):
            detector.assign_spatial(np.zeros((1, 2)))


class TestFit:
    @pytest.fixture(scope="class")
    def detector(self):
        return GridDetector(cell_km=1.0, bucket_hours=1.0, min_support=3).fit(
            clustered_corpus()
        )

    def test_occupied_cells_only(self, detector):
        """Two tight clusters -> few occupied cells, not a full grid."""
        assert 1 <= detector.n_spatial <= 8

    def test_cell_centres_near_clusters(self, detector):
        modes = detector.spatial_hotspots
        d_a = np.linalg.norm(modes - [2, 2], axis=1).min()
        d_b = np.linalg.norm(modes - [12, 12], axis=1).min()
        assert d_a < 1.0 and d_b < 1.0

    def test_temporal_buckets_near_peaks(self, detector):
        hours = detector.temporal_hotspots
        assert any(abs(h - 9.0) <= 1.0 for h in hours)
        assert any(abs(h - 21.0) <= 1.0 for h in hours)

    def test_assign_roundtrip(self, detector):
        s, t = detector.assign_record((2.0, 2.0), 9.2)
        assert np.linalg.norm(detector.spatial_hotspots[s] - [2, 2]) < 1.0
        assert abs(detector.temporal_hotspots[t] - 9.0) < 1.5

    def test_assign_temporal_circular(self, detector):
        idx_a = detector.assign_temporal(np.asarray([9.0]))
        idx_b = detector.assign_temporal(np.asarray([33.0]))  # same hour
        assert idx_a[0] == idx_b[0]

    def test_min_support_drops_sparse_cells(self):
        corpus = clustered_corpus(n_per=50)
        dense = GridDetector(cell_km=0.2, min_support=1).fit(corpus)
        pruned = GridDetector(cell_km=0.2, min_support=10).fit(corpus)
        assert pruned.n_spatial <= dense.n_spatial

    def test_validation_of_arrays(self):
        detector = GridDetector()
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            detector.fit_arrays(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError, match="equal length"):
            detector.fit_arrays(np.zeros((3, 2)), np.zeros(2))


class TestInterchangeability:
    def test_graph_builder_accepts_grid_detector(self):
        """GridDetector is a drop-in replacement in the ingest pipeline."""
        from repro.data import Vocabulary
        from repro.graphs import GraphBuilder

        corpus = clustered_corpus()
        built = GraphBuilder(
            detector=GridDetector(cell_km=1.0, min_support=1),
            vocab=Vocabulary(min_count=1),
        ).build(corpus)
        summary = built.activity.summary()
        assert summary["n_spatial"] >= 1
        assert summary["n_temporal"] >= 1
        assert summary["n_edges"] > 0
