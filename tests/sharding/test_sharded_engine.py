"""Scatter-gather engines: bit-exact merge parity and stage accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QueryEngine
from repro.sharding import (
    ShardedIndexedQueryEngine,
    ShardedQueryEngine,
    merge_topk,
)

MODALITIES = ("word", "time", "location", "user")


class TestMergeTopk:
    def test_orders_like_the_exact_scan(self):
        positions = np.array([4, 0, 9, 2, 7])
        scores = np.array([0.5, 0.9, 0.5, 0.1, 0.9])
        # Descending score, ties by ascending position.
        assert merge_topk(positions, scores, 4).tolist() == [1, 4, 0, 2]

    def test_nans_sort_last(self):
        positions = np.array([0, 1, 2])
        scores = np.array([np.nan, 0.2, 0.8])
        assert merge_topk(positions, scores, 3).tolist() == [2, 1, 0]

    def test_k_clamped_to_candidates(self):
        sel = merge_topk(np.array([1, 0]), np.array([0.1, 0.2]), 10)
        assert sel.tolist() == [1, 0]


class TestExactParity:
    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_bit_exact_across_modalities(self, tiny_actor, n_shards):
        exact = QueryEngine(tiny_actor)
        sharded = ShardedQueryEngine(tiny_actor, n_shards=n_shards)
        rng = np.random.default_rng(99)
        for modality in MODALITIES:
            for _ in range(5):
                query = rng.standard_normal(tiny_actor.dim)
                assert sharded.neighbors(query, modality, 10) == (
                    exact.neighbors(query, modality, 10)
                )

    def test_zero_query_matches(self, tiny_actor):
        exact = QueryEngine(tiny_actor)
        sharded = ShardedQueryEngine(tiny_actor, n_shards=4)
        zero = np.zeros(tiny_actor.dim)
        for modality in MODALITIES:
            assert sharded.neighbors(zero, modality, 7) == (
                exact.neighbors(zero, modality, 7)
            )

    def test_auto_detects_store_sharding(self, tiny_actor, store_shards):
        engine = ShardedQueryEngine(tiny_actor)
        assert engine.n_shards == store_shards


class TestStages:
    def test_scatter_and_merge_are_timed(self, tiny_actor):
        engine = ShardedQueryEngine(tiny_actor, n_shards=4)
        with engine.collect_stages() as stages:
            engine.neighbors(np.ones(tiny_actor.dim), "word", 5)
        assert stages["scatter"] > 0
        assert stages["merge"] > 0
        assert stages["values"]["shards.fanout"] == 4

    def test_shard_status_reports_replicas(self, tiny_actor):
        engine = ShardedQueryEngine(tiny_actor, n_shards=3)
        engine.neighbors(np.ones(tiny_actor.dim), "word", 5)
        status = engine.shard_status()
        assert status["n_shards"] == 3
        assert status["partitioner"] == "splitmix64"
        word = status["modalities"]["word"]
        assert sum(word["rows_per_shard"]) == len(
            tiny_actor.modality_cache("word").keys
        )
        assert word["stale"] is False


class TestIndexedParity:
    def test_full_coverage_probe_matches_exact(self, tiny_actor):
        # nprobe == nlist scores every row on every shard, so the merged
        # ranking carries the same keys as the exact engines (tie order
        # inside the IVF gather may differ, so scores are compared
        # numerically rather than by rank).
        exact = QueryEngine(tiny_actor)
        sharded = ShardedIndexedQueryEngine(
            tiny_actor, n_shards=3, nlist=8, nprobe=8
        )
        rng = np.random.default_rng(5)
        for modality in ("word", "time", "location"):
            query = rng.standard_normal(tiny_actor.dim)
            got = sharded.neighbors(query, modality, 8)
            want = exact.neighbors(query, modality, 8)
            assert {k for k, _ in got} == {k for k, _ in want}
            np.testing.assert_allclose(
                sorted(s for _, s in got),
                sorted(s for _, s in want),
                rtol=1e-12,
            )

    def test_non_indexed_modality_uses_exact_scatter_gather(
        self, tiny_actor
    ):
        exact = QueryEngine(tiny_actor)
        sharded = ShardedIndexedQueryEngine(
            tiny_actor, n_shards=4, nlist=8, nprobe=2
        )
        query = np.full(tiny_actor.dim, 0.25)
        assert sharded.neighbors(query, "user", 6) == exact.neighbors(
            query, "user", 6
        )

    def test_empty_shards_get_no_index(self, tiny_actor):
        # "time" has ~13 keys over 8 shards: some shards own no rows and
        # must contribute nothing (None index) instead of crashing.
        sharded = ShardedIndexedQueryEngine(
            tiny_actor, n_shards=8, nlist=4, nprobe=4
        )
        indexes = sharded.indexes_for("time")
        assert len(indexes) == 8
        status = sharded.ann_status()
        rows = [s["rows"] for s in status["indexes"]["time"]["shards"]]
        assert sum(rows) == len(tiny_actor.modality_cache("time").keys)
        exact = QueryEngine(tiny_actor)
        query = np.ones(tiny_actor.dim)
        got = sharded.neighbors(query, "time", 5)
        want = exact.neighbors(query, "time", 5)
        assert {k for k, _ in got} == {k for k, _ in want}

    def test_rejects_unknown_ann_modality(self, tiny_actor):
        engine = ShardedIndexedQueryEngine(tiny_actor, n_shards=2)
        with pytest.raises(ValueError, match="not ANN-indexed"):
            engine.indexes_for("user")
