"""CLI surface of the sharding layer: --shards flags and the fleet guard."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import Actor
from repro.sharding import ShardedStore


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-shards") / "corpus.jsonl"
    code = main(
        [
            "generate",
            "--preset", "utgeo2011",
            "--n-records", "600",
            "--seed", "9",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def sharded_model_path(tmp_path_factory, corpus_path):
    path = tmp_path_factory.mktemp("cli-shards-model") / "actor.pkl"
    code = main(
        [
            "train",
            "--corpus", str(corpus_path),
            "--out", str(path),
            "--dim", "8",
            "--epochs", "1",
            "--shards", "2",
        ]
    )
    assert code == 0
    return path


class TestTrain:
    def test_trains_onto_a_sharded_store(self, sharded_model_path):
        model = Actor.load(sharded_model_path)
        assert isinstance(model.store, ShardedStore)
        assert model.store.n_shards == 2


class TestExport:
    def test_exports_sharded_bundle(self, sharded_model_path, tmp_path):
        out = tmp_path / "bundle"
        code = main(
            [
                "export",
                "--model", str(sharded_model_path),
                "--out", str(out),
                "--shards", "4",
                "--fleet-size", "2",
            ]
        )
        assert code == 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["sharding"]["n_shards"] == 4

    def test_indivisible_fleet_exits_2_with_guidance(
        self, sharded_model_path, tmp_path, capsys
    ):
        code = main(
            [
                "export",
                "--model", str(sharded_model_path),
                "--out", str(tmp_path / "bundle"),
                "--shards", "6",
                "--fleet-size", "4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "does not divide evenly" in captured.err
        assert "multiple of 4" in captured.err
        assert not (tmp_path / "bundle").exists()

    def test_nonpositive_shards_exits_2(
        self, sharded_model_path, tmp_path, capsys
    ):
        code = main(
            [
                "export",
                "--model", str(sharded_model_path),
                "--out", str(tmp_path / "bundle"),
                "--shards", "0",
            ]
        )
        assert code == 2
        assert "shards" in capsys.readouterr().err


class TestServe:
    def test_serves_sharded_bundle_with_shard_varz(
        self, sharded_model_path, tmp_path
    ):
        import urllib.request

        out = tmp_path / "bundle"
        assert main(
            [
                "export",
                "--model", str(sharded_model_path),
                "--out", str(out),
                "--shards", "2",
            ]
        ) == 0

        from repro.core import load_bundle
        from repro.serving import QueryServer

        model = load_bundle(out, mmap=True)
        server = QueryServer(model, port=0)
        assert server.shards_for(model) == 2
        with server:
            with urllib.request.urlopen(
                server.url + "/varz", timeout=10
            ) as resp:
                varz = json.loads(resp.read())
        assert varz["sharding"]["n_shards"] == 2
        assert varz["sharding"]["partitioner"] == "splitmix64"
