"""Property suite for the hash partitioner and the composite version.

Three invariants carry the whole sharding design, so each is checked
property-based rather than by example:

* **Growth stability** — a vertex's shard depends only on ``(id, K)``,
  never on how many vertices exist, so growing the store never migrates
  existing rows.
* **Map round-trip** — the global↔local id maps derived by
  ``build_maps`` invert each other exactly, and incremental
  ``extend_maps`` agrees with a from-scratch rebuild.
* **Composite version monotonicity** — any interleaving of per-shard
  mutations advances :attr:`ShardedStore.version` strictly, so one
  stamp invalidates every downstream cache.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import HashPartitioner, ShardedStore, splitmix64

shard_counts = st.integers(min_value=1, max_value=8)


class TestSplitmix64:
    @given(ids=st.lists(st.integers(0, 2**62), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_and_uint64(self, ids):
        mixed = splitmix64(np.asarray(ids, dtype=np.uint64))
        again = splitmix64(np.asarray(ids, dtype=np.uint64))
        assert mixed.dtype == np.uint64
        assert np.array_equal(mixed, again)

    def test_mixes_sequential_ids(self):
        # Sequential ids must not land on sequential shards (a plain
        # ``id % K`` would correlate hot id ranges with single shards).
        assign = HashPartitioner(4).shard_of(np.arange(64))
        assert len(set(assign.tolist())) == 4
        assert not np.array_equal(assign, np.arange(64) % 4)


class TestGrowthStability:
    @given(
        n_shards=shard_counts,
        n_rows=st.integers(0, 200),
        extra=st.integers(0, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_assignment_is_stable_under_growth(self, n_shards, n_rows, extra):
        partitioner = HashPartitioner(n_shards)
        before, _, _ = partitioner.build_maps(n_rows)
        after, _, _ = partitioner.build_maps(n_rows + extra)
        assert np.array_equal(after[:n_rows], before)

    @given(
        n_shards=shard_counts,
        n_rows=st.integers(0, 150),
        extra=st.integers(0, 150),
    )
    @settings(max_examples=60, deadline=None)
    def test_extend_maps_equals_rebuild(self, n_shards, n_rows, extra):
        partitioner = HashPartitioner(n_shards)
        base = partitioner.build_maps(n_rows)
        extended = partitioner.extend_maps(*base, extra)
        rebuilt = partitioner.build_maps(n_rows + extra)
        assert np.array_equal(extended[0], rebuilt[0])
        assert np.array_equal(extended[1], rebuilt[1])
        for ext_rows, new_rows in zip(extended[2], rebuilt[2]):
            assert np.array_equal(ext_rows, new_rows)


class TestMapRoundTrip:
    @given(n_shards=shard_counts, n_rows=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_global_local_round_trip(self, n_shards, n_rows):
        shard_of, local_of, shard_rows = HashPartitioner(
            n_shards
        ).build_maps(n_rows)
        # Every global id maps to (shard, local) and back to itself.
        for g in range(n_rows):
            assert shard_rows[shard_of[g]][local_of[g]] == g
        # The per-shard row lists partition the id space, in ascending
        # order per shard (the v3 sidecar write/read order).
        flat = np.concatenate(shard_rows) if n_rows else np.empty(0)
        assert sorted(flat.tolist()) == list(range(n_rows))
        for rows in shard_rows:
            assert np.array_equal(rows, np.sort(rows))


mutations = st.lists(
    st.one_of(
        st.tuples(st.just("bump"), st.just(0)),
        st.tuples(st.just("child_bump"), st.integers(0, 3)),
        st.tuples(st.just("put_row"), st.integers(0, 11)),
        st.tuples(st.just("set_matrix"), st.just(0)),
        st.tuples(st.just("grow"), st.integers(1, 3)),
    ),
    min_size=1,
    max_size=12,
)


class TestCompositeVersion:
    @given(ops=mutations)
    @settings(max_examples=40, deadline=None)
    def test_strictly_monotone_under_interleaved_mutations(self, ops):
        rng = np.random.default_rng(7)
        store = ShardedStore(4)
        store.set_matrix("center", rng.normal(size=(12, 4)))
        store.set_matrix("context", rng.normal(size=(12, 4)))
        seen = store.version
        for op, arg in ops:
            if op == "bump":
                store.bump()
            elif op == "child_bump":
                store.children[arg].bump()
            elif op == "put_row":
                store.put_row(arg % store.n_rows, rng.normal(size=4))
            elif op == "set_matrix":
                store.set_matrix("center", rng.normal(size=(store.n_rows, 4)))
            elif op == "grow":
                block = rng.normal(size=(arg, 4))
                store.grow(block, block)
            assert store.version > seen
            seen = store.version
