"""ShardedStore contract: parity with a single-shard store on every path."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.sharding import ShardedStore, shard_subdir
from repro.storage import DenseStore, make_store


@pytest.fixture()
def matrices():
    rng = np.random.default_rng(42)
    return rng.normal(size=(37, 8)), rng.normal(size=(37, 8))


def make_sharded(backend, tmp_path, center, context, n_shards=4):
    directory = tmp_path / "store" if backend == "mmap" else None
    store = make_store(
        backend, center, context, directory=directory, n_shards=n_shards
    )
    assert isinstance(store, ShardedStore)
    return store


@pytest.mark.parametrize("backend", ["dense", "shared", "mmap"])
class TestParity:
    def test_round_trip_and_normalized(
        self, backend, tmp_path, matrices
    ):
        center, context = matrices
        store = make_sharded(backend, tmp_path, center, context)
        reference = DenseStore(center, context)
        try:
            assert store.n_rows == 37 and store.dim == 8
            np.testing.assert_array_equal(store.center, center)
            np.testing.assert_array_equal(store.context, context)
            for name in ("center", "context"):
                np.testing.assert_array_equal(
                    store.normalized(name), reference.normalized(name)
                )
            rows = np.array([0, 5, 17, 36, 5])
            np.testing.assert_array_equal(
                store.view(rows), reference.view(rows)
            )
            np.testing.assert_array_equal(
                store.get_row(19), reference.get_row(19)
            )
        finally:
            store.close()

    def test_inplace_write_then_bump_reaches_children(
        self, backend, tmp_path, matrices
    ):
        center, context = matrices
        store = make_sharded(backend, tmp_path, center, context)
        try:
            before = store.version
            view = store.center
            view[3] += 1.0
            store.bump()
            assert store.version > before
            # The children are authoritative again: a routed single-row
            # read (no staging buffer involved on a fresh layout) and
            # the re-derived normalized matrix both see the write.
            shard = int(store.shard_for_rows(np.array([3]))[0])
            local = int(np.flatnonzero(store.global_rows(shard) == 3)[0])
            np.testing.assert_array_equal(
                store.children[shard].get_row(local), view[3]
            )
            expected = DenseStore(np.asarray(view), context)
            np.testing.assert_array_equal(
                store.normalized(), expected.normalized()
            )
        finally:
            store.close()

    def test_put_row_routes_to_owner(self, backend, tmp_path, matrices):
        center, context = matrices
        store = make_sharded(backend, tmp_path, center, context)
        try:
            vector = np.full(8, 2.5)
            store.put_row(11, vector)
            np.testing.assert_array_equal(store.get_row(11), vector)
            shard = int(store.shard_for_rows(np.array([11]))[0])
            local = int(np.flatnonzero(store.global_rows(shard) == 11)[0])
            np.testing.assert_array_equal(
                store.children[shard].get_row(local), vector
            )
        finally:
            store.close()

    def test_grow_appends_on_hash_owners(self, backend, tmp_path, matrices):
        center, context = matrices
        store = make_sharded(backend, tmp_path, center, context)
        rng = np.random.default_rng(3)
        new_center = rng.normal(size=(9, 8))
        new_context = rng.normal(size=(9, 8))
        try:
            first = store.grow(new_center, new_context)
            assert first == 37
            assert store.n_rows == 46
            full_center = np.vstack([center, new_center])
            np.testing.assert_array_equal(store.center, full_center)
            # Incremental growth agrees with a from-scratch layout.
            rebuilt = store.partitioner.build_maps(46)
            for child, rows in zip(store.children, rebuilt[2]):
                np.testing.assert_array_equal(
                    child.as_array("center"), full_center[rows]
                )
        finally:
            store.close()


class TestShardedSpecifics:
    def test_composite_version_counts_child_mutations(self, matrices):
        center, context = matrices
        store = ShardedStore(3)
        store.set_matrix("center", center)
        store.set_matrix("context", context)
        before = store.version
        store.children[1].bump()
        assert store.version == before + 1

    def test_mmap_children_live_in_shard_subdirs(self, tmp_path, matrices):
        center, context = matrices
        store = make_sharded("mmap", tmp_path, center, context)
        try:
            for s in range(4):
                child_dir = shard_subdir(tmp_path / "store", s)
                assert (child_dir / "center.npy").exists()
                assert (child_dir / "context.npy").exists()
        finally:
            store.close()

    def test_pickle_round_trip(self, matrices):
        center, context = matrices
        store = ShardedStore(4)
        store.set_matrix("center", center)
        store.set_matrix("context", context)
        # Unflushed staged write must survive pickling.
        store.center[5] = 9.0
        clone = pickle.loads(pickle.dumps(store))
        assert clone.n_shards == 4
        np.testing.assert_array_equal(clone.center, store.center)
        np.testing.assert_array_equal(clone.get_row(5), np.full(8, 9.0))
        np.testing.assert_array_equal(
            clone.normalized(), store.normalized()
        )

    def test_from_children_rejects_mis_sharded_counts(self, matrices):
        center, context = matrices
        good = ShardedStore(4)
        good.set_matrix("center", center)
        good.set_matrix("context", context)
        good.flush()
        children = list(good.children)
        # 37 rows over 4 shards: at least two shards hold unequal counts,
        # so swapping such a pair always violates the hash layout.
        counts = [c.n_rows for c in children]
        i, j = next(
            (a, b)
            for a in range(4)
            for b in range(a + 1, 4)
            if counts[a] != counts[b]
        )
        children[i], children[j] = children[j], children[i]
        with pytest.raises(ValueError, match="do not match the hash layout"):
            ShardedStore.from_children(children)

    def test_factory_validations(self):
        with pytest.raises(ValueError, match="n_shards"):
            make_store("dense", n_shards=0)
        with pytest.raises(ValueError, match="directory"):
            make_store("dense", directory="/tmp/x", n_shards=2)
        with pytest.raises(ValueError, match="unknown store backend"):
            make_store("bogus", n_shards=2)
