"""Bundle format v3: sharded sidecars, back-compat, and the fleet guard."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import QueryEngine, load_bundle, save_bundle
from repro.core.serialize import (
    BundleFormatError,
    SHARDED_FORMAT_VERSION,
    check_shard_plan,
)
from repro.lifecycle import BundlePublisher
from repro.sharding import ShardedStore, shard_subdir


@pytest.fixture()
def v3_root(tmp_path, tiny_actor):
    root = tmp_path / "v3"
    save_bundle(tiny_actor, root, shards=4)
    return root


class TestLayout:
    def test_manifest_and_sidecars(self, v3_root):
        manifest = json.loads((v3_root / "manifest.json").read_text())
        assert manifest["format_version"] == SHARDED_FORMAT_VERSION
        assert manifest["sharding"] == {
            "n_shards": 4,
            "partitioner": "splitmix64",
        }
        # Matrices live only in the per-shard sidecars.
        assert not (v3_root / "center.npy").exists()
        for s in range(4):
            assert (shard_subdir(v3_root, s) / "center.npy").exists()
            assert (shard_subdir(v3_root, s) / "context.npy").exists()

    def test_unsharded_export_stays_v2(self, tmp_path, tiny_actor):
        save_bundle(tiny_actor, tmp_path / "v2", shards=1)
        manifest = json.loads(
            (tmp_path / "v2" / "manifest.json").read_text()
        )
        assert manifest["format_version"] == 2
        assert "sharding" not in manifest
        assert (tmp_path / "v2" / "center.npy").exists()


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_loads_sharded_and_matches_source(
        self, v3_root, tiny_actor, mmap
    ):
        model = load_bundle(v3_root, mmap=mmap)
        assert isinstance(model._store, ShardedStore)
        assert model._store.n_shards == 4
        np.testing.assert_array_equal(
            np.asarray(model.center), np.asarray(tiny_actor.center)
        )
        np.testing.assert_array_equal(
            np.asarray(model.context), np.asarray(tiny_actor.context)
        )

    def test_neighbors_parity_with_v2(self, v3_root, tmp_path, tiny_actor):
        save_bundle(tiny_actor, tmp_path / "v2")
        eager = QueryEngine(load_bundle(v3_root))
        mapped = QueryEngine(load_bundle(v3_root, mmap=True))
        flat = QueryEngine(load_bundle(tmp_path / "v2"))
        rng = np.random.default_rng(21)
        for modality in ("word", "time", "location", "user"):
            query = rng.standard_normal(tiny_actor.dim)
            want = flat.neighbors(query, modality, 10)
            assert eager.neighbors(query, modality, 10) == want
            assert mapped.neighbors(query, modality, 10) == want


class TestValidation:
    def test_missing_shard_sidecar_fails_loudly(self, v3_root):
        target = shard_subdir(v3_root, 2) / "center.npy"
        target.unlink()
        with pytest.raises(BundleFormatError, match="shard sidecar"):
            load_bundle(v3_root, mmap=True)
        with pytest.raises(BundleFormatError, match="missing"):
            load_bundle(v3_root)

    def test_wrong_shard_count_is_mis_sharded(self, v3_root):
        manifest = json.loads((v3_root / "manifest.json").read_text())
        manifest["sharding"]["n_shards"] = 3
        (v3_root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError):
            load_bundle(v3_root)

    def test_unknown_partitioner_rejected(self, v3_root):
        manifest = json.loads((v3_root / "manifest.json").read_text())
        manifest["sharding"]["partitioner"] = "crc32"
        (v3_root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError, match="partitioner"):
            load_bundle(v3_root)


class TestFleetGuard:
    def test_divisible_plans_pass(self):
        check_shard_plan(1)
        check_shard_plan(4, 2)
        check_shard_plan(8, 8)

    def test_indivisible_plan_names_the_constraint(self):
        with pytest.raises(ValueError) as excinfo:
            check_shard_plan(6, 4)
        message = str(excinfo.value)
        assert "does not divide evenly" in message
        assert "fleet of 4" in message

    def test_save_bundle_refuses_indivisible_plan(
        self, tmp_path, tiny_actor
    ):
        with pytest.raises(ValueError, match="does not divide evenly"):
            save_bundle(tiny_actor, tmp_path / "nope", shards=3, fleet_size=2)
        assert not (tmp_path / "nope").exists()

    def test_invalid_counts_rejected(self, tmp_path, tiny_actor):
        with pytest.raises(ValueError):
            check_shard_plan(0)
        with pytest.raises(ValueError):
            save_bundle(tiny_actor, tmp_path / "nope", shards=-1)


class TestPublisher:
    def test_publishes_sharded_epochs(self, tmp_path, tiny_actor):
        publisher = BundlePublisher(tmp_path / "bundles", shards=2)
        path = publisher.publish(tiny_actor)
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format_version"] == SHARDED_FORMAT_VERSION
        model = load_bundle(path, mmap=True)
        assert isinstance(model._store, ShardedStore)
        assert model._store.n_shards == 2

    def test_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            BundlePublisher(tmp_path / "bundles", shards=0)
