"""In-RAM :class:`DenseStore` — the default, behavior-identical backend.

Wraps plain float64 ndarrays with the :class:`~repro.storage.base
.EmbeddingStore` contract.  ``set_matrix`` keeps array identity when
handed an already-compliant float64 array, so code that constructs a
matrix and then trains against the model's ``center`` view mutates the
exact same buffer it built — matching the pre-storage-layer behavior
bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.storage.base import EmbeddingStore

__all__ = ["DenseStore"]


class DenseStore(EmbeddingStore):
    """Plain in-process ndarray storage (the default backend)."""

    backend = "dense"

    def __init__(self, center=None, context=None) -> None:
        super().__init__()
        self._matrices: dict[str, np.ndarray | None] = {
            "center": None,
            "context": None,
        }
        if center is not None:
            self.set_matrix("center", center)
        if context is not None:
            self.set_matrix("context", context)

    def _get(self, name: str) -> np.ndarray | None:
        """Return the held array (or ``None`` when unset)."""
        return self._matrices[name]

    def _put(self, name: str, value: np.ndarray) -> None:
        """Adopt ``value`` directly — zero-copy for float64 input."""
        self._matrices[name] = value
