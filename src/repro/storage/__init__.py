"""Pluggable embedding storage: one protocol, three backends.

See :mod:`repro.storage.base` for the :class:`EmbeddingStore` contract.
Pick a backend with :func:`make_store` (or the CLI's ``--store`` flag):

=============  =====================================================
``dense``      plain RAM ndarrays — default, fastest single-process
``shared``     POSIX shared memory — Hogwild training, forked serving
``mmap``       memory-mapped ``.npy`` files — zero-copy load, > RAM
=============  =====================================================
"""

from __future__ import annotations

import os

from repro.storage.base import MATRIX_NAMES, EmbeddingStore, normalize_rows
from repro.storage.dense import DenseStore
from repro.storage.mmap import MmapStore
from repro.storage.shared import SharedMatrix, SharedMemStore

__all__ = [
    "EmbeddingStore",
    "DenseStore",
    "SharedMemStore",
    "SharedMatrix",
    "MmapStore",
    "MATRIX_NAMES",
    "STORE_BACKENDS",
    "make_store",
    "normalize_rows",
]

STORE_BACKENDS = ("dense", "shared", "mmap")


def make_store(
    backend: str = "dense",
    center=None,
    context=None,
    *,
    directory: str | os.PathLike | None = None,
    n_shards: int = 1,
) -> EmbeddingStore:
    """Construct a store by backend name (``dense``/``shared``/``mmap``).

    ``directory`` only applies to the ``mmap`` backend (a private temp
    directory is created when omitted); passing it with another backend
    is an error so silent misconfiguration can't slip through.

    ``n_shards > 1`` wraps ``n_shards`` children of the requested
    backend in a :class:`~repro.sharding.ShardedStore` (hash-partitioned
    rows, one composite version; mmap children live in
    ``<directory>/shards/NN``).  The returned store honours the same
    :class:`EmbeddingStore` contract either way.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > 1:
        # Imported lazily: repro.sharding builds its children through
        # this factory, so a top-level import would be circular.
        from repro.sharding import ShardedStore

        if backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {backend!r}; "
                f"choose one of {STORE_BACKENDS}"
            )
        if directory is not None and backend != "mmap":
            raise ValueError(
                f"directory= only applies to the 'mmap' backend, "
                f"not {backend!r}"
            )
        store = ShardedStore(
            n_shards, child_backend=backend, directory=directory
        )
        if center is not None:
            store.set_matrix("center", center)
        if context is not None:
            store.set_matrix("context", context)
        return store
    if backend == "mmap":
        return MmapStore(center, context, directory=directory)
    if directory is not None:
        raise ValueError(
            f"directory= only applies to the 'mmap' backend, not {backend!r}"
        )
    if backend == "dense":
        return DenseStore(center, context)
    if backend == "shared":
        return SharedMemStore(center, context)
    raise ValueError(
        f"unknown store backend {backend!r}; choose one of {STORE_BACKENDS}"
    )
