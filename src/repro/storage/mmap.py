"""Memory-mapped :class:`MmapStore` — zero-copy model serving from disk.

Both matrices live as raw ``.npy`` files (``center.npy`` /
``context.npy``) inside one directory, mapped with
``numpy.lib.format.open_memmap``.  Opening a multi-gigabyte model is then
an ``mmap(2)`` call instead of a deserialize-everything pickle load:
pages fault in lazily as queries touch rows, cold-start is near-instant,
models larger than RAM serve fine, and several processes mapping the same
bundle share one page-cache copy.  Format-v2 bundles written by
:func:`repro.core.serialize.save_bundle` use exactly this layout, so
``load_bundle(..., mmap=True)`` adopts the bundle directory as a
read-only store with no copying at all.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.storage.base import EmbeddingStore

__all__ = ["MmapStore"]

_FILENAMES = {"center": "center.npy", "context": "context.npy"}


class MmapStore(EmbeddingStore):
    """Embedding store backed by memory-mapped ``.npy`` files.

    ``mode`` follows ``numpy.memmap`` semantics: ``"r+"`` (default) maps
    existing files read-write, ``"r"`` maps them read-only — any mutation
    attempt raises.  Matrices are opened lazily on first access, so
    constructing a store over a huge bundle costs nothing until rows are
    touched.  With no ``directory`` a private temp directory is created
    (scratch training runs); shape-changing writes go through a
    write-temp-then-``os.replace`` dance so a crash mid-resize never
    corrupts the mapped files.
    """

    backend = "mmap"

    def __init__(
        self,
        center=None,
        context=None,
        *,
        directory: str | os.PathLike | None = None,
        mode: str = "r+",
    ) -> None:
        super().__init__()
        if mode not in ("r", "r+"):
            raise ValueError(f"mode must be 'r' or 'r+', got {mode!r}")
        if directory is None:
            if mode == "r":
                raise ValueError("read-only MmapStore requires a directory")
            directory = tempfile.mkdtemp(prefix="repro-store-")
        self.directory = Path(directory)
        self.mode = mode
        self._arrays: dict[str, np.ndarray | None] = {
            "center": None,
            "context": None,
        }
        if center is not None:
            self.set_matrix("center", center)
        if context is not None:
            self.set_matrix("context", context)

    @classmethod
    def open(cls, directory: str | os.PathLike, mode: str = "r") -> "MmapStore":
        """Map an existing directory of ``center.npy``/``context.npy``."""
        return cls(directory=directory, mode=mode)

    def _path(self, name: str) -> Path:
        """On-disk path of the named matrix."""
        return self.directory / _FILENAMES[name]

    def _get(self, name: str) -> np.ndarray | None:
        """Lazily map the named file; ``None`` when it doesn't exist."""
        arr = self._arrays[name]
        if arr is None:
            path = self._path(name)
            if path.exists():
                arr = np.lib.format.open_memmap(path, mode=self.mode)
                self._arrays[name] = arr
        return arr

    def _put(self, name: str, value: np.ndarray) -> None:
        """Overwrite in place when shapes match, else rewrite atomically."""
        if self.mode == "r":
            raise ValueError(
                f"store at {self.directory} is read-only (mode='r')"
            )
        existing = self._get(name)
        if existing is not None and existing.shape == value.shape:
            existing[:] = value
            return
        self._arrays[name] = None  # drop the stale mapping before replace
        path = self._path(name)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_suffix(".npy.tmp")
        out = np.lib.format.open_memmap(
            tmp_path, mode="w+", dtype=np.float64, shape=value.shape
        )
        out[:] = value
        out.flush()
        del out  # release the w+ mapping before the rename
        os.replace(tmp_path, path)
        self._arrays[name] = np.lib.format.open_memmap(path, mode="r+")

    def flush(self) -> None:
        """``msync`` pending writes of both mapped matrices to disk."""
        for arr in self._arrays.values():
            if isinstance(arr, np.memmap):
                arr.flush()

    def close(self) -> None:
        """Drop the mappings (files stay on disk; idempotent)."""
        if self.mode != "r":
            self.flush()
        self._arrays = {"center": None, "context": None}

    # ----------------------------------------------------------------- pickle

    def __getstate__(self) -> dict:
        """Pickle as directory reference — the ``.npy`` files ARE the data.

        Pending writes are flushed first so the unpickled store maps the
        same bytes the live one held.
        """
        if self.mode != "r":
            self.flush()
        state = super().__getstate__()
        state["_arrays"] = {"center": None, "context": None}
        return state

    def __setstate__(self, state: dict) -> None:
        """Re-map the directory lazily on first access after unpickling."""
        self.__dict__.update(state)
