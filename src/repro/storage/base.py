"""The :class:`EmbeddingStore` protocol — one storage seam for all backends.

ACTOR's embeddings are the system's core state: hierarchical init writes
them, the alternating meta-graph SGNS mutates them in place, streaming
grows them row by row, and the query engine reads normalized views of
them.  Before this package existed the codebase held four divergent
representations (raw ndarrays, POSIX shared-memory segments, pickled
blobs, grow-in-place arrays with hand-rolled cache invalidation); every
backend now implements the same small contract:

* ``center`` / ``context`` — zero-copy ndarray views of the two matrices;
* ``get_row`` / ``put_row`` / ``view`` — row-level access;
* ``grow`` — append fresh rows to *both* matrices atomically;
* ``normalized`` — a cached L2-row-normalized view, rebuilt lazily when
  :attr:`version` moved;
* ``version`` / ``bump`` — a monotonic counter that every mutation path
  advances, giving downstream caches (the query engine's modality
  matrices) one invalidation signal instead of per-call-site bookkeeping;
* ``flush`` / ``close`` — durability and resource release hooks.

Backends: :class:`~repro.storage.dense.DenseStore` (plain RAM, default),
:class:`~repro.storage.shared.SharedMemStore` (POSIX shared memory for
Hogwild workers and multi-process serving) and
:class:`~repro.storage.mmap.MmapStore` (memory-mapped ``.npy`` files for
zero-copy startup and models larger than RAM).
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmbeddingStore", "MATRIX_NAMES", "normalize_rows"]

MATRIX_NAMES = ("center", "context")


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows; zero rows stay zero (OOV / empty-query vectors).

    With both operands row-normalized, a plain matrix product yields a
    cosine-similarity block, and zero rows score 0 against everything —
    the out-of-vocabulary convention the query surface relies on.  The
    math is strictly per-row, so normalizing the full matrix and gathering
    a row subset is bit-identical to normalizing the subset directly.
    """
    matrix = np.asarray(matrix)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    out = np.zeros_like(matrix, dtype=float)
    np.divide(matrix, norms, out=out, where=norms > 0)
    return out


class EmbeddingStore:
    """Base class / protocol for pluggable center+context matrix storage.

    Subclasses implement the two private hooks :meth:`_get` (return the
    backing ndarray of one matrix, or ``None`` when unset) and
    :meth:`_put` (store a float64 2-D array under one name); everything
    else — version bookkeeping, the normalized-view cache, row access,
    growth — is shared here.  All mutation paths funnel through
    :meth:`set_matrix` / :meth:`put_row` / :meth:`grow` / :meth:`bump`,
    each of which advances :attr:`version`.
    """

    backend = "abstract"

    def __init__(self) -> None:
        self._version = 0
        # name -> (version, normalized matrix); rebuilt lazily on version
        # mismatch, never mutated in place.
        self._normalized: dict[str, tuple[int, np.ndarray]] = {}

    # ----------------------------------------------------------- subclass API

    def _get(self, name: str) -> np.ndarray | None:
        """Return the backing array for ``name`` (``None`` when unset)."""
        raise NotImplementedError

    def _put(self, name: str, value: np.ndarray) -> None:
        """Store ``value`` (already float64, 2-D) under ``name``."""
        raise NotImplementedError

    # -------------------------------------------------------------- utilities

    @staticmethod
    def _check_name(name: str) -> str:
        """Validate a matrix name (``center`` or ``context``)."""
        if name not in MATRIX_NAMES:
            raise ValueError(
                f"matrix name must be one of {MATRIX_NAMES}, got {name!r}"
            )
        return name

    @staticmethod
    def _coerce(value) -> np.ndarray:
        """As a float64 2-D array; zero-copy when already compliant."""
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(
                f"embedding matrices must be 2-D, got shape {arr.shape}"
            )
        return arr

    # ---------------------------------------------------------------- version

    @property
    def version(self) -> int:
        """Monotonic mutation counter — the cache-invalidation signal.

        Any matrix replacement, row write, growth or in-place SGD burst
        (reported via :meth:`bump`) advances it; caches compare their
        stamped version against the current one instead of tracking every
        mutation site.
        """
        return self._version

    def bump(self) -> int:
        """Advance :attr:`version` (call after in-place external writes).

        In-place SGD kernels scatter-add straight into :attr:`center` /
        :attr:`context` views without going through the store's methods;
        they must call ``bump()`` once per burst so readers notice.
        Returns the new version.
        """
        self._version += 1
        return self._version

    # --------------------------------------------------------------- matrices

    @property
    def center(self) -> np.ndarray:
        """Zero-copy view of the center matrix."""
        return self.as_array("center")

    @property
    def context(self) -> np.ndarray:
        """Zero-copy view of the context matrix."""
        return self.as_array("context")

    @property
    def n_rows(self) -> int:
        """Number of embedding rows (center matrix)."""
        return self.center.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimension (center matrix columns)."""
        return self.center.shape[1]

    def as_array(self, name: str = "center") -> np.ndarray:
        """The named matrix as a zero-copy ndarray view.

        Raises ``AttributeError`` (not ``KeyError``) when the matrix has
        not been set yet, so ``hasattr(model, "center")``-style probes on
        store-backed models keep working.
        """
        arr = self._get(self._check_name(name))
        if arr is None:
            raise AttributeError(f"store holds no {name!r} matrix yet")
        return arr

    def set_matrix(self, name: str, value) -> None:
        """Replace the named matrix wholesale (bumps :attr:`version`).

        Backends overwrite in place when the shape is unchanged and
        reallocate otherwise; either way readers see a version bump.
        """
        self._put(self._check_name(name), self._coerce(value))
        self.bump()

    # -------------------------------------------------------------- row level

    def get_row(self, row: int, name: str = "center") -> np.ndarray:
        """One embedding row (a view into the backing matrix)."""
        return self.as_array(name)[row]

    def put_row(self, row: int, vector, name: str = "center") -> None:
        """Overwrite one embedding row (bumps :attr:`version`)."""
        self.as_array(name)[row] = vector
        self.bump()

    def view(self, rows, name: str = "center") -> np.ndarray:
        """Bulk gather of ``rows`` (fancy indexing — returns a copy)."""
        return self.as_array(name)[np.asarray(rows, dtype=np.int64)]

    # ----------------------------------------------------------------- growth

    def grow(self, center_rows, context_rows) -> int:
        """Append fresh rows to both matrices; returns the first new row.

        ``center_rows`` and ``context_rows`` must have identical shapes.
        Growth bumps :attr:`version` once, so downstream caches are
        invalidated exactly as for any other mutation.
        """
        center_rows = self._coerce(center_rows)
        context_rows = self._coerce(context_rows)
        if center_rows.shape != context_rows.shape:
            raise ValueError(
                "grow requires matching center/context row blocks, got "
                f"{center_rows.shape} vs {context_rows.shape}"
            )
        first = self.n_rows
        if center_rows.shape[0] == 0:
            return first
        self._append("center", center_rows)
        self._append("context", context_rows)
        self.bump()
        return first

    def _append(self, name: str, rows: np.ndarray) -> None:
        """Default growth path: reallocate via ``vstack`` through ``_put``."""
        self._put(name, np.vstack([self.as_array(name), rows]))

    # -------------------------------------------------------- normalized view

    def normalized(self, name: str = "center") -> np.ndarray:
        """Cached L2-row-normalized copy of the named matrix.

        Rebuilt lazily whenever :attr:`version` moved since the cached
        copy was computed; valid snapshots are shared by every reader
        (the query engine's per-modality caches gather rows from this one
        matrix instead of re-norming per modality).
        """
        name = self._check_name(name)
        entry = self._normalized.get(name)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        matrix = normalize_rows(self.as_array(name))
        self._normalized[name] = (self._version, matrix)
        return matrix

    # ------------------------------------------------------------- durability

    def flush(self) -> None:
        """Persist pending writes (no-op for volatile backends)."""

    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""

    def __enter__(self) -> "EmbeddingStore":
        """Context-manager entry (returns the store)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release resources via :meth:`close`."""
        self.close()

    # ----------------------------------------------------------------- pickle

    def __getstate__(self) -> dict:
        """Drop the derived normalized cache from pickles (recomputable)."""
        state = dict(self.__dict__)
        state["_normalized"] = {}
        return state

    def __repr__(self) -> str:
        """Backend name plus shape, e.g. ``DenseStore(1024x64, v3)``."""
        try:
            shape = f"{self.n_rows}x{self.dim}"
        except AttributeError:
            shape = "empty"
        return f"{type(self).__name__}({shape}, v{self._version})"
