"""POSIX shared-memory backend for Hogwild training and shared serving.

Python threads cannot parallelize the NumPy SGNS kernels (the scatter-add
updates hold the GIL), so the paper's lock-free multi-threaded SGD (Recht
et al.; Fig. 12b/c) is reproduced with *processes*: the center and context
matrices live in POSIX shared memory, worker processes are forked after
the trainer is fully constructed, and every worker scatter-adds into the
same pages without locks — the Hogwild recipe with processes supplying
the parallelism threads cannot.

:class:`SharedMatrix` wraps one matrix in one segment (it is the same
class `repro.embedding.shared` has always exported — that module is now a
thin re-export).  Cleanup is crash-proof: a ``weakref.finalize`` guard
unlinks the segment even when the owning trainer dies mid-epoch and
``close()`` is never reached, so aborted runs no longer leak ``/dev/shm``
segments until reboot.

:class:`SharedMemStore` composes two segments behind the
:class:`~repro.storage.base.EmbeddingStore` contract, which lets the
Hogwild pool train *directly* on a model's live storage (no copy-in /
copy-out) and lets forked serving processes answer queries against one
shared embedding table.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.storage.base import EmbeddingStore

__all__ = ["SharedMatrix", "SharedMemStore"]


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close + unlink a segment, tolerating live views and double unlinks.

    ``close()`` raises ``BufferError`` while ndarray views of the buffer
    are still alive; the name is unlinked regardless so the kernel
    reclaims the pages once the last mapping dies — nothing outlives the
    process either way.
    """
    try:
        shm.close()
    except BufferError:  # exported views still alive; pages freed at GC/exit
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked by another path/process
        pass


class SharedMatrix:
    """A float64 matrix backed by a POSIX shared-memory segment.

    Create one per embedding matrix before forking workers; every process
    that inherits the object (via fork) sees the same pages, so in-place
    NumPy updates are immediately visible everywhere.

    The creating process owns the segment.  Call :meth:`close` (or use
    the object as a context manager) to release it deterministically; a
    ``weakref.finalize`` guard unlinks the segment at garbage collection
    or interpreter exit even when the owner crashes before ``close()``.
    """

    def __init__(self, initial: np.ndarray) -> None:
        initial = np.ascontiguousarray(initial, dtype=np.float64)
        self._shm = shared_memory.SharedMemory(
            create=True, size=initial.nbytes
        )
        self.array = np.ndarray(
            initial.shape, dtype=np.float64, buffer=self._shm.buf
        )
        self.array[:] = initial
        self._closed = False
        # Crash guard: unlink the segment when this wrapper is collected
        # or the interpreter exits, whichever comes first.  finalize()
        # runs at most once, so an explicit close() supersedes it.
        self._finalizer = weakref.finalize(self, _release_segment, self._shm)

    def copy(self) -> np.ndarray:
        """A private (non-shared) copy of the current contents."""
        return np.array(self.array)

    def close(self) -> None:
        """Release the shared segment (idempotent).

        The numpy view becomes invalid afterwards; callers should
        :meth:`copy` first if they need the data.
        """
        if self._closed:
            return
        # Drop our numpy view before closing the mapping; any *other*
        # surviving views are tolerated (the segment is still unlinked
        # and the pages die with the last mapping).
        self.array = None
        self._finalizer()
        self._closed = True

    def __enter__(self) -> "SharedMatrix":
        """Context-manager entry (returns the wrapper)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release the segment via :meth:`close`."""
        self.close()


class SharedMemStore(EmbeddingStore):
    """Embedding store with both matrices in POSIX shared memory.

    Forked processes (Hogwild SGD workers, read-only query servers)
    inherit the segments and operate on the very same pages — the
    trainer's in-place updates are visible to every process with no
    copies.  ``grow`` reallocates fresh segments and retires the old
    ones (unlink now, pages reclaimed when the last inherited mapping
    dies).  Pickling materializes the contents and recreates private
    segments on load: shared memory is per-machine, not per-bundle.
    """

    backend = "shared"

    def __init__(self, center=None, context=None) -> None:
        super().__init__()
        self._segments: dict[str, SharedMatrix | None] = {
            "center": None,
            "context": None,
        }
        if center is not None:
            self.set_matrix("center", center)
        if context is not None:
            self.set_matrix("context", context)

    def _get(self, name: str) -> np.ndarray | None:
        """The live shared-memory view (or ``None`` when unset)."""
        seg = self._segments[name]
        return None if seg is None else seg.array

    def _put(self, name: str, value: np.ndarray) -> None:
        """Write into the segment in place, reallocating on shape change."""
        seg = self._segments[name]
        if seg is not None and seg.array is not None:
            if seg.array.shape == value.shape:
                seg.array[:] = value
                return
            seg.close()  # retire: unlink now, pages freed with last mapping
        self._segments[name] = SharedMatrix(value)

    def close(self) -> None:
        """Release both segments (idempotent)."""
        for seg in self._segments.values():
            if seg is not None:
                seg.close()
        self._segments = {"center": None, "context": None}

    # ----------------------------------------------------------------- pickle

    def __getstate__(self) -> dict:
        """Materialize segment contents — segments don't cross pickles."""
        state = super().__getstate__()
        state["_segments"] = {
            name: None if seg is None or seg.array is None else seg.copy()
            for name, seg in self._segments.items()
        }
        return state

    def __setstate__(self, state: dict) -> None:
        """Recreate fresh private segments holding the pickled contents."""
        arrays = state.pop("_segments")
        self.__dict__.update(state)
        self._segments = {
            name: None if arr is None else SharedMatrix(arr)
            for name, arr in arrays.items()
        }
