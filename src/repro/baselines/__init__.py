"""Compared methods from the paper's Section 6.1.2 plus related-work
homogeneous embeddings (DeepWalk / node2vec, Section 2.2)."""

from repro.baselines.base import SpatiotemporalModel
from repro.baselines.crossmap import CrossMap
from repro.baselines.deepwalk import DeepWalk, Node2Vec
from repro.baselines.lgta import LGTA
from repro.baselines.line_model import LineModel
from repro.baselines.metapath2vec import MetaPath2Vec
from repro.baselines.mgtm import MGTM

__all__ = [
    "SpatiotemporalModel",
    "CrossMap",
    "LineModel",
    "MetaPath2Vec",
    "LGTA",
    "MGTM",
    "DeepWalk",
    "Node2Vec",
]
