"""Common interface for every compared method (paper Section 6.1.2).

All eight Table-2 rows — LGTA, MGTM, metapath2vec, LINE, LINE(U), CrossMap,
CrossMap(U) and ACTOR — are driven by the same evaluation harness through
:class:`SpatiotemporalModel`: fit on a training corpus, then score candidate
sets for the three prediction tasks.

Embedding methods get their scoring from
:class:`~repro.core.prediction.GraphEmbeddingModel` (cosine similarity in
the shared latent space); the topic models implement probabilistic scoring
and — like in the paper, where Table 2 shows "/" — do not support the time
task (``supports_time = False``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.data.records import Corpus

__all__ = ["SpatiotemporalModel"]


class SpatiotemporalModel(ABC):
    """Fit / score interface shared by ACTOR and every baseline."""

    #: Human-readable name used in result tables.
    name: str = "model"
    #: Whether the model can rank time candidates (topic models cannot).
    supports_time: bool = True

    @abstractmethod
    def fit(self, corpus: Corpus) -> "SpatiotemporalModel":
        """Train on ``corpus`` and return ``self``."""

    @abstractmethod
    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Score each candidate of the ``target`` modality (higher = better).

        Exactly two of ``time`` / ``location`` / ``words`` are given — the
        observed modalities; ``candidates`` hold values of the third:
        word bags for ``target="text"``, ``(x, y)`` pairs for
        ``"location"``, timestamps for ``"time"``.
        """
