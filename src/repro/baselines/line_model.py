"""LINE and LINE(U) baselines on the activity graph (Table 2).

LINE (Tang et al., WWW 2015) is a *homogeneous* graph embedding: all
activity-graph edge types are pooled into a single edge set and embedded
with second-order proximity SGNS, ignoring vertex/edge types entirely —
which is exactly why it trails the type-aware methods in Table 2.

``LINE(U)`` is the paper's adaptation "to the activity graph with the
auxiliary vertex type of U": the pooled edge set additionally includes the
user-to-unit edges.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SpatiotemporalModel
from repro.core.prediction import GraphEmbeddingModel
from repro.data.records import Corpus
from repro.data.text import Vocabulary
from repro.embedding.line import LineEmbedding, merge_edge_sets
from repro.graphs.builder import GraphBuilder
from repro.graphs.types import EdgeType
from repro.hotspots.detector import HotspotDetector

__all__ = ["LineModel"]

_UNIT_TYPES = (EdgeType.TL, EdgeType.LW, EdgeType.WT, EdgeType.WW)
_USER_TYPES = (EdgeType.UT, EdgeType.UL, EdgeType.UW)


class LineModel(SpatiotemporalModel, GraphEmbeddingModel):
    """Homogeneous LINE embedding of the (pooled) activity graph.

    Parameters
    ----------
    include_users:
        ``True`` builds the LINE(U) variant.
    order:
        LINE proximity order (2 by default, the stronger variant).
    n_samples:
        Total edge samples; ``None`` scales with the graph's edge count.
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        order: int = 2,
        negatives: int = 5,
        lr: float = 0.025,
        batch_size: int = 256,
        n_samples: int | None = None,
        include_users: bool = False,
        spatial_bandwidth: float = 0.5,
        temporal_bandwidth: float = 0.75,
        vocab_min_count: int = 2,
        vocab_max_size: int | None = 20_000,
        seed: int = 0,
    ) -> None:
        self.name = "LINE(U)" if include_users else "LINE"
        self.dim_ = int(dim)
        self.order = order
        self.negatives = negatives
        self.lr = lr
        self.batch_size = batch_size
        self.n_samples = n_samples
        self.include_users = include_users
        self.spatial_bandwidth = spatial_bandwidth
        self.temporal_bandwidth = temporal_bandwidth
        self.vocab_min_count = vocab_min_count
        self.vocab_max_size = vocab_max_size
        self.seed = seed

    def fit(self, corpus: Corpus) -> "LineModel":
        """Train on ``corpus`` (see :class:`SpatiotemporalModel`)."""
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=self.spatial_bandwidth,
                temporal_bandwidth=self.temporal_bandwidth,
            ),
            vocab=Vocabulary(
                min_count=self.vocab_min_count, max_size=self.vocab_max_size
            ),
            include_users=self.include_users,
        )
        self.built = builder.build(corpus)
        activity = self.built.activity
        edge_types = _UNIT_TYPES + (_USER_TYPES if self.include_users else ())
        pooled = merge_edge_sets([activity.edge_set(et) for et in edge_types])
        n_samples = self.n_samples
        if n_samples is None:
            # LINE convention: samples proportional to edge count; ~30
            # passes over the pooled edge set matches the other baselines'
            # training budget.
            n_samples = 30 * len(pooled)
        line = LineEmbedding(
            self.dim_,
            order=self.order,
            negatives=self.negatives,
            lr=self.lr,
            batch_size=self.batch_size,
        ).fit(pooled, activity.n_nodes, n_samples=n_samples, seed=self.seed)
        self.center = line.embeddings
        self.context = line.context
        return self

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine candidate scores (see :class:`SpatiotemporalModel`)."""
        return GraphEmbeddingModel.score_candidates(
            self,
            target=target,
            candidates=candidates,
            time=time,
            location=location,
            words=words,
        )
