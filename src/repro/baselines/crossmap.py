"""CrossMap baseline (Zhang et al., WWW 2017) and its CrossMap(U) variant.

CrossMap "jointly maps different units into the latent space but only models
the co-occurrence and neighborhood relationships" — i.e. it is the
single-layer special case of ACTOR (Section 5.4): SGNS over the activity
graph's intra-record edge types, each word treated individually, plus
spatial/temporal neighborhood smoothing edges (LL/TT), with no user
pretraining and no bag-of-words structure.

``CrossMap(U)`` (Table 2) additionally adds user vertices and flat
``UT/UL/UW`` edges to the same graph — "extend CrossMap on the activity
graph with the auxiliary vertex type of U" — still without the hierarchical
initialization.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SpatiotemporalModel
from repro.core.hierarchical import random_init
from repro.core.prediction import GraphEmbeddingModel
from repro.data.records import Corpus
from repro.data.text import Vocabulary
from repro.embedding.edge_sampler import TypedEdgeSampler
from repro.embedding.sgns import sgns_step
from repro.graphs.builder import GraphBuilder
from repro.graphs.types import EdgeType
from repro.hotspots.detector import HotspotDetector
from repro.utils.rng import ensure_rng

__all__ = ["CrossMap"]

_BASE_TYPES = (EdgeType.TL, EdgeType.LW, EdgeType.WT, EdgeType.WW,
               EdgeType.LL, EdgeType.TT)
_USER_TYPES = (EdgeType.UT, EdgeType.UL, EdgeType.UW)


class CrossMap(SpatiotemporalModel, GraphEmbeddingModel):
    """Flat cross-modal embedding over the activity graph.

    Parameters
    ----------
    dim, lr, negatives, batch_size, epochs:
        SGNS hyper-parameters (same meanings as :class:`ActorConfig`).
    include_users:
        ``True`` builds the CrossMap(U) variant.
    neighbor_smoothing:
        Add the LL/TT spatial/temporal continuity edges (CrossMap's
        distinguishing feature vs. plain LINE on the same graph).
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        lr: float = 0.02,
        negatives: int = 1,
        batch_size: int = 256,
        epochs: int = 30,
        include_users: bool = False,
        neighbor_smoothing: bool = True,
        spatial_bandwidth: float = 0.5,
        temporal_bandwidth: float = 0.75,
        vocab_min_count: int = 2,
        vocab_max_size: int | None = 20_000,
        seed: int = 0,
    ) -> None:
        self.name = "CrossMap(U)" if include_users else "CrossMap"
        self.dim_ = int(dim)
        self.lr = float(lr)
        self.negatives = int(negatives)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.include_users = include_users
        self.neighbor_smoothing = neighbor_smoothing
        self.spatial_bandwidth = spatial_bandwidth
        self.temporal_bandwidth = temporal_bandwidth
        self.vocab_min_count = vocab_min_count
        self.vocab_max_size = vocab_max_size
        self.seed = seed

    def fit(self, corpus: Corpus) -> "CrossMap":
        """Train on ``corpus`` (see :class:`SpatiotemporalModel`)."""
        rng = ensure_rng(self.seed)
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=self.spatial_bandwidth,
                temporal_bandwidth=self.temporal_bandwidth,
            ),
            vocab=Vocabulary(
                min_count=self.vocab_min_count, max_size=self.vocab_max_size
            ),
            include_users=self.include_users,
            neighbor_smoothing=self.neighbor_smoothing,
        )
        self.built = builder.build(corpus)
        activity = self.built.activity
        self.center, self.context = random_init(activity.n_nodes, self.dim_, rng)

        edge_types = _BASE_TYPES + (_USER_TYPES if self.include_users else ())
        samplers = [
            TypedEdgeSampler(activity.edge_set(et), negatives=self.negatives)
            for et in edge_types
            if len(activity.edge_set(et)) > 0
        ]
        batches = max(
            1,
            int(np.ceil(activity.n_edges / (self.batch_size * len(samplers)))),
        )
        total_steps = self.epochs * len(samplers) * batches
        step = 0
        for _epoch in range(self.epochs):
            for sampler in samplers:
                lr = self.lr * max(0.1, 1.0 - step / max(1, total_steps))
                for _ in range(batches):
                    batch = sampler.sample_batch(self.batch_size, rng)
                    sgns_step(
                        self.center, self.context,
                        batch.src, batch.dst, batch.neg, lr,
                    )
                step += batches
        return self

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine candidate scores (see :class:`SpatiotemporalModel`)."""
        return GraphEmbeddingModel.score_candidates(
            self,
            target=target,
            candidates=candidates,
            time=time,
            location=location,
            words=words,
        )
