"""DeepWalk and node2vec baselines (related-work Section 2.2).

The paper cites DeepWalk (Perozzi et al., KDD 2014) and node2vec (Grover &
Leskovec, KDD 2016) as the representative homogeneous random-walk
embeddings that its heterogeneous treatment improves on.  They are not
Table-2 rows, but a complete baseline suite should include them — both for
the extended comparison bench and as reference implementations.

* **DeepWalk**: truncated uniform random walks + skip-gram.
* **node2vec**: 2nd-order biased walks with return parameter ``p`` and
  in-out parameter ``q`` (p = q = 1 recovers DeepWalk's walk distribution),
  same skip-gram training.

Both treat the activity graph as homogeneous (types ignored), like LINE.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SpatiotemporalModel
from repro.core.hierarchical import random_init
from repro.core.prediction import GraphEmbeddingModel
from repro.data.records import Corpus
from repro.data.text import Vocabulary
from repro.embedding.alias import AliasTable
from repro.embedding.edge_sampler import NOISE_POWER
from repro.embedding.sgns import sgns_step
from repro.graphs.activity_graph import ActivityGraph
from repro.graphs.builder import GraphBuilder
from repro.hotspots.detector import HotspotDetector
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["DeepWalk", "Node2Vec"]


class _HomogeneousAdjacency:
    """Weighted neighbor lists over the pooled (untyped) edge sets."""

    def __init__(self, activity: ActivityGraph) -> None:
        lists: dict[int, tuple[list[int], list[float]]] = {}
        for edge_set in activity.edge_sets.values():
            for u, v, w in zip(edge_set.src, edge_set.dst, edge_set.weight):
                u, v, w = int(u), int(v), float(w)
                lists.setdefault(u, ([], []))[0].append(v)
                lists[u][1].append(w)
                lists.setdefault(v, ([], []))[0].append(u)
                lists[v][1].append(w)
        self.neighbors: dict[int, np.ndarray] = {}
        self.weights: dict[int, np.ndarray] = {}
        self._tables: dict[int, AliasTable] = {}
        for node, (neighbors, weights) in lists.items():
            self.neighbors[node] = np.asarray(neighbors, dtype=np.int64)
            self.weights[node] = np.asarray(weights, dtype=np.float64)
            self._tables[node] = AliasTable(self.weights[node])

    def step(self, node: int, rng: np.random.Generator) -> int | None:
        """One weighted uniform step from ``node``."""
        table = self._tables.get(node)
        if table is None:
            return None
        return int(self.neighbors[node][table.sample_one(seed=rng)])

    def neighbor_set(self, node: int) -> set[int]:
        """Neighbors of ``node`` as a set (for node2vec's distance test)."""
        array = self.neighbors.get(node)
        return set(array.tolist()) if array is not None else set()


class DeepWalk(SpatiotemporalModel, GraphEmbeddingModel):
    """Uniform truncated random walks + skip-gram over the activity graph.

    Parameters
    ----------
    dim, walks_per_node, walk_length, window, negatives, lr, batch_size,
    epochs:
        Standard DeepWalk/word2vec hyper-parameters.
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        walks_per_node: int = 6,
        walk_length: int = 30,
        window: int = 4,
        negatives: int = 5,
        lr: float = 0.025,
        batch_size: int = 256,
        epochs: int = 1,
        spatial_bandwidth: float = 0.5,
        temporal_bandwidth: float = 0.75,
        vocab_min_count: int = 2,
        vocab_max_size: int | None = 20_000,
        seed: int = 0,
    ) -> None:
        check_positive("walks_per_node", walks_per_node)
        check_positive("walk_length", walk_length)
        check_positive("window", window)
        self.name = "DeepWalk"
        self.dim_ = int(dim)
        self.walks_per_node = int(walks_per_node)
        self.walk_length = int(walk_length)
        self.window = int(window)
        self.negatives = int(negatives)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.spatial_bandwidth = spatial_bandwidth
        self.temporal_bandwidth = temporal_bandwidth
        self.vocab_min_count = vocab_min_count
        self.vocab_max_size = vocab_max_size
        self.seed = seed

    # ------------------------------------------------------------------- fit

    def fit(self, corpus: Corpus) -> "DeepWalk":
        """Train on ``corpus`` (see :class:`SpatiotemporalModel`)."""
        rng = ensure_rng(self.seed)
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=self.spatial_bandwidth,
                temporal_bandwidth=self.temporal_bandwidth,
            ),
            vocab=Vocabulary(
                min_count=self.vocab_min_count, max_size=self.vocab_max_size
            ),
            include_users=False,
        )
        self.built = builder.build(corpus)
        adjacency = _HomogeneousAdjacency(self.built.activity)
        walks = self._generate_walks(adjacency, rng)
        self._train_skipgram(walks, rng)
        return self

    def _walk_from(
        self,
        start: int,
        adjacency: _HomogeneousAdjacency,
        rng: np.random.Generator,
    ) -> list[int]:
        """One truncated walk; subclasses override the transition rule."""
        walk = [start]
        while len(walk) < self.walk_length:
            nxt = adjacency.step(walk[-1], rng)
            if nxt is None:
                break
            walk.append(nxt)
        return walk

    def _generate_walks(
        self, adjacency: _HomogeneousAdjacency, rng: np.random.Generator
    ) -> list[list[int]]:
        nodes = np.arange(self.built.activity.n_nodes)
        walks: list[list[int]] = []
        for _round in range(self.walks_per_node):
            rng.shuffle(nodes)
            for start in nodes:
                walk = self._walk_from(int(start), adjacency, rng)
                if len(walk) > 1:
                    walks.append(walk)
        if not walks:
            raise RuntimeError("no walks generated; graph has no edges")
        return walks

    def _train_skipgram(
        self, walks: list[list[int]], rng: np.random.Generator
    ) -> None:
        pairs: list[tuple[int, int]] = []
        for walk in walks:
            for i, center in enumerate(walk):
                lo = max(0, i - self.window)
                hi = min(len(walk), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        pairs.append((center, walk[j]))
        pair_array = np.asarray(pairs, dtype=np.int64)

        activity = self.built.activity
        self.center, self.context = random_init(
            activity.n_nodes, self.dim_, rng
        )
        degree = activity.total_degree()
        nodes = np.flatnonzero(degree > 0)
        noise = AliasTable(np.power(degree[nodes], NOISE_POWER))
        n = pair_array.shape[0]
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = pair_array[order[start : start + self.batch_size]]
                progress = (epoch * n + start) / max(1, self.epochs * n)
                lr = self.lr * max(0.1, 1.0 - progress)
                neg = nodes[
                    noise.sample(batch.shape[0] * self.negatives, seed=rng)
                ].reshape(batch.shape[0], self.negatives)
                sgns_step(
                    self.center, self.context, batch[:, 0], batch[:, 1], neg, lr
                )

    # ----------------------------------------------------------------- score

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine candidate scores (see :class:`SpatiotemporalModel`)."""
        return GraphEmbeddingModel.score_candidates(
            self,
            target=target,
            candidates=candidates,
            time=time,
            location=location,
            words=words,
        )


class Node2Vec(DeepWalk):
    """node2vec: 2nd-order biased walks with return/in-out parameters.

    The unnormalized transition probability from ``prev -> current -> x``
    multiplies the edge weight by

    * ``1/p`` when ``x == prev`` (return),
    * ``1``   when ``x`` is a neighbor of ``prev`` (BFS-like, distance 1),
    * ``1/q`` otherwise (DFS-like, distance 2).

    ``p = q = 1`` reduces to DeepWalk.  The bias is applied by rejection-
    free reweighting per step (suitable at activity-graph degrees).
    """

    def __init__(self, dim: int = 64, *, p: float = 1.0, q: float = 1.0, **kwargs) -> None:
        super().__init__(dim, **kwargs)
        check_positive("p", p)
        check_positive("q", q)
        self.name = "node2vec"
        self.p = float(p)
        self.q = float(q)

    def _walk_from(
        self,
        start: int,
        adjacency: _HomogeneousAdjacency,
        rng: np.random.Generator,
    ) -> list[int]:
        walk = [start]
        prev: int | None = None
        while len(walk) < self.walk_length:
            current = walk[-1]
            neighbors = adjacency.neighbors.get(current)
            if neighbors is None or neighbors.size == 0:
                break
            weights = adjacency.weights[current].copy()
            if prev is not None:
                prev_neighbors = adjacency.neighbor_set(prev)
                for i, candidate in enumerate(neighbors):
                    c = int(candidate)
                    if c == prev:
                        weights[i] /= self.p
                    elif c not in prev_neighbors:
                        weights[i] /= self.q
            total = weights.sum()
            if total <= 0:
                break
            nxt = int(
                neighbors[rng.choice(neighbors.size, p=weights / total)]
            )
            prev = current
            walk.append(nxt)
        return walk
