"""MGTM baseline: Multi-Dirichlet geographical topic model (Kling et al. 2014).

The original MGTM is a non-parametric model that detects non-Gaussian
geographical clusters (via Fisher distributions over a geodesic grid) and
couples the topic mixtures of *adjacent* clusters through a multi-Dirichlet
process.  A full MDP sampler is out of scope for a comparison point that
Table 2 shows losing to every embedding method; we implement a truncated,
EM-based approximation that keeps MGTM's two distinguishing ingredients:

* **many small regions** (a finer spatial resolution than LGTA's Gaussian
  regions — the truncation of the region DP), and
* **neighbor-coupled topic mixtures**: after each M-step, every region's
  ``theta_r`` is shrunk toward the average of its k nearest regions,
  approximating the shared Dirichlet base measure of adjacent cells.

The class inherits all of LGTA's EM machinery and scoring; only the region
count default and the coupling step differ.  Like LGTA it cannot rank time
candidates (the "/" cells of Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lgta import LGTA
from repro.data.records import Corpus
from repro.utils.validation import check_probability

__all__ = ["MGTM"]


class MGTM(LGTA):
    """Truncated multi-Dirichlet geographical topic model.

    Parameters
    ----------
    coupling:
        Shrinkage weight toward neighboring regions' topic mixtures
        (0 recovers LGTA with more regions).
    n_neighbors:
        Number of nearest regions participating in the coupling.
    """

    def __init__(
        self,
        *,
        n_regions: int = 40,
        n_topics: int = 10,
        n_iter: int = 30,
        alpha: float = 0.1,
        beta: float = 0.01,
        coupling: float = 0.5,
        n_neighbors: int = 4,
        vocab_min_count: int = 2,
        vocab_max_size: int | None = 20_000,
        seed: int = 0,
    ) -> None:
        super().__init__(
            n_regions=n_regions,
            n_topics=n_topics,
            n_iter=n_iter,
            alpha=alpha,
            beta=beta,
            vocab_min_count=vocab_min_count,
            vocab_max_size=vocab_max_size,
            seed=seed,
        )
        check_probability("coupling", coupling)
        self.name = "MGTM"
        self.coupling = float(coupling)
        self.n_neighbors = int(n_neighbors)

    def _m_step(self, locations, flat_docs, flat_words, gamma, n_docs) -> None:
        super()._m_step(locations, flat_docs, flat_words, gamma, n_docs)
        if self.coupling <= 0.0 or self.n_regions < 2:
            return
        # Multi-Dirichlet coupling: each region's topic mixture is shrunk
        # toward the mean mixture of its nearest regions (by centre
        # distance), approximating the shared base measure of adjacent
        # clusters.
        k = min(self.n_neighbors, self.n_regions - 1)
        dist = np.linalg.norm(
            self.mu[:, None, :] - self.mu[None, :, :], axis=2
        )
        np.fill_diagonal(dist, np.inf)
        neighbor_idx = np.argsort(dist, axis=1)[:, :k]           # (R, k)
        neighbor_mean = self.theta[neighbor_idx].mean(axis=1)    # (R, Z)
        theta = (1.0 - self.coupling) * self.theta + self.coupling * neighbor_mean
        self.theta = theta / theta.sum(axis=1, keepdims=True)

    def fit(self, corpus: Corpus) -> "MGTM":
        """Run the coupled EM on ``corpus`` (see :class:`LGTA`)."""
        super().fit(corpus)
        return self
