"""metapath2vec baseline (Dong et al., KDD 2017).

A heterogeneous graph embedding that generates random walks constrained to
a *meta-path* — a cyclic sequence of vertex types — and trains skip-gram
with negative sampling on the walk windows.

Following the paper's experimental notes (Section 6.2.3), the default
meta-path is ``L - W - T - W`` with window size 3 and 5 negative samples;
the walks run on the activity graph without user vertices (random walks on
the sparse user interaction graph are reported to be ineffective).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SpatiotemporalModel
from repro.core.hierarchical import random_init
from repro.core.prediction import GraphEmbeddingModel
from repro.data.records import Corpus
from repro.data.text import Vocabulary
from repro.embedding.alias import AliasTable
from repro.embedding.edge_sampler import NOISE_POWER
from repro.embedding.sgns import sgns_step
from repro.graphs.activity_graph import ActivityGraph
from repro.graphs.builder import GraphBuilder
from repro.graphs.types import NodeType, edge_type_between
from repro.hotspots.detector import HotspotDetector
from repro.utils.rng import ensure_rng

__all__ = ["MetaPath2Vec"]

_TYPE_OF_LETTER = {
    "T": NodeType.TIME,
    "L": NodeType.LOCATION,
    "W": NodeType.WORD,
    "U": NodeType.USER,
}


class _TypedAdjacency:
    """Per-node alias samplers over neighbors of a requested type."""

    def __init__(self, activity: ActivityGraph) -> None:
        # neighbor lists keyed by (node, neighbor_type)
        lists: dict[tuple[int, NodeType], tuple[list[int], list[float]]] = {}
        for edge_set in activity.edge_sets.values():
            for u, v, w in zip(edge_set.src, edge_set.dst, edge_set.weight):
                u, v, w = int(u), int(v), float(w)
                tu, tv = activity.type_of(u), activity.type_of(v)
                lists.setdefault((u, tv), ([], []))[0].append(v)
                lists[(u, tv)][1].append(w)
                lists.setdefault((v, tu), ([], []))[0].append(u)
                lists[(v, tu)][1].append(w)
        self._tables: dict[tuple[int, NodeType], tuple[np.ndarray, AliasTable]] = {}
        for key, (neighbors, weights) in lists.items():
            self._tables[key] = (
                np.asarray(neighbors, dtype=np.int64),
                AliasTable(np.asarray(weights)),
            )

    def step(
        self, node: int, target_type: NodeType, rng: np.random.Generator
    ) -> int | None:
        """One weighted walk step from ``node`` to a ``target_type`` neighbor."""
        entry = self._tables.get((node, target_type))
        if entry is None:
            return None
        neighbors, table = entry
        return int(neighbors[table.sample_one(seed=rng)])


class MetaPath2Vec(SpatiotemporalModel, GraphEmbeddingModel):
    """Meta-path-guided random walks + heterogeneous skip-gram.

    Parameters
    ----------
    meta_path:
        Cyclic vertex-type pattern, e.g. ``"LWTW"`` (the paper's best for
        UTGEO2011/TWEET; ``"TLWW"`` is also reported for 4SQ).
    walks_per_node / walk_length:
        Walk generation budget, starting from every node of the meta-path's
        first type.
    window:
        Skip-gram context window over the walks (paper: 3).
    negatives:
        Negative samples per pair (paper: 5).
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        meta_path: str = "LWTW",
        walks_per_node: int = 8,
        walk_length: int = 40,
        window: int = 3,
        negatives: int = 5,
        lr: float = 0.025,
        batch_size: int = 256,
        epochs: int = 2,
        spatial_bandwidth: float = 0.5,
        temporal_bandwidth: float = 0.75,
        vocab_min_count: int = 2,
        vocab_max_size: int | None = 20_000,
        seed: int = 0,
    ) -> None:
        if not meta_path or any(c not in _TYPE_OF_LETTER for c in meta_path):
            raise ValueError(
                f"meta_path must be a string over T/L/W/U, got {meta_path!r}"
            )
        # Validate the pattern is walkable: consecutive types need edges.
        cyclic = meta_path + meta_path[0]
        for a, b in zip(cyclic, cyclic[1:]):
            edge_type_between(_TYPE_OF_LETTER[a], _TYPE_OF_LETTER[b])
        self.name = "metapath2vec"
        self.meta_path = meta_path
        self.dim_ = int(dim)
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.spatial_bandwidth = spatial_bandwidth
        self.temporal_bandwidth = temporal_bandwidth
        self.vocab_min_count = vocab_min_count
        self.vocab_max_size = vocab_max_size
        self.seed = seed

    # ------------------------------------------------------------------- fit

    def fit(self, corpus: Corpus) -> "MetaPath2Vec":
        """Train on ``corpus`` (see :class:`SpatiotemporalModel`)."""
        rng = ensure_rng(self.seed)
        builder = GraphBuilder(
            detector=HotspotDetector(
                spatial_bandwidth=self.spatial_bandwidth,
                temporal_bandwidth=self.temporal_bandwidth,
            ),
            vocab=Vocabulary(
                min_count=self.vocab_min_count, max_size=self.vocab_max_size
            ),
            include_users="U" in self.meta_path,
        )
        self.built = builder.build(corpus)
        activity = self.built.activity
        adjacency = _TypedAdjacency(activity)
        walks = self._generate_walks(activity, adjacency, rng)
        pairs = self._walk_pairs(walks)
        self._train(activity, pairs, rng)
        return self

    def _generate_walks(
        self,
        activity: ActivityGraph,
        adjacency: _TypedAdjacency,
        rng: np.random.Generator,
    ) -> list[list[int]]:
        """Meta-path-guided walks from every node the pattern can visit.

        Dong et al. start walks from every vertex whose type occurs in the
        meta-path (the pattern is rotated so the walk begins at that
        type's position); starting only from the first type would leave
        most of the graph unvisited when that type is rare (e.g. ~100
        location hotspots vs thousands of words).
        """
        pattern = [_TYPE_OF_LETTER[c] for c in self.meta_path]
        walks: list[list[int]] = []
        seen_types = set()
        for offset, start_type in enumerate(pattern):
            if start_type in seen_types:
                continue
            seen_types.add(start_type)
            rotated = pattern[offset:] + pattern[:offset]
            for start in activity.nodes_of_type(start_type):
                for _ in range(self.walks_per_node):
                    walk = [int(start)]
                    position = 0
                    while len(walk) < self.walk_length:
                        position += 1
                        target = rotated[position % len(rotated)]
                        nxt = adjacency.step(walk[-1], target, rng)
                        if nxt is None:
                            break
                        walk.append(nxt)
                    if len(walk) > 1:
                        walks.append(walk)
        return walks

    def _walk_pairs(self, walks: list[list[int]]) -> np.ndarray:
        """(center, context) node pairs within the skip-gram window."""
        pairs: list[tuple[int, int]] = []
        for walk in walks:
            for i, center in enumerate(walk):
                lo = max(0, i - self.window)
                hi = min(len(walk), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        pairs.append((center, walk[j]))
        if not pairs:
            raise RuntimeError("no skip-gram pairs generated; graph too sparse")
        return np.asarray(pairs, dtype=np.int64)

    def _train(
        self,
        activity: ActivityGraph,
        pairs: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self.center, self.context = random_init(
            activity.n_nodes, self.dim_, rng
        )
        # Global noise distribution over all nodes by total degree^0.75
        # (plain metapath2vec; the ++ variant would restrict to the context
        # type).
        degree = activity.total_degree()
        nodes = np.flatnonzero(degree > 0)
        noise = AliasTable(np.power(degree[nodes], NOISE_POWER))
        n = pairs.shape[0]
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = pairs[order[start : start + self.batch_size]]
                progress = (_epoch * n + start) / max(1, self.epochs * n)
                lr = self.lr * max(0.1, 1.0 - progress)
                neg = nodes[
                    noise.sample(batch.shape[0] * self.negatives, seed=rng)
                ].reshape(batch.shape[0], self.negatives)
                sgns_step(
                    self.center, self.context, batch[:, 0], batch[:, 1], neg, lr
                )

    # ----------------------------------------------------------------- score

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine candidate scores (see :class:`SpatiotemporalModel`)."""
        return GraphEmbeddingModel.score_candidates(
            self,
            target=target,
            candidates=candidates,
            time=time,
            location=location,
            words=words,
        )
