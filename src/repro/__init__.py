"""repro — a reproduction of ACTOR: Spatiotemporal Activity Modeling via
Hierarchical Cross-Modal Embedding (Liu et al., TKDE 2020 / ICDE 2023).

Quickstart::

    from repro import Actor, ActorConfig, generate_dataset

    data = generate_dataset("utgeo2011", n_records=8000, seed=7)
    model = Actor(ActorConfig(dim=64, epochs=20)).fit(data.train)
    scores = model.score_candidates(
        target="location",
        candidates=[r.location for r in data.test.records[:11]],
        time=21.5,
        words=["nightlife_00"],
    )

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.baselines import LGTA, MGTM, CrossMap, LineModel, MetaPath2Vec
from repro.core import Actor, ActorConfig, OnlineActor, QueryEngine
from repro.core.neighbor import spatial_query, temporal_query, textual_query
from repro.data import Corpus, Record, generate_dataset
from repro.eval import evaluate_models, format_mrr_table

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "ActorConfig",
    "OnlineActor",
    "QueryEngine",
    "Corpus",
    "Record",
    "generate_dataset",
    "CrossMap",
    "LineModel",
    "MetaPath2Vec",
    "LGTA",
    "MGTM",
    "evaluate_models",
    "format_mrr_table",
    "spatial_query",
    "temporal_query",
    "textual_query",
    "__version__",
]
