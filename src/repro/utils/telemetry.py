"""Telemetry export: Prometheus text format + JSONL traces on disk.

This module turns the in-process observability state — a
:class:`~repro.utils.metrics.MetricsRegistry` and optionally a
:class:`~repro.utils.tracing.Tracer` and a slow-query log — into files a
monitoring stack can consume:

* :func:`render_prometheus` serializes a registry in the Prometheus text
  exposition format (version 0.0.4): counters as ``*_total``, gauges
  verbatim, timers as summaries (``_sum`` / ``_count``) and histograms as
  classic cumulative ``_bucket{le=...}`` series;
* :func:`write_telemetry` dumps a whole telemetry directory —
  ``metrics.prom``, ``trace.jsonl``, ``slow_queries.jsonl``,
  ``alerts.jsonl``, ``requests.jsonl`` (the serving trace ring) — which
  is what the CLI's ``--telemetry-dir`` flags produce and the ``repro
  telemetry`` / ``repro tail`` subcommands read back;
* :func:`summarize_trace` / :func:`render_trace_summary` aggregate a span
  forest into a per-name latency table for operator eyeballs.

The naming convention: registry names are dotted (``stream.ingest``),
Prometheus names are the sanitized form under one namespace
(``repro_stream_ingest``).  Metric names carry their own unit suffix
(``*_seconds``) where the value is a duration.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.utils.metrics import MetricsRegistry
from repro.utils.tracing import Span, Tracer, load_trace, walk_spans

__all__ = [
    "prometheus_name",
    "render_prometheus",
    "write_telemetry",
    "read_telemetry",
    "summarize_trace",
    "render_trace_summary",
    "render_span_tree",
    "METRICS_FILENAME",
    "TRACE_FILENAME",
    "SLOW_QUERY_FILENAME",
    "ALERTS_FILENAME",
    "REQUESTS_FILENAME",
]

METRICS_FILENAME = "metrics.prom"
TRACE_FILENAME = "trace.jsonl"
SLOW_QUERY_FILENAME = "slow_queries.jsonl"
ALERTS_FILENAME = "alerts.jsonl"
REQUESTS_FILENAME = "requests.jsonl"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, *, namespace: str = "repro") -> str:
    """Sanitized ``namespace_name`` metric identifier.

    Dots and any other non-``[a-zA-Z0-9_]`` characters become
    underscores; runs collapse, so ``query.rank_batch`` maps to
    ``repro_query_rank_batch``.
    """
    flat = _INVALID_CHARS.sub("_", name)
    flat = re.sub(r"_+", "_", flat).strip("_")
    if not flat:
        raise ValueError(f"metric name {name!r} sanitizes to nothing")
    return f"{namespace}_{flat}" if namespace else flat


def _format_value(value: float) -> str:
    """Prometheus float formatting: integers without the trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, *, namespace: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Counters gain the conventional ``_total`` suffix; timers export as
    summaries with ``_seconds_sum`` / ``_seconds_count`` plus ``_min`` /
    ``_max`` gauges; histograms export cumulative ``_bucket`` series with
    ``le`` labels, ending in the mandatory ``le="+Inf"`` bucket.
    """
    lines: list[str] = []
    for name, counter in registry.counters().items():
        metric = prometheus_name(name, namespace=namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.value)}")
    for name, gauge in registry.gauges().items():
        metric = prometheus_name(name, namespace=namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, timer in registry.timers().items():
        metric = prometheus_name(name, namespace=namespace) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_sum {_format_value(timer.total)}")
        lines.append(f"{metric}_count {_format_value(timer.count)}")
        lines.append(f"# TYPE {metric}_min gauge")
        lines.append(
            f"{metric}_min {_format_value(timer.min if timer.count else 0.0)}"
        )
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {_format_value(timer.max)}")
    for name, hist in registry.histograms().items():
        metric = prometheus_name(name, namespace=namespace)
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in zip(hist.bounds, hist.cumulative_counts()):
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_format_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def _write_jsonl(path: Path, entries: list[dict]) -> Path:
    """Write ``entries`` as one JSON object per line; returns ``path``."""
    with path.open("w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry) + "\n")
    return path


def write_telemetry(
    directory: str | Path,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    slow_queries: list[dict] | None = None,
    *,
    alerts: list[dict] | None = None,
    requests: list[dict] | None = None,
    namespace: str = "repro",
) -> dict[str, Path]:
    """Dump a telemetry directory; returns the paths actually written.

    Writes ``metrics.prom`` when a registry is given, ``trace.jsonl``
    when a (real, recording) tracer is given, ``slow_queries.jsonl`` when
    a non-empty slow-query log is given, ``alerts.jsonl`` when a
    non-empty drift-alert list is given, and ``requests.jsonl`` when a
    non-empty request-trace list (ring entries from
    :class:`~repro.serving.reqtrace.TraceRing`) is given.  The directory
    is created as needed; existing files are overwritten — and files for
    sections *absent from this call* are deleted, so one directory
    always tracks exactly the latest run (a run with an empty slow-query
    log must not leave a previous run's ``slow_queries.jsonl`` behind).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    if registry is not None:
        path = directory / METRICS_FILENAME
        path.write_text(
            render_prometheus(registry, namespace=namespace), encoding="utf-8"
        )
        written["metrics"] = path
    else:
        (directory / METRICS_FILENAME).unlink(missing_ok=True)
    if tracer is not None and getattr(tracer, "enabled", False):
        written["trace"] = tracer.export_jsonl(directory / TRACE_FILENAME)
    else:
        (directory / TRACE_FILENAME).unlink(missing_ok=True)
    if slow_queries:
        written["slow_queries"] = _write_jsonl(
            directory / SLOW_QUERY_FILENAME, slow_queries
        )
    else:
        (directory / SLOW_QUERY_FILENAME).unlink(missing_ok=True)
    if alerts:
        written["alerts"] = _write_jsonl(directory / ALERTS_FILENAME, alerts)
    else:
        (directory / ALERTS_FILENAME).unlink(missing_ok=True)
    if requests:
        written["requests"] = _write_jsonl(
            directory / REQUESTS_FILENAME, requests
        )
    else:
        (directory / REQUESTS_FILENAME).unlink(missing_ok=True)
    return written


def _read_jsonl(path: Path) -> list[dict]:
    """Read a JSONL file into a list of dicts (empty when absent)."""
    if not path.exists():
        return []
    entries: list[dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def read_telemetry(directory: str | Path) -> dict:
    """Load whatever a telemetry directory contains.

    Returns a dict with ``metrics_text`` (raw Prometheus text or None),
    ``spans`` (list of root :class:`Span` trees), ``slow_queries``,
    ``alerts`` and ``requests`` (lists of dicts); missing files yield
    empty values rather than errors, so partially populated directories
    (e.g. train runs, which have no slow-query log) read cleanly.
    """
    directory = Path(directory)
    metrics_path = directory / METRICS_FILENAME
    trace_path = directory / TRACE_FILENAME
    metrics_text = (
        metrics_path.read_text(encoding="utf-8")
        if metrics_path.exists()
        else None
    )
    spans = load_trace(trace_path) if trace_path.exists() else []
    return {
        "metrics_text": metrics_text,
        "spans": spans,
        "slow_queries": _read_jsonl(directory / SLOW_QUERY_FILENAME),
        "alerts": _read_jsonl(directory / ALERTS_FILENAME),
        "requests": _read_jsonl(directory / REQUESTS_FILENAME),
    }


def summarize_trace(spans: list[Span]) -> dict[str, dict]:
    """Aggregate a span forest into per-name latency statistics.

    Returns ``name -> {count, total, mean, max}`` over *every* span in
    every tree (roots and descendants alike), sorted by total descending
    — the "where did the time go" table.
    """
    stats: dict[str, dict] = {}
    for _depth, span in walk_spans(spans):
        if span.duration is None:
            continue
        row = stats.setdefault(
            span.name, {"count": 0, "total": 0.0, "max": 0.0}
        )
        row["count"] += 1
        row["total"] += span.duration
        row["max"] = max(row["max"], span.duration)
    for row in stats.values():
        row["mean"] = row["total"] / row["count"]
    return dict(
        sorted(stats.items(), key=lambda kv: kv[1]["total"], reverse=True)
    )


def render_trace_summary(spans: list[Span], *, title: str = "spans") -> str:
    """Aligned text table of :func:`summarize_trace` output."""
    stats = summarize_trace(spans)
    if not stats:
        return f"{title}: (empty)"
    width = max(len(name) for name in stats)
    lines = [title, "-" * len(title)]
    for name, row in stats.items():
        lines.append(
            f"{name.ljust(width)}  n={row['count']:<6d} "
            f"total={row['total']:8.3f}s  mean={row['mean'] * 1e3:8.2f}ms  "
            f"max={row['max'] * 1e3:8.2f}ms"
        )
    return "\n".join(lines)


def render_span_tree(span: Span, *, max_depth: int = 6) -> str:
    """One span tree as an indented text outline (durations in ms)."""
    lines: list[str] = []
    for depth, node in walk_spans(span):
        if depth > max_depth:
            continue
        ms = (
            "open"
            if node.duration is None
            else f"{node.duration * 1e3:.2f}ms"
        )
        attrs = (
            " " + json.dumps(node.attributes, sort_keys=True)
            if node.attributes
            else ""
        )
        lines.append(f"{'  ' * depth}{node.name}  {ms}{attrs}")
    return "\n".join(lines)
