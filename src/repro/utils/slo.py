"""SLO objectives and multi-window burn-rate evaluation.

An SLO ("99.9% of requests succeed", "99% of requests finish in 250ms")
turns raw metrics into an error *budget*: at a 99.9% availability
target, 0.1% of requests may fail before the objective is broken.  The
**burn rate** is how fast that budget is being consumed — a burn of 1.0
spends exactly the budget over the objective window; a burn of 14.4
exhausts a 30-day budget in ~2 days.  Following the multi-window
pattern from the SRE workbook, :class:`SLOEngine` evaluates each
objective over a *fast* and a *slow* window and alerts only when **both**
burn above their thresholds: the slow window keeps a brief blip from
paging, the fast window ends the alert quickly once the bleeding stops.

The engine is source-agnostic: each objective reads a ``(good, total)``
cumulative pair from a callable.  Two factories cover the serving
stack — :func:`availability_source` diffs response counters, and
:func:`latency_source` reads the interpolated
:meth:`~repro.utils.metrics.Histogram.count_below` of the existing
log-spaced latency histogram.  Windowing over cumulative sources works
by snapshotting: every :meth:`SLOEngine.evaluate` call appends a
``(time, counts)`` snapshot and diffs against the oldest snapshot
inside each window, so no per-request state is kept.

Surfaced three ways: ``slo.*`` gauges/counters in the shared registry,
a :meth:`SLOEngine.status` provider for ``/healthz`` (worst-wins
``alerting`` when an objective burns hot), and the full per-window
detail under ``/varz``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable

from repro.utils.metrics import MetricsRegistry

__all__ = [
    "SLObjective",
    "BurnWindow",
    "SLOEngine",
    "availability_source",
    "latency_source",
    "DEFAULT_WINDOWS",
]


class SLObjective:
    """One objective: a name, a target fraction and (optionally) the
    latency threshold the target applies to.

    ``target`` is the required good/total fraction (e.g. ``0.999``);
    the error budget is ``1 - target``.  ``threshold`` is informational
    for latency objectives (the seconds bound the source encodes) and
    ``None`` for availability.
    """

    __slots__ = ("name", "target", "threshold", "description")

    def __init__(
        self,
        name: str,
        *,
        target: float,
        threshold: float | None = None,
        description: str = "",
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.name = name
        self.target = float(target)
        self.threshold = threshold
        self.description = description

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target tolerates."""
        return 1.0 - self.target


class BurnWindow:
    """One evaluation window: a lookback span and its alert threshold."""

    __slots__ = ("name", "seconds", "max_burn")

    def __init__(self, name: str, seconds: float, max_burn: float) -> None:
        self.name = name
        self.seconds = float(seconds)
        self.max_burn = float(max_burn)


#: SRE-workbook-style fast/slow pair: page when the 5-minute burn says
#: "budget gone in hours" AND the 1-hour burn confirms it is sustained.
DEFAULT_WINDOWS = (
    BurnWindow("fast", 300.0, 14.4),
    BurnWindow("slow", 3600.0, 6.0),
)


def availability_source(
    metrics: MetricsRegistry,
    *,
    total: str = "serve.responses",
    bad: str = "serve.responses_5xx",
) -> Callable[[], tuple[float, float]]:
    """``(good, total)`` from response counters: good = total - 5xx."""
    total_counter = metrics.counter(total)
    bad_counter = metrics.counter(bad)

    def read() -> tuple[float, float]:
        """Current cumulative (good, total) response counts."""
        all_responses = total_counter.value
        return all_responses - bad_counter.value, all_responses

    return read


def latency_source(
    metrics: MetricsRegistry,
    *,
    histogram: str = "serve.request_seconds",
    threshold: float,
) -> Callable[[], tuple[float, float]]:
    """``(good, total)`` from a latency histogram: good = obs <= threshold.

    Uses the interpolated :meth:`~repro.utils.metrics.Histogram
    .count_below`, so the estimate error is bounded by one log-spaced
    bucket — the same accuracy contract as the exported quantiles.
    """
    hist = metrics.histogram(histogram)

    def read() -> tuple[float, float]:
        """Current cumulative (fast-enough, total) observation counts."""
        return hist.count_below(threshold), float(hist.count)

    return read


class _Tracked:
    """An objective plus its source and last alert edge state."""

    __slots__ = ("objective", "source", "alerting")

    def __init__(self, objective: SLObjective, source) -> None:
        self.objective = objective
        self.source = source
        self.alerting = False


class SLOEngine:
    """Evaluates SLO burn rates over snapshots of cumulative sources.

    Parameters
    ----------
    metrics:
        Registry receiving ``slo.<name>.burn_<window>`` /
        ``slo.<name>.compliance`` gauges and the ``slo.breaches``
        counter (incremented once per ok->alerting edge).
    windows:
        The multi-window burn thresholds (default: 5m/14.4x + 1h/6x).
    min_interval:
        Snapshot resolution in seconds — evaluations closer together
        than this reuse the last snapshot instead of appending.
    min_requests:
        Windows with fewer than this many new requests report burn 0
        (a single failed request out of two must not page).
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        *,
        windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        min_interval: float = 1.0,
        min_requests: int = 10,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows:
            raise ValueError("SLOEngine needs at least one burn window")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.windows = tuple(windows)
        self.min_interval = float(min_interval)
        self.min_requests = int(min_requests)
        self._clock = clock
        self._tracked: list[_Tracked] = []
        self._snapshots: deque[tuple[float, dict[str, tuple[float, float]]]]
        self._snapshots = deque()
        self._lock = threading.Lock()
        self._horizon = max(w.seconds for w in self.windows) * 1.25

    def add_objective(
        self,
        objective: SLObjective,
        source: Callable[[], tuple[float, float]],
    ) -> SLObjective:
        """Track ``objective`` fed by ``source`` (a (good, total) callable)."""
        with self._lock:
            if any(
                t.objective.name == objective.name for t in self._tracked
            ):
                raise ValueError(
                    f"objective {objective.name!r} already registered"
                )
            self._tracked.append(_Tracked(objective, source))
        return objective

    @property
    def objectives(self) -> list[SLObjective]:
        """The registered objectives, in registration order."""
        with self._lock:
            return [t.objective for t in self._tracked]

    def _take_snapshot(self, now: float) -> dict[str, tuple[float, float]]:
        """Append (and prune) a snapshot; returns the current counts."""
        counts = {
            t.objective.name: t.source() for t in self._tracked
        }
        if (
            not self._snapshots
            or now - self._snapshots[-1][0] >= self.min_interval
        ):
            self._snapshots.append((now, counts))
            while (
                len(self._snapshots) > 2
                and now - self._snapshots[0][0] > self._horizon
            ):
                self._snapshots.popleft()
        return counts

    def _window_burn(
        self,
        name: str,
        window: BurnWindow,
        now: float,
        current: tuple[float, float],
        budget: float,
    ) -> dict:
        """Burn rate of one objective over one window (vs. its baseline).

        The baseline is the newest snapshot at or beyond the window's
        far edge (falling back to the oldest retained snapshot when the
        engine is younger than the window), so the diff approximates
        "what happened in the last ``window.seconds``".
        """
        baseline: tuple[float, float] | None = None
        for ts, counts in self._snapshots:
            if now - ts >= window.seconds:
                baseline = counts.get(name, (0.0, 0.0))
            else:
                if baseline is None:
                    baseline = counts.get(name, (0.0, 0.0))
                break
        if baseline is None:
            baseline = (0.0, 0.0)
        d_good = current[0] - baseline[0]
        d_total = current[1] - baseline[1]
        if d_total >= self.min_requests and d_total > 0:
            bad_fraction = max(0.0, (d_total - d_good) / d_total)
            burn = bad_fraction / budget if budget > 0 else 0.0
        else:
            bad_fraction = 0.0
            burn = 0.0
        return {
            "window_seconds": window.seconds,
            "requests": d_total,
            "bad_fraction": bad_fraction,
            "burn": burn,
            "max_burn": window.max_burn,
            "burning": burn > window.max_burn,
        }

    def evaluate(self) -> dict:
        """Evaluate every objective; updates ``slo.*`` metrics.

        Returns ``{"status": ..., "objectives": {name: {...}}}`` where
        an objective is ``alerting`` only when *every* window burns
        above its threshold (the multi-window AND), and the engine
        status is the worst objective status.
        """
        with self._lock:
            now = self._clock()
            current = self._take_snapshot(now)
            result: dict = {"status": "ok", "objectives": {}}
            for tracked in self._tracked:
                objective = tracked.objective
                good, total = current[objective.name]
                compliance = good / total if total > 0 else 1.0
                windows = {
                    w.name: self._window_burn(
                        objective.name, w, now,
                        current[objective.name], objective.budget,
                    )
                    for w in self.windows
                }
                alerting = all(w["burning"] for w in windows.values())
                if alerting and not tracked.alerting:
                    self.metrics.counter("slo.breaches").inc()
                tracked.alerting = alerting
                prefix = f"slo.{objective.name}"
                self.metrics.gauge(f"{prefix}.compliance").set(compliance)
                for wname, wdata in windows.items():
                    self.metrics.gauge(f"{prefix}.burn_{wname}").set(
                        wdata["burn"]
                    )
                detail = {
                    "target": objective.target,
                    "threshold": objective.threshold,
                    "compliance": compliance,
                    "requests": total,
                    "windows": windows,
                    "status": "alerting" if alerting else "ok",
                }
                result["objectives"][objective.name] = detail
                if alerting:
                    result["status"] = "alerting"
            return result

    def status(self) -> dict:
        """Telemetry status provider: ``/healthz`` + ``/varz`` surface.

        The top-level ``status`` key participates in the telemetry
        server's worst-wins merge, so a burning objective flips
        ``/healthz`` to 503/``alerting`` without any extra wiring.
        """
        evaluation = self.evaluate()
        return {
            "status": evaluation["status"],
            "slo": evaluation["objectives"],
        }
