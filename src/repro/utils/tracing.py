"""Lightweight span tracing for the ACTOR pipeline.

Where :mod:`repro.utils.metrics` answers "how often / how long in
aggregate", a trace answers "where did *this* operation spend its time".
A :class:`Tracer` records a forest of :class:`Span` trees: each span has a
name, wall-clock start/duration, free-form attributes and nested children.
Nesting is implicit — entering ``tracer.span(...)`` while another span is
open parents the new span under it, so instrumented call stacks come out
as trees without any plumbing.

The instrumented modules accept an optional tracer and default to the
shared :data:`NULL_TRACER`, whose ``span()`` returns a cached no-op
context manager — a single attribute lookup and method call, cheap enough
to leave on hot paths unconditionally.

Traces export to JSONL (:meth:`Tracer.export_jsonl`; one root span tree
per line) and load back with :func:`load_trace` for offline analysis —
see ``repro telemetry`` and :mod:`repro.utils.telemetry`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "walk_spans",
]


class Span:
    """One timed operation: name, start, duration, attributes, children.

    ``start`` is in seconds relative to the owning tracer's creation (so
    spans across a trace share one clock); ``duration`` is ``None`` while
    the span is still open.  ``span_id`` is a tracer-unique identifier
    (``s1``, ``s2``, ...) that structured log records reference to
    correlate logs with traces (see :mod:`repro.utils.logging`); spans
    built by hand may leave it ``None``.
    """

    __slots__ = (
        "name", "start", "duration", "attributes", "children", "span_id"
    )

    def __init__(
        self,
        name: str,
        start: float,
        duration: float | None = None,
        attributes: dict | None = None,
        children: list["Span"] | None = None,
        span_id: str | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.attributes = attributes if attributes is not None else {}
        self.children = children if children is not None else []
        self.span_id = span_id

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def child_seconds(self) -> float:
        """Summed duration of the direct children (0 for leaves)."""
        return sum(c.duration or 0.0 for c in self.children)

    def self_seconds(self) -> float:
        """Duration not attributed to any child span."""
        return max(0.0, (self.duration or 0.0) - self.child_seconds())

    def to_dict(self) -> dict:
        """JSON-safe nested representation (the JSONL line format)."""
        out = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
            "children": [c.to_dict() for c in self.children],
        }
        if self.span_id is not None:
            out["span_id"] = self.span_id
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            start=float(data["start"]),
            duration=None if data["duration"] is None else float(data["duration"]),
            attributes=dict(data.get("attributes", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
            span_id=data.get("span_id"),
        )

    def __repr__(self) -> str:
        ms = "open" if self.duration is None else f"{self.duration * 1e3:.2f}ms"
        return f"Span({self.name!r}, {ms}, children={len(self.children)})"


class Tracer:
    """Collects span trees; spans nest via a context-manager stack.

    Safe for concurrent use: the active-span stack lives in
    ``threading.local`` storage, so spans opened on one thread nest only
    under spans opened by that *same* thread — interleaved requests on
    independent handler threads each produce their own root tree instead
    of corrupting each other's nesting.  ``roots`` (and
    :meth:`export_jsonl`) merge every thread's finished trees; root
    appends and span-id allocation are lock-protected, while child
    appends stay lock-free (a span's parent is always owned by the
    appending thread).

    Usage::

        tracer = Tracer()
        with tracer.span("stream.partial_fit", records=256) as root:
            with tracer.span("stream.ingest"):
                ...
            root.set(edges=n_edges)
        tracer.export_jsonl("out/trace.jsonl")
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._next_id = 0

    def __getstate__(self) -> dict:
        """Pickle support: thread-local stacks and the lock are dropped
        (instrumented models may carry their tracer through ``save``)."""
        state = self.__dict__.copy()
        del state["_local"]
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        """Pickle support: fresh thread-local storage and lock on load."""
        self.__dict__.update(state)
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's private stack of open spans."""
        try:
            return self._local.stack
        except AttributeError:
            stack: list[Span] = []
            self._local.stack = stack
            return stack

    @property
    def enabled(self) -> bool:
        """True — real tracers record; the :class:`NullTracer` does not."""
        return True

    @property
    def current_span(self) -> Span | None:
        """The calling thread's innermost open span, or ``None``."""
        stack = self._stack
        return stack[-1] if stack else None

    @property
    def current_span_id(self) -> str | None:
        """Id of the innermost open span — what log records attach."""
        span = self.current_span
        return span.span_id if span is not None else None

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a span; nested calls become children of the innermost open
        span.  The span's duration is stamped on exit (also on exception)."""
        with self._lock:
            self._next_id += 1
            span_id = f"s{self._next_id}"
        span = Span(
            name,
            time.perf_counter() - self._epoch,
            None,
            attributes,
            span_id=span_id,
        )
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.duration = (
                time.perf_counter() - self._epoch - span.start
            )
            stack.pop()

    def total_seconds(self, name: str) -> float:
        """Summed duration of every *root* span named ``name``."""
        with self._lock:
            roots = list(self.roots)
        return sum(r.duration or 0.0 for r in roots if r.name == name)

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per root span tree (all threads merged,
        in root-open order); returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            roots = list(self.roots)
        with path.open("w", encoding="utf-8") as handle:
            for root in roots:
                handle.write(json.dumps(root.to_dict()) + "\n")
        return path

    def clear(self) -> None:
        """Drop every recorded root span (open spans keep nesting)."""
        with self._lock:
            self.roots.clear()


class NullTracer:
    """No-op tracer: ``span()`` returns a cached no-op context manager.

    Instrumented code holds one of these by default, so tracing costs one
    method call per span site when disabled.
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        """False: spans are discarded."""
        return False

    @property
    def current_span(self) -> None:
        """Always ``None``: a null tracer has no open spans."""
        return None

    @property
    def current_span_id(self) -> None:
        """Always ``None`` — log records stay uncorrelated."""
        return None

    def span(self, name: str, **attributes):
        """A shared no-op context manager yielding a no-op span."""
        return _NULL_CONTEXT

    def export_jsonl(self, path: str | Path) -> Path:
        """Refuse: a null tracer has nothing to export."""
        raise RuntimeError("NullTracer records nothing; use Tracer() to export")


class _NullSpan:
    __slots__ = ()

    def set(self, **attributes) -> None:
        """Discard attributes."""


_NULL_CONTEXT = nullcontext(_NullSpan())
NULL_TRACER = NullTracer()


def load_trace(path: str | Path) -> list[Span]:
    """Read a :meth:`Tracer.export_jsonl` file back into span trees."""
    spans: list[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def walk_spans(spans: list[Span] | Span) -> Iterator[tuple[int, Span]]:
    """Yield ``(depth, span)`` over one or many span trees, pre-order."""
    stack: list[tuple[int, Span]] = [
        (0, s) for s in reversed(spans if isinstance(spans, list) else [spans])
    ]
    while stack:
        depth, span = stack.pop()
        yield depth, span
        for child in reversed(span.children):
            stack.append((depth + 1, child))
