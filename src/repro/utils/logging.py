"""Structured JSONL logging with trace correlation and hot-loop dedup.

Operational events — a slow query batch, a drift alarm, a buffer hitting
capacity — need to land somewhere greppable *and* joinable against the
other telemetry.  :class:`StructuredLogger` writes one JSON object per
line with three guarantees:

* **trace correlation** — when constructed with a
  :class:`~repro.utils.tracing.Tracer`, every record carries the id of the
  innermost open span (``"span": "s17"``), so a log line found in
  ``events.jsonl`` can be joined against the exact ``trace.jsonl`` subtree
  that produced it;
* **rate-limited dedup** — warnings fired from hot loops (one per batch,
  thousands per run) collapse: after the first emission of a
  ``(level, event)`` pair, repeats inside ``rate_limit_seconds`` are
  counted but not written, and the next emitted record reports how many
  were ``"suppressed"``.  Errors are never suppressed;
* **thread safety** — a single lock serializes emission, so the streaming
  thread and a telemetry-server thread can share one logger.

Records are JSON-safe dicts: ``{"ts", "level", "event", "span", ...}``
plus the caller's fields.  The logger keeps a bounded in-memory tail
(:attr:`StructuredLogger.recent`) for the ``/varz`` endpoint and tests,
and optionally appends to a file.  The shared :data:`NULL_LOGGER` is the
no-op default instrumented code holds, mirroring
:data:`~repro.utils.tracing.NULL_TRACER`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import IO

__all__ = ["StructuredLogger", "NullLogger", "NULL_LOGGER", "read_log"]

LEVELS = ("debug", "info", "warning", "error")


class StructuredLogger:
    """JSONL event logger with span correlation and per-event dedup.

    Parameters
    ----------
    path:
        Optional file to append records to (created with parents; one JSON
        object per line).
    stream:
        Optional open text stream to write to instead of / in addition to
        ``path`` (e.g. ``sys.stderr`` for a foreground deployment).
    tracer:
        Optional :class:`~repro.utils.tracing.Tracer`; each record then
        carries the currently open span's id under ``"span"``.
    rate_limit_seconds:
        Dedup window for warnings: repeats of the same ``(level, event)``
        inside the window are suppressed and counted.  ``0`` disables
        dedup entirely.
    recent_size:
        How many records the in-memory :attr:`recent` tail retains.
    clock:
        Wall-clock source (seconds since epoch); injectable for tests.
    """

    def __init__(
        self,
        *,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
        tracer=None,
        rate_limit_seconds: float = 30.0,
        recent_size: int = 256,
        clock=time.time,
    ) -> None:
        if rate_limit_seconds < 0:
            raise ValueError(
                f"rate_limit_seconds must be >= 0, got {rate_limit_seconds}"
            )
        self.tracer = tracer
        self.rate_limit_seconds = float(rate_limit_seconds)
        self.recent: deque[dict] = deque(maxlen=int(recent_size))
        self._clock = clock
        self._stream = stream
        self._handle: IO[str] | None = None
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        # (level, event) -> [last emitted monotonic time, suppressed count]
        self._dedup: dict[tuple[str, str], list] = {}
        self.emitted = 0
        self.suppressed = 0

    # ---------------------------------------------------------------- emit

    def log(
        self, level: str, event: str, *, dedup: bool | None = None, **fields
    ) -> dict | None:
        """Emit one record; returns it, or ``None`` when suppressed.

        ``dedup`` controls rate limiting for this call: the default
        (``None``) applies it to ``warning`` records only — the hot-loop
        case — while ``debug``/``info`` flow freely and ``error`` is never
        suppressed regardless of the flag.
        """
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        if dedup is None:
            dedup = level == "warning"
        if level == "error":
            dedup = False
        with self._lock:
            suppressed_count = 0
            if dedup and self.rate_limit_seconds > 0:
                key = (level, event)
                now = time.monotonic()
                entry = self._dedup.get(key)
                if (
                    entry is not None
                    and now - entry[0] < self.rate_limit_seconds
                ):
                    entry[1] += 1
                    self.suppressed += 1
                    return None
                if entry is not None:
                    suppressed_count = entry[1]
                self._dedup[key] = [now, 0]
            record = {"ts": float(self._clock()), "level": level, "event": event}
            if self.tracer is not None:
                record["span"] = self.tracer.current_span_id
            if suppressed_count:
                record["suppressed"] = suppressed_count
            record.update(fields)
            self._write_record(record)
            return record

    def _write_record(self, record: dict) -> None:
        """Append one record to the tail and sinks (caller holds the lock)."""
        self.recent.append(record)
        self.emitted += 1
        line = json.dumps(record)
        if self._handle is not None:
            self._handle.write(line + "\n")
            self._handle.flush()
        if self._stream is not None:
            self._stream.write(line + "\n")

    def debug(self, event: str, **fields) -> dict | None:
        """Emit a ``debug`` record (never deduped by default)."""
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> dict | None:
        """Emit an ``info`` record (never deduped by default)."""
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> dict | None:
        """Emit a ``warning`` record (rate-limited dedup by default)."""
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> dict | None:
        """Emit an ``error`` record (never suppressed)."""
        return self.log("error", event, **fields)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Flush pending suppressed tallies, then close the owned handle.

        Dedup normally attaches the suppressed count of a ``(level,
        event)`` key to that event's *next* emission — a count still
        pending when the run ends would silently vanish.  Close therefore
        writes one final summary record per key with a nonzero pending
        count (``"suppressed_flush": true``) before releasing the file
        handle, and zeroes the per-key tallies so a second :meth:`close`
        (the method stays idempotent) flushes nothing twice.
        :attr:`suppressed` keeps counting every record that was actually
        suppressed; the flush reports those counts, it does not undo them.
        """
        with self._lock:
            for (level, event), entry in self._dedup.items():
                if not entry[1]:
                    continue
                record = {
                    "ts": float(self._clock()),
                    "level": level,
                    "event": event,
                }
                if self.tracer is not None:
                    record["span"] = self.tracer.current_span_id
                record["suppressed"] = entry[1]
                record["suppressed_flush"] = True
                entry[1] = 0
                self._write_record(record)
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "StructuredLogger":
        """Context-manager entry: the logger itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the owned file handle."""
        self.close()


class NullLogger:
    """No-op logger: every method discards its record and returns ``None``.

    Instrumented code holds this by default so a log call on a hot path
    costs one method dispatch when logging is off.
    """

    __slots__ = ()

    def log(self, level: str, event: str, *, dedup=None, **fields) -> None:
        """Discard the record."""

    def debug(self, event: str, **fields) -> None:
        """Discard the record."""

    def info(self, event: str, **fields) -> None:
        """Discard the record."""

    def warning(self, event: str, **fields) -> None:
        """Discard the record."""

    def error(self, event: str, **fields) -> None:
        """Discard the record."""

    def close(self) -> None:
        """Nothing to close."""


NULL_LOGGER = NullLogger()


def read_log(path: str | Path) -> list[dict]:
    """Load a JSONL log file back into a list of record dicts."""
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
