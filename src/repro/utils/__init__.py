"""Shared utilities: seeded randomness, validation helpers, timing."""

from repro.utils.metrics import Counter, Gauge, MetricsRegistry, TimerStat
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "Counter",
    "Gauge",
    "TimerStat",
    "MetricsRegistry",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_shape",
]
