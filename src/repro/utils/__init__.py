"""Shared utilities: seeded randomness, validation, timing, observability."""

from repro.utils.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerStat,
)
from repro.utils.logging import NULL_LOGGER, NullLogger, StructuredLogger, read_log
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.telemetry import (
    read_telemetry,
    render_prometheus,
    render_span_tree,
    render_trace_summary,
    summarize_trace,
    write_telemetry,
)
from repro.utils.telemetry_server import TelemetryServer
from repro.utils.timing import Timer
from repro.utils.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    walk_spans,
)
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "Counter",
    "Gauge",
    "TimerStat",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "walk_spans",
    "StructuredLogger",
    "NullLogger",
    "NULL_LOGGER",
    "read_log",
    "TelemetryServer",
    "render_prometheus",
    "write_telemetry",
    "read_telemetry",
    "summarize_trace",
    "render_trace_summary",
    "render_span_tree",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_shape",
]
