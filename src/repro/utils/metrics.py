"""Lightweight runtime metrics: counters, gauges and timers.

The streaming subsystem (and, optionally, the offline trainer) records its
operational state — records/sec ingested, buffer occupancy, evictions,
alias-table rebuilds, per-burst SGNS loss — into a
:class:`MetricsRegistry`.  The registry is deliberately dependency-free and
cheap: a metric update is a dict lookup plus a float add, so it can sit on
hot paths without being the thing the profiler finds.

Four metric kinds cover the needs of the codebase:

* :class:`Counter` — monotonically increasing totals (records ingested,
  edges buffered, evictions);
* :class:`Gauge` — last-written values (buffer occupancy, per-burst loss);
* :class:`TimerStat` — accumulated durations with call counts, giving
  mean latency and throughput (``count / total``) for free;
* :class:`Histogram` — fixed log-spaced buckets with p50/p90/p99 quantile
  estimates, for latency *distributions* (ingestion bursts, query batches,
  alias-table rebuilds) where a mean hides the tail.

Registries are plain objects, not process-global state: each
:class:`~repro.core.streaming.OnlineActor` owns one, and callers that want
a shared view pass one in.  ``snapshot()`` returns plain dicts (JSON-safe)
and ``render()`` produces the aligned text table the CLI prints for
``repro stream --metrics``.

Thread-safety: metric *creation* and the reporting accessors
(``counters()`` .. ``histograms()``, ``snapshot()``) synchronize on an
internal lock, so a live scrape thread (see
:mod:`repro.utils.telemetry_server`) can iterate the registry while a
worker thread registers new metrics.  Individual updates (``inc``/``set``/
``observe``) stay lock-free — they are small enough to be effectively
atomic under the GIL, and a scrape observing a histogram mid-``observe``
merely reads a snapshot one sample old.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = ["Counter", "Gauge", "TimerStat", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value (occupancy, most recent loss, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class TimerStat:
    """Accumulated wall-clock durations with a call count.

    ``rate`` is calls per second of measured time — for a timer wrapping
    ``partial_fit`` over fixed-size batches this is directly proportional
    to ingestion throughput.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one measured duration."""
        if seconds < 0:
            raise ValueError(f"durations must be >= 0, got {seconds}")
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        """Mean duration per call (0 when never observed)."""
        return self.total / self.count if self.count else 0.0

    @property
    def rate(self) -> float:
        """Calls per second of measured time (0 when no time measured)."""
        return self.count / self.total if self.total > 0 else 0.0


def default_latency_buckets() -> tuple[float, ...]:
    """The default histogram bounds: 1µs to ~67s, doubling per bucket.

    27 log-spaced upper bounds cover every latency this codebase measures
    (sub-millisecond alias rebuilds up to multi-second training epochs)
    with a worst-case quantile resolution of one octave.
    """
    return tuple(1e-6 * 2.0**i for i in range(27))


class Histogram:
    """Fixed-bucket distribution with quantile estimates.

    Buckets are defined by sorted upper ``bounds`` (Prometheus ``le``
    semantics: bucket ``i`` counts observations ``<= bounds[i]``, with one
    implicit overflow bucket above the last bound).  The default bounds
    are log-spaced latencies (:func:`default_latency_buckets`), so an
    ``observe`` is one ``bisect`` on a 27-tuple plus two float adds —
    cheap enough for per-batch hot paths.

    Quantiles are estimated by linear interpolation inside the containing
    bucket (clamped to the observed min/max), so the error is bounded by
    the bucket width — one octave for the default bounds.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        if bounds is None:
            bounds = default_latency_buckets()
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0, got {value}")
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); 0 when empty.

        Finds the bucket containing the target rank and interpolates
        linearly between the bucket's bounds, clamped to the observed
        ``[min, max]`` range so estimates never leave the data.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.max
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    @property
    def p50(self) -> float:
        """Estimated median."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """Estimated 90th percentile."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """Estimated 99th percentile."""
        return self.quantile(0.99)

    def count_below(self, value: float) -> float:
        """Estimated observations ``<= value`` (possibly fractional).

        Exact at bucket bounds, linearly interpolated inside the
        containing bucket — the same estimate :meth:`quantile` inverts.
        This is what turns a log-spaced latency histogram into the
        good-event count of a threshold SLO (see :mod:`repro.utils.slo`):
        ``count_below(0.25)`` is "requests served in <= 250ms so far".
        """
        if self.count == 0 or value < 0.0:
            return 0.0
        if value >= self.max:
            return float(self.count)
        index = bisect_left(self.bounds, value)
        running = float(sum(self.bucket_counts[:index]))
        lower = self.bounds[index - 1] if index > 0 else 0.0
        upper = self.bounds[index] if index < len(self.bounds) else self.max
        if upper <= lower:
            return running
        fraction = (value - lower) / (upper - lower)
        return running + fraction * self.bucket_counts[index]

    def cumulative_counts(self) -> list[int]:
        """Cumulative count per bound (Prometheus ``le`` buckets),
        excluding the overflow bucket — ``count`` is the ``+Inf`` value."""
        out: list[int] = []
        running = 0
        for bucket_count in self.bucket_counts[:-1]:
            running += bucket_count
            out.append(running)
        return out


class MetricsRegistry:
    """Named counters, gauges, timers and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, TimerStat] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle support: the lock is dropped (models carry registries)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        """Pickle support: a fresh lock is created on load."""
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------- accessors

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if absent."""
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if absent."""
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> TimerStat:
        """The timer called ``name``, created if absent."""
        try:
            return self._timers[name]
        except KeyError:
            with self._lock:
                return self._timers.setdefault(name, TimerStat())

    def histogram(
        self, name: str, *, bounds: Sequence[float] | None = None
    ) -> Histogram:
        """The histogram called ``name``, created if absent.

        ``bounds`` only applies on creation; later calls return the
        existing histogram unchanged.
        """
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram(bounds))

    @contextmanager
    def time(self, name: str) -> Iterator[TimerStat]:
        """Context manager recording the block's duration under ``name``."""
        stat = self.timer(name)
        start = time.perf_counter()
        try:
            yield stat
        finally:
            stat.observe(time.perf_counter() - start)

    # -------------------------------------------------------------- reporting

    def counters(self) -> dict[str, Counter]:
        """Name -> :class:`Counter`, sorted by name (export surface)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, Gauge]:
        """Name -> :class:`Gauge`, sorted by name (export surface)."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def timers(self) -> dict[str, TimerStat]:
        """Name -> :class:`TimerStat`, sorted by name (export surface)."""
        with self._lock:
            return dict(sorted(self._timers.items()))

    def histograms(self) -> dict[str, Histogram]:
        """Name -> :class:`Histogram`, sorted by name (export surface)."""
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict:
        """All metric values as plain (JSON-safe) dicts."""
        return {
            "counters": {k: c.value for k, c in self.counters().items()},
            "gauges": {k: g.value for k, g in self.gauges().items()},
            "timers": {
                k: {
                    "count": t.count,
                    "total": t.total,
                    "mean": t.mean,
                    "min": t.min if t.count else 0.0,
                    "max": t.max,
                }
                for k, t in self.timers().items()
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min if h.count else 0.0,
                    "max": h.max,
                    "p50": h.p50,
                    "p90": h.p90,
                    "p99": h.p99,
                }
                for k, h in self.histograms().items()
            },
        }

    def render(self, *, title: str = "metrics") -> str:
        """Aligned text table of every metric (CLI / bench output)."""
        rows: list[tuple[str, str]] = []
        for name, counter in self.counters().items():
            rows.append((name, f"{counter.value:g}"))
        for name, gauge in self.gauges().items():
            rows.append((name, f"{gauge.value:g}"))
        for name, timer in self.timers().items():
            rows.append(
                (
                    name,
                    f"{timer.total:.3f}s over {timer.count} calls "
                    f"(mean {timer.mean * 1e3:.2f}ms)",
                )
            )
        for name, hist in self.histograms().items():
            rows.append(
                (
                    name,
                    f"n={hist.count} p50={hist.p50 * 1e3:.2f}ms "
                    f"p90={hist.p90 * 1e3:.2f}ms p99={hist.p99 * 1e3:.2f}ms",
                )
            )
        if not rows:
            return f"{title}: (empty)"
        width = max(len(name) for name, _ in rows)
        lines = [title, "-" * len(title)]
        lines += [f"{name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric (fresh registry state)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()
