"""Lightweight runtime metrics: counters, gauges and timers.

The streaming subsystem (and, optionally, the offline trainer) records its
operational state — records/sec ingested, buffer occupancy, evictions,
alias-table rebuilds, per-burst SGNS loss — into a
:class:`MetricsRegistry`.  The registry is deliberately dependency-free and
cheap: a metric update is a dict lookup plus a float add, so it can sit on
hot paths without being the thing the profiler finds.

Three metric kinds cover the needs of the codebase:

* :class:`Counter` — monotonically increasing totals (records ingested,
  edges buffered, evictions);
* :class:`Gauge` — last-written values (buffer occupancy, per-burst loss);
* :class:`TimerStat` — accumulated durations with call counts, giving
  mean latency and throughput (``count / total``) for free.

Registries are plain objects, not process-global state: each
:class:`~repro.core.streaming.OnlineActor` owns one, and callers that want
a shared view pass one in.  ``snapshot()`` returns plain dicts (JSON-safe)
and ``render()`` produces the aligned text table the CLI prints for
``repro stream --metrics``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Counter", "Gauge", "TimerStat", "MetricsRegistry"]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value (occupancy, most recent loss, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class TimerStat:
    """Accumulated wall-clock durations with a call count.

    ``rate`` is calls per second of measured time — for a timer wrapping
    ``partial_fit`` over fixed-size batches this is directly proportional
    to ingestion throughput.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one measured duration."""
        if seconds < 0:
            raise ValueError(f"durations must be >= 0, got {seconds}")
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        """Mean duration per call (0 when never observed)."""
        return self.total / self.count if self.count else 0.0

    @property
    def rate(self) -> float:
        """Calls per second of measured time (0 when no time measured)."""
        return self.count / self.total if self.total > 0 else 0.0


class MetricsRegistry:
    """Named counters, gauges and timers, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, TimerStat] = {}

    # ------------------------------------------------------------- accessors

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if absent."""
        try:
            return self._counters[name]
        except KeyError:
            self._counters[name] = metric = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if absent."""
        try:
            return self._gauges[name]
        except KeyError:
            self._gauges[name] = metric = Gauge()
            return metric

    def timer(self, name: str) -> TimerStat:
        """The timer called ``name``, created if absent."""
        try:
            return self._timers[name]
        except KeyError:
            self._timers[name] = metric = TimerStat()
            return metric

    @contextmanager
    def time(self, name: str) -> Iterator[TimerStat]:
        """Context manager recording the block's duration under ``name``."""
        stat = self.timer(name)
        start = time.perf_counter()
        try:
            yield stat
        finally:
            stat.observe(time.perf_counter() - start)

    # -------------------------------------------------------------- reporting

    def snapshot(self) -> dict:
        """All metric values as plain (JSON-safe) dicts."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "timers": {
                k: {
                    "count": t.count,
                    "total": t.total,
                    "mean": t.mean,
                    "min": t.min if t.count else 0.0,
                    "max": t.max,
                }
                for k, t in sorted(self._timers.items())
            },
        }

    def render(self, *, title: str = "metrics") -> str:
        """Aligned text table of every metric (CLI / bench output)."""
        rows: list[tuple[str, str]] = []
        for name, counter in sorted(self._counters.items()):
            rows.append((name, f"{counter.value:g}"))
        for name, gauge in sorted(self._gauges.items()):
            rows.append((name, f"{gauge.value:g}"))
        for name, timer in sorted(self._timers.items()):
            rows.append(
                (
                    name,
                    f"{timer.total:.3f}s over {timer.count} calls "
                    f"(mean {timer.mean * 1e3:.2f}ms)",
                )
            )
        if not rows:
            return f"{title}: (empty)"
        width = max(len(name) for name, _ in rows)
        lines = [title, "-" * len(title)]
        lines += [f"{name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric (fresh registry state)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
