"""Seeded random-number-generator helpers.

Every stochastic component in this library accepts either an integer seed, a
``numpy.random.Generator``, or ``None``.  ``ensure_rng`` normalizes all three
into a ``Generator`` so call sites never branch on the type themselves, and
``spawn_rng`` derives independent child generators for sub-components so that
two components seeded from the same parent do not consume each other's
stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rng"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
