"""Small argument-validation helpers used across the library.

These raise early with informative messages rather than letting NumPy emit
an opaque broadcasting error three stack frames deeper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_probability", "check_finite", "check_shape"]


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_finite(name: str, array: np.ndarray) -> None:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity."""
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")


def check_shape(name: str, array: np.ndarray, shape: tuple[int | None, ...]) -> None:
    """Raise ``ValueError`` unless ``array.shape`` matches ``shape``.

    ``None`` entries in ``shape`` match any extent along that axis.
    """
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {shape} (axis {axis})"
            )
