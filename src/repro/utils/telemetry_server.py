"""Live telemetry HTTP service: ``/metrics``, ``/healthz``, ``/varz``.

PR 3's telemetry is post-mortem — ``metrics.prom`` written once at process
exit.  :class:`TelemetryServer` turns the same in-process state into a
*live* service: a stdlib :class:`~http.server.ThreadingHTTPServer` running
on a daemon thread, rendering the **current**
:class:`~repro.utils.metrics.MetricsRegistry` on every scrape, so a
Prometheus agent pointed at ``/metrics`` watches a streaming deployment
degrade (or recover) in real time instead of reading its obituary.

Endpoints:

* ``GET /metrics`` — Prometheus text exposition format (0.0.4), rendered
  from the live registry at request time;
* ``GET /healthz`` — JSON liveness summary: uptime, heartbeat age
  (:meth:`TelemetryServer.heartbeat` is called once per ingested batch),
  and whatever the registered status providers report (buffer occupancy,
  drift watchdog status); overall ``"status"`` is the worst across
  sources (``ok`` < ``stale`` < ``alerting``);
* ``GET /varz`` — raw JSON debug snapshot: the full registry
  ``snapshot()``, recent slow queries, recent log records, provider
  state.

The server binds ``127.0.0.1`` by default and supports ``port=0`` for an
ephemeral port (tests); the bound port is exposed as
:attr:`TelemetryServer.port` after :meth:`start`.  Registry reads are safe
against concurrent metric creation because
:class:`~repro.utils.metrics.MetricsRegistry` locks its export surface.

Usage::

    server = TelemetryServer(metrics, tracer=tracer)
    server.add_status_provider(watchdog.status)
    with server:                      # start() / stop()
        for batch in stream:
            model.partial_fit(batch)
            server.heartbeat()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.utils.metrics import MetricsRegistry
from repro.utils.telemetry import render_prometheus

__all__ = ["TelemetryServer"]

# healthz status severity order; providers may report any of these.
_STATUS_RANK = {"ok": 0, "stale": 1, "alerting": 2}


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to the owning :class:`TelemetryServer`."""

    # Built once per TelemetryServer via type(); the server injects itself.
    telemetry: "TelemetryServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Route ``/metrics`` / ``/healthz`` / ``/varz``; 404 otherwise."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        rendered = self.telemetry.respond_get(path)
        if rendered is None:
            self._respond_json(404, {"error": f"no such endpoint: {path}"})
            return
        status, body, content_type = rendered
        self._respond(status, body, content_type)

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        """Send one complete response."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, payload: dict) -> None:
        """Send ``payload`` as a JSON response."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._respond(status, body, "application/json; charset=utf-8")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs to the structured logger instead of stderr."""
        logger = self.telemetry.logger
        if logger is not None:
            logger.debug("telemetry.request", detail=format % args)


class TelemetryServer:
    """Serve live metrics/health/debug state over HTTP from a daemon thread.

    Parameters
    ----------
    registry:
        The live :class:`~repro.utils.metrics.MetricsRegistry` to render on
        every ``/metrics`` scrape.
    port:
        TCP port to bind; ``0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    host:
        Bind address; loopback by default — front with a real proxy to
        expose it beyond the machine.
    slow_queries:
        Optional live slow-query container (e.g.
        :attr:`repro.core.query_engine.QueryEngine.slow_queries`); included
        in ``/varz``.
    logger:
        Optional :class:`~repro.utils.logging.StructuredLogger`; access
        logs become ``debug`` records and its recent tail appears in
        ``/varz``.
    stale_after:
        Heartbeat age in seconds beyond which ``/healthz`` degrades to
        ``"stale"`` (HTTP 503); ``None`` disables staleness checking.
    namespace:
        Prometheus metric namespace (see
        :func:`~repro.utils.telemetry.prometheus_name`).
    trace_ring:
        Optional :class:`~repro.serving.reqtrace.TraceRing`; when set, a
        fourth endpoint ``GET /debug/requests`` serves its snapshot —
        recent / slowest / errored request entries with full stage
        breakdowns plus the batch spans they link to.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        slow_queries=None,
        logger=None,
        stale_after: float | None = None,
        namespace: str = "repro",
        trace_ring=None,
    ) -> None:
        if stale_after is not None and stale_after <= 0:
            raise ValueError(f"stale_after must be > 0, got {stale_after}")
        self.registry = registry
        self.requested_port = int(port)
        self.host = host
        self.slow_queries = slow_queries
        self.logger = logger
        self.stale_after = stale_after
        self.namespace = namespace
        self.trace_ring = trace_ring
        self._status_providers: list = []
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_monotonic: float | None = None
        self._started_wall: float | None = None
        self._last_heartbeat: float | None = None
        self.scrapes = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "TelemetryServer":
        """Bind the socket and serve from a daemon thread; returns self."""
        if self._httpd is not None:
            raise RuntimeError("telemetry server already started")
        handler = type("BoundHandler", (_Handler,), {"telemetry": self})
        self._httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._httpd.daemon_threads = True
        self.mark_started()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-server",
            daemon=True,
        )
        self._thread.start()
        if self.logger is not None:
            self.logger.info(
                "telemetry.server_started", host=self.host, port=self.port
            )
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
        if self.logger is not None:
            self.logger.info("telemetry.server_stopped")

    def __enter__(self) -> "TelemetryServer":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`stop`."""
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the server thread is currently serving."""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral ``port=0`` bindings)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def mark_started(self) -> None:
        """Stamp the uptime/started clocks without binding a socket.

        :meth:`start` calls this; embedding hosts (the query-serving
        daemon routes its ``GET`` endpoints through :meth:`respond_get`
        on its own socket) call it directly so ``/healthz`` uptime tracks
        *their* start instead of staying at zero.
        """
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()

    # ------------------------------------------------------------- liveness

    def heartbeat(self) -> None:
        """Mark forward progress (call once per ingested batch / epoch)."""
        self._last_heartbeat = time.monotonic()

    def heartbeat_age(self) -> float | None:
        """Seconds since the last :meth:`heartbeat`; ``None`` if never."""
        if self._last_heartbeat is None:
            return None
        return time.monotonic() - self._last_heartbeat

    def uptime(self) -> float:
        """Seconds since :meth:`start` (0 before the server starts)."""
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def add_status_provider(self, provider) -> None:
        """Register a zero-arg callable returning a JSON-safe dict.

        Provider dicts are merged into ``/healthz`` and ``/varz``; a
        ``"status"`` key participates in the overall health verdict
        (worst wins).
        """
        self._status_providers.append(provider)

    # ------------------------------------------------------------- rendering

    def render_metrics(self) -> str:
        """The live registry in Prometheus text format (one scrape).

        Always newline-terminated: a scrape can race the creation of the
        very first metric (scrapers attach before the first batch is
        ingested), and the exposition format requires the body to end in
        a line feed even when there are no samples yet.
        """
        self.scrapes += 1
        rendered = render_prometheus(self.registry, namespace=self.namespace)
        return rendered if rendered.endswith("\n") else rendered + "\n"

    def respond_get(self, path: str) -> tuple[int, bytes, str] | None:
        """Render one observability GET endpoint for an HTTP handler.

        ``path`` must already be query-string-stripped and
        trailing-slash-normalized.  Returns ``(status, body,
        content_type)`` for ``/metrics`` / ``/healthz`` / ``/varz`` and
        ``None`` for any other path — the seam that lets other HTTP
        servers (the query-serving daemon) mount the same endpoints on
        their own socket instead of running a second server.
        """
        if path == "/metrics":
            return (
                200,
                self.render_metrics().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/healthz":
            payload = self.health()
            status = 200 if payload["status"] == "ok" else 503
            return (
                status,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
                "application/json; charset=utf-8",
            )
        if path == "/varz":
            return (
                200,
                json.dumps(self.varz(), sort_keys=True).encode("utf-8"),
                "application/json; charset=utf-8",
            )
        if path == "/debug/requests" and self.trace_ring is not None:
            payload = self.trace_ring.snapshot()
            return (
                200,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
                "application/json; charset=utf-8",
            )
        return None

    def _provider_state(self) -> tuple[str, dict]:
        """Collect provider dicts; returns (worst status, merged state)."""
        status = "ok"
        merged: dict = {}
        for provider in self._status_providers:
            state = provider()
            if not isinstance(state, dict):
                continue
            reported = state.get("status")
            if (
                reported in _STATUS_RANK
                and _STATUS_RANK[reported] > _STATUS_RANK[status]
            ):
                status = reported
            for key, value in state.items():
                if key != "status":
                    merged[key] = value
        return status, merged

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness + provider status."""
        status, merged = self._provider_state()
        age = self.heartbeat_age()
        if (
            self.stale_after is not None
            and age is not None
            and age > self.stale_after
            and _STATUS_RANK[status] < _STATUS_RANK["stale"]
        ):
            status = "stale"
        payload = {
            "status": status,
            "uptime_seconds": round(self.uptime(), 3),
            "started_at": self._started_wall,
            "heartbeat_age_seconds": (
                None if age is None else round(age, 3)
            ),
            "scrapes": self.scrapes,
        }
        payload.update(merged)
        return payload

    def varz(self) -> dict:
        """The ``/varz`` payload: raw JSON snapshot of everything live."""
        _status, merged = self._provider_state()
        payload = {
            "uptime_seconds": round(self.uptime(), 3),
            "heartbeat_age_seconds": self.heartbeat_age(),
            "metrics": self.registry.snapshot(),
            "slow_queries": (
                list(self.slow_queries)
                if self.slow_queries is not None
                else []
            ),
            "recent_logs": (
                list(self.logger.recent)
                if self.logger is not None
                and hasattr(self.logger, "recent")
                else []
            ),
        }
        payload.update(merged)
        return payload
