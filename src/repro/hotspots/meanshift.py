"""Mean-shift mode seeking for spatial (2-D) and circular temporal (1-D) data.

The paper (Eq. 1) shifts a window centre by the mean of the points inside
the window until convergence; every converged centre is a hotspot.  We use
the standard flat-kernel mean shift (whose fixed points are the modes of the
Epanechnikov KDE — the Epanechnikov kernel's *shadow* is the flat kernel)
with two production niceties:

* **Binned seeding** — instead of shifting every data point, points are
  binned onto a grid of cell size = bandwidth and one seed per occupied
  cell is shifted.  This keeps the cost O(#cells * #points) rather
  than O(n^2) and is exactly what scikit-learn's MeanShift does.
* **Batched shifting** — every iteration moves *all* still-active seeds at
  once: one vectorized ``query_ball_point`` call over the active centres
  and one ``np.add.reduceat`` segment sum for the window means, instead of
  a Python loop per seed.
* **Circular support** — time-of-day lives on a 24 h circle; 23:30 and 00:30
  must attract each other.  Circular data is embedded on a radius-R circle
  (R = period / 2 pi preserves arc length locally), shifted in the plane and
  projected back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.validation import check_positive

__all__ = [
    "MeanShiftResult",
    "assign_nearest",
    "mean_shift",
    "circular_mean_shift",
]


@dataclass
class MeanShiftResult:
    """Modes found by mean shift and the mode assignment of each input point.

    Attributes
    ----------
    modes:
        ``(k, d)`` array of mode coordinates, ordered by descending support.
    labels:
        ``(n,)`` index of the mode nearest to each input point.
    counts:
        ``(k,)`` number of points assigned to each mode.
    """

    modes: np.ndarray
    labels: np.ndarray
    counts: np.ndarray

    @property
    def n_modes(self) -> int:
        """Number of detected modes."""
        return self.modes.shape[0]


def _bin_seeds(points: np.ndarray, cell: float) -> np.ndarray:
    """One seed per occupied grid cell.

    Cell populations are deliberately *not* returned: a seed's mean-shift
    trajectory depends only on its starting position (the window mean
    ignores where the seed came from), and mode support is recomputed from
    the final basin assignment — so population weights would be dead state.
    """
    keys = np.floor(points / cell).astype(np.int64)
    uniq = np.unique(keys, axis=0)
    return (uniq + 0.5) * cell


def mean_shift(
    points: np.ndarray,
    bandwidth: float,
    *,
    max_iter: int = 300,
    tol: float = 1e-4,
    min_support: int = 1,
) -> MeanShiftResult:
    """Flat-kernel mean shift on Euclidean ``points`` of shape ``(n, d)``.

    Parameters
    ----------
    points:
        Input sample, shape ``(n, d)`` or ``(n,)`` for 1-D.
    bandwidth:
        Window radius (Eq. 1's window) — also the seeding grid cell size.
    max_iter, tol:
        Per-seed iteration budget and convergence threshold on the shift.
    min_support:
        Modes whose basin attracted fewer than this many points are dropped
        (GPS noise robustness).
    """
    check_positive("bandwidth", bandwidth)
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points[:, None]
    if points.shape[0] == 0:
        raise ValueError("points must be non-empty")
    tree = cKDTree(points)
    seeds = _bin_seeds(points, bandwidth)

    # All seeds shift together: each iteration issues ONE batched
    # query_ball_point over the still-active centres and reduces every
    # window mean with a single segment sum, instead of a Python loop per
    # seed.  Trajectories are identical to per-seed iteration because a
    # centre's update depends only on its own window.
    centres = seeds.copy()
    n_inside = np.zeros(seeds.shape[0], dtype=np.int64)
    active = np.arange(seeds.shape[0])
    for _ in range(max_iter):
        if active.size == 0:
            break
        neighborhoods = tree.query_ball_point(centres[active], bandwidth)
        lengths = np.fromiter(
            (len(n) for n in neighborhoods), dtype=np.int64, count=active.size
        )
        filled = lengths > 0
        # Seeds whose window emptied retire with their previous state.
        active = active[filled]
        if active.size == 0:
            break
        lengths = lengths[filled]
        flat = np.concatenate(
            [np.asarray(n, dtype=np.int64) for n, f in zip(neighborhoods, filled) if f]
        )
        starts = np.concatenate(([0], np.cumsum(lengths[:-1])))
        sums = np.add.reduceat(points[flat], starts, axis=0)
        new_centres = sums / lengths[:, None]
        shift = np.linalg.norm(new_centres - centres[active], axis=1)
        n_inside[active] = lengths
        centres[active] = new_centres
        active = active[shift >= tol * bandwidth]

    kept = n_inside > 0
    if not kept.any():
        raise RuntimeError("mean shift found no modes (bandwidth too small?)")
    modes = _merge_modes(centres[kept], n_inside[kept], bandwidth)
    labels, counts = _assign(points, modes)
    keep = counts >= min_support
    if keep.any() and not keep.all():
        modes = modes[keep]
        labels, counts = _assign(points, modes)
    order = np.argsort(-counts)
    modes, counts = modes[order], counts[order]
    relabel = np.empty_like(order)
    relabel[order] = np.arange(order.size)
    labels = relabel[labels]
    return MeanShiftResult(modes=modes, labels=labels, counts=counts)


def _merge_modes(
    modes: np.ndarray, support: np.ndarray, bandwidth: float
) -> np.ndarray:
    """Merge converged centres closer than the bandwidth, best-supported first."""
    order = np.argsort(-support)
    kept: list[np.ndarray] = []
    for idx in order:
        candidate = modes[idx]
        if all(np.linalg.norm(candidate - m) >= bandwidth for m in kept):
            kept.append(candidate)
    return np.stack(kept)


def assign_nearest(
    points: np.ndarray, modes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-mode label and per-mode support count for every point.

    The shared hard-assignment kernel: mean shift uses it to map points to
    their converged modes, and the ANN coarse quantizer
    (:mod:`repro.ann.kmeans`) uses it as the independent KD-tree reference
    its dot-product assignment is checked against.  Returns
    ``(labels, counts)`` with ``labels[i]`` the index of the mode nearest
    (Euclidean) to ``points[i]``.
    """
    tree = cKDTree(modes)
    _, labels = tree.query(points)
    counts = np.bincount(labels, minlength=modes.shape[0])
    return labels, counts


# Internal alias kept for the call sites above.
_assign = assign_nearest


def circular_mean_shift(
    values: np.ndarray,
    bandwidth: float,
    *,
    period: float = 24.0,
    max_iter: int = 300,
    tol: float = 1e-4,
    min_support: int = 1,
) -> MeanShiftResult:
    """Mean shift for 1-D circular data (e.g. hour-of-day with period 24).

    The circle is embedded in the plane with radius ``period / (2 pi)`` so a
    Euclidean bandwidth approximates the same arc-length bandwidth, then the
    planar result is projected back to ``[0, period)``.

    Returns a :class:`MeanShiftResult` whose ``modes`` has shape ``(k, 1)``.
    """
    check_positive("bandwidth", bandwidth)
    check_positive("period", period)
    if bandwidth >= period / 2:
        raise ValueError(
            f"bandwidth {bandwidth} must be < period/2 = {period / 2}"
        )
    values = np.asarray(values, dtype=float).ravel() % period
    radius = period / (2.0 * np.pi)
    angles = values / radius
    planar = np.column_stack([np.cos(angles), np.sin(angles)]) * radius
    result = mean_shift(
        planar, bandwidth, max_iter=max_iter, tol=tol, min_support=min_support
    )
    # Planar modes drift slightly inside the circle; project back by angle.
    mode_angles = np.arctan2(result.modes[:, 1], result.modes[:, 0])
    mode_values = (mode_angles * radius) % period
    return MeanShiftResult(
        modes=mode_values[:, None], labels=result.labels, counts=result.counts
    )
