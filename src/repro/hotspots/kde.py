"""Kernel density estimation with the Epanechnikov kernel.

Section 4.3 of the paper defines spatial and temporal hotspots as local
maxima of a kernel density estimate

    f(x) = 1 / (n h^d) * sum_i K((x - x_i) / h)

with the Epanechnikov kernel, chosen because it makes no assumption about
the underlying data distribution.  We use the spherical (radially symmetric)
Epanechnikov kernel

    K(u) = c_d * (1 - ||u||^2)   for ||u|| <= 1, else 0

with the normalizing constant ``c_d`` for dimension d (3/4 in 1-D,
2/pi in 2-D), so densities integrate to one.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_finite, check_positive

__all__ = ["epanechnikov", "EpanechnikovKDE"]

# Normalizing constants c_d of the spherical Epanechnikov kernel: the volume
# integral of (1 - ||u||^2) over the unit ball is 2/(d+2) * V_d with V_d the
# unit-ball volume, so c_d = (d+2) / (2 V_d).
_UNIT_BALL_VOLUME = {1: 2.0, 2: np.pi, 3: 4.0 * np.pi / 3.0}


def _normalizer(d: int) -> float:
    if d not in _UNIT_BALL_VOLUME:
        raise ValueError(f"Epanechnikov kernel implemented for d in 1..3, got {d}")
    return (d + 2) / (2.0 * _UNIT_BALL_VOLUME[d])


def epanechnikov(u: np.ndarray, *, d: int | None = None) -> np.ndarray:
    """Evaluate the spherical Epanechnikov kernel at rows of ``u``.

    Parameters
    ----------
    u:
        ``(n, d)`` array of scaled offsets, or a flat ``(n,)`` vector.  A
        flat vector ALWAYS means ``n`` scalar (1-D) offsets — it is never
        reinterpreted as a single d-dimensional point.  Pass a ``(1, d)``
        row (or ``d=``) to evaluate one multivariate offset.
    d:
        Optional explicit dimension.  A flat vector is reshaped to
        ``(-1, d)`` (its length must be divisible by ``d``); a 2-D input
        must already have ``d`` columns.

    Returns
    -------
    Kernel values of shape ``(n,)``; zero outside the unit ball.
    """
    u = np.asarray(u, dtype=float)
    if u.ndim == 0:
        u = u.reshape(1, 1)
    if u.ndim == 1:
        if d is None:
            d = 1
        if d > 1 and u.size % d:
            raise ValueError(
                f"flat offset vector of length {u.size} is not divisible by d={d}"
            )
        u = u.reshape(-1, d)
    elif u.ndim == 2:
        if d is not None and u.shape[1] != d:
            raise ValueError(
                f"offsets have dimension {u.shape[1]}, but d={d} was requested"
            )
    else:
        raise ValueError(f"offsets must be (n, d) or (n,), got shape {u.shape}")
    d = u.shape[1]
    sq_norm = np.einsum("ij,ij->i", u, u)
    values = _normalizer(d) * np.clip(1.0 - sq_norm, 0.0, None)
    return values


class EpanechnikovKDE:
    """Fixed-bandwidth Epanechnikov kernel density estimator.

    Parameters
    ----------
    bandwidth:
        Kernel bandwidth ``h`` (same units as the data).
    """

    def __init__(self, bandwidth: float) -> None:
        check_positive("bandwidth", bandwidth)
        self.bandwidth = float(bandwidth)
        self._points: np.ndarray | None = None

    @property
    def points(self) -> np.ndarray:
        """The fitted sample; requires :meth:`fit`."""
        if self._points is None:
            raise RuntimeError("KDE is not fitted; call fit() first")
        return self._points

    def fit(self, points: np.ndarray) -> "EpanechnikovKDE":
        """Store the sample ``points`` of shape ``(n, d)`` or ``(n,)``."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[:, None]
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(
                f"points must be a non-empty (n, d) array, got shape {points.shape}"
            )
        check_finite("points", points)
        self._points = points
        return self

    def density(self, x: np.ndarray) -> np.ndarray:
        """Density estimate ``f(x)`` at query points ``x``.

        Parameters
        ----------
        x:
            Queries of shape ``(m, d)``, ``(d,)`` or scalar-like for 1-D fits.

        Returns
        -------
        Densities of shape ``(m,)``.
        """
        points = self.points
        d = points.shape[1]
        x = np.asarray(x, dtype=float)
        if x.ndim == 0:
            x = x.reshape(1, 1)
        elif x.ndim == 1:
            # Ambiguity: (d,) single query vs (m,) many 1-D queries.
            x = x.reshape(1, d) if (d > 1 and x.shape[0] == d) else x[:, None]
        if x.shape[1] != d:
            raise ValueError(
                f"query dimension {x.shape[1]} does not match fit dimension {d}"
            )
        n, h = points.shape[0], self.bandwidth
        # (m, n, d) offsets are fine at hotspot-detection scale; chunk the
        # queries to bound peak memory for large m * n.
        out = np.empty(x.shape[0])
        chunk = max(1, int(2e7) // max(1, n * d))
        for start in range(0, x.shape[0], chunk):
            block = x[start : start + chunk]
            u = (block[:, None, :] - points[None, :, :]) / h
            sq = np.einsum("mnd,mnd->mn", u, u)
            k = _normalizer(d) * np.clip(1.0 - sq, 0.0, None)
            out[start : start + chunk] = k.sum(axis=1) / (n * h**d)
        return out
