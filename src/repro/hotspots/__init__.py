"""Hotspot detection: Epanechnikov KDE and mean-shift (paper Section 4.3)."""

from repro.hotspots.detector import HotspotDetector
from repro.hotspots.grid import GridDetector
from repro.hotspots.kde import EpanechnikovKDE, epanechnikov
from repro.hotspots.meanshift import (
    MeanShiftResult,
    circular_mean_shift,
    mean_shift,
)

__all__ = [
    "HotspotDetector",
    "GridDetector",
    "EpanechnikovKDE",
    "epanechnikov",
    "MeanShiftResult",
    "mean_shift",
    "circular_mean_shift",
]
