"""Hotspot detector: the spatial/temporal discretization front-end of ACTOR.

Definition 5 of the paper: a *spatial hotspot* is a local maximum of the
kernel density of record locations, a *temporal hotspot* a local maximum of
the kernel density of record timestamps.  After detection, "for a new data
point we can find the hotspot it belongs to by calculating the distances
with all the detected hotspots and choosing the closest one" — exactly what
:meth:`HotspotDetector.assign_spatial` / :meth:`assign_temporal` do (with a
KD-tree instead of a linear scan).

Temporal hotspots operate on the time-of-day component with circular
distance, matching the daily periodicity of urban activity (Table 1 reports
27-34 temporal hotspots, i.e. sub-hour daily buckets).
"""

from __future__ import annotations

import time

import numpy as np
from scipy.spatial import cKDTree

from repro.data.records import Corpus
from repro.hotspots.meanshift import circular_mean_shift, mean_shift
from repro.utils.tracing import NULL_TRACER
from repro.utils.validation import check_positive

__all__ = ["HotspotDetector"]


class HotspotDetector:
    """Detect and assign spatial & temporal hotspots via mean shift.

    Parameters
    ----------
    spatial_bandwidth:
        Mean-shift window radius for locations, in kilometres.
    temporal_bandwidth:
        Window radius for time-of-day, in hours.
    period:
        Temporal period (24 for daily cycles).
    min_support:
        Minimum basin population for a mode to survive (noise control).
    """

    def __init__(
        self,
        *,
        spatial_bandwidth: float = 0.5,
        temporal_bandwidth: float = 0.75,
        period: float = 24.0,
        min_support: int = 3,
    ) -> None:
        check_positive("spatial_bandwidth", spatial_bandwidth)
        check_positive("temporal_bandwidth", temporal_bandwidth)
        self.spatial_bandwidth = float(spatial_bandwidth)
        self.temporal_bandwidth = float(temporal_bandwidth)
        self.period = float(period)
        self.min_support = int(min_support)
        self._spatial_hotspots: np.ndarray | None = None
        self._temporal_hotspots: np.ndarray | None = None
        self._spatial_tree: cKDTree | None = None
        # Optional observability sinks, attached by Actor.fit (or by hand):
        # when set, fit_arrays records mean-shift latency and hotspot
        # counts, and emits a hotspot.detect span tree.
        self.metrics = None
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ state

    @property
    def spatial_hotspots(self) -> np.ndarray:
        """``(S, 2)`` hotspot coordinates, ordered by descending support."""
        if self._spatial_hotspots is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._spatial_hotspots

    @property
    def temporal_hotspots(self) -> np.ndarray:
        """``(T,)`` hotspot hours-of-day, ordered by descending support."""
        if self._temporal_hotspots is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._temporal_hotspots

    @property
    def n_spatial(self) -> int:
        """Number of detected spatial hotspots."""
        return self.spatial_hotspots.shape[0]

    @property
    def n_temporal(self) -> int:
        """Number of detected temporal hotspots."""
        return self.temporal_hotspots.shape[0]

    @classmethod
    def from_arrays(
        cls,
        spatial_hotspots: np.ndarray,
        temporal_hotspots: np.ndarray,
        *,
        period: float = 24.0,
    ) -> "HotspotDetector":
        """Reconstruct a fitted detector from stored hotspot arrays.

        Used by the portable model serialization
        (:mod:`repro.core.serialize`): assignment needs only the hotspot
        coordinates, not the original fitting data.
        """
        spatial_hotspots = np.asarray(spatial_hotspots, dtype=float)
        temporal_hotspots = np.asarray(temporal_hotspots, dtype=float).ravel()
        if spatial_hotspots.ndim != 2 or spatial_hotspots.shape[1] != 2:
            raise ValueError(
                f"spatial_hotspots must have shape (S, 2), got "
                f"{spatial_hotspots.shape}"
            )
        if spatial_hotspots.shape[0] == 0 or temporal_hotspots.shape[0] == 0:
            raise ValueError("hotspot arrays must be non-empty")
        detector = cls(period=period)
        detector._spatial_hotspots = spatial_hotspots
        detector._temporal_hotspots = temporal_hotspots
        detector._spatial_tree = cKDTree(spatial_hotspots)
        return detector

    # -------------------------------------------------------------------- fit

    def fit(self, corpus: Corpus) -> "HotspotDetector":
        """Detect hotspots from all record locations and times in ``corpus``."""
        locations = np.asarray(corpus.locations(), dtype=float)
        hours = np.asarray([r.time_of_day for r in corpus], dtype=float)
        return self.fit_arrays(locations, hours)

    def fit_arrays(
        self, locations: np.ndarray, hours: np.ndarray
    ) -> "HotspotDetector":
        """Fit directly from ``(n, 2)`` locations and ``(n,)`` hours-of-day."""
        locations = np.asarray(locations, dtype=float)
        hours = np.asarray(hours, dtype=float)
        if locations.ndim != 2 or locations.shape[1] != 2:
            raise ValueError(
                f"locations must have shape (n, 2), got {locations.shape}"
            )
        if locations.shape[0] != hours.shape[0]:
            raise ValueError("locations and hours must have equal length")
        with self.tracer.span(
            "hotspot.detect", n_records=int(locations.shape[0])
        ) as span:
            with self.tracer.span("hotspot.spatial"):
                spatial_start = time.perf_counter()
                spatial = mean_shift(
                    locations,
                    self.spatial_bandwidth,
                    min_support=self.min_support,
                )
                spatial_s = time.perf_counter() - spatial_start
            with self.tracer.span("hotspot.temporal"):
                temporal_start = time.perf_counter()
                temporal = circular_mean_shift(
                    hours,
                    self.temporal_bandwidth,
                    period=self.period,
                    min_support=self.min_support,
                )
                temporal_s = time.perf_counter() - temporal_start
            span.set(
                n_spatial=int(spatial.modes.shape[0]),
                n_temporal=int(temporal.modes.shape[0]),
            )
        self._spatial_hotspots = spatial.modes
        self._temporal_hotspots = temporal.modes.ravel()
        self._spatial_tree = cKDTree(self._spatial_hotspots)
        if self.metrics is not None:
            self.metrics.timer("hotspot.spatial_fit").observe(spatial_s)
            self.metrics.timer("hotspot.temporal_fit").observe(temporal_s)
            self.metrics.gauge("hotspot.n_spatial").set(self.n_spatial)
            self.metrics.gauge("hotspot.n_temporal").set(self.n_temporal)
        return self

    # ----------------------------------------------------------------- assign

    def assign_spatial(self, locations: np.ndarray) -> np.ndarray:
        """Nearest spatial hotspot index for each row of ``locations``."""
        if self._spatial_tree is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        locations = np.atleast_2d(np.asarray(locations, dtype=float))
        _, idx = self._spatial_tree.query(locations)
        return np.asarray(idx, dtype=np.int64)

    def assign_temporal(self, timestamps: np.ndarray) -> np.ndarray:
        """Nearest temporal hotspot (circular distance) for each timestamp.

        ``timestamps`` may be absolute hours; only the time-of-day component
        matters.
        """
        hotspots = self.temporal_hotspots
        hours = np.asarray(timestamps, dtype=float).ravel() % self.period
        diff = np.abs(hours[:, None] - hotspots[None, :])
        circular = np.minimum(diff, self.period - diff)
        return circular.argmin(axis=1).astype(np.int64)

    def assign_record(self, location: tuple[float, float], timestamp: float) -> tuple[int, int]:
        """``(spatial_idx, temporal_idx)`` for one record's coordinates."""
        s = int(self.assign_spatial(np.asarray(location)[None, :])[0])
        t = int(self.assign_temporal(np.asarray([timestamp]))[0])
        return s, t
