"""Grid discretization: the baseline alternative to mean-shift hotspots.

Earlier spatiotemporal models (and CrossMap's simpler variants) discretize
space with a uniform grid and time with fixed-width buckets instead of
detecting density modes.  :class:`GridDetector` implements that scheme with
the same interface as :class:`~repro.hotspots.detector.HotspotDetector`, so
ACTOR can be trained on either discretization and the choice can be
ablated (``benchmarks/bench_ablation_hotspots.py``).

Differences from mean shift the ablation probes:

* grid cells are anchored arbitrarily — a venue sitting on a cell border
  splits its records between two units;
* empty-but-adjacent cells fragment sparse areas instead of pooling them
  into one mode;
* cell count grows with area, not with data density.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.data.records import Corpus
from repro.utils.validation import check_positive

__all__ = ["GridDetector"]


class GridDetector:
    """Uniform spatial grid + fixed temporal buckets.

    Drop-in alternative to :class:`HotspotDetector`: exposes
    ``spatial_hotspots`` / ``temporal_hotspots`` (cell centres of occupied
    cells) and the same ``assign_*`` methods.

    Parameters
    ----------
    cell_km:
        Spatial grid cell edge length in kilometres.
    bucket_hours:
        Temporal bucket width in hours; must divide the period evenly
        enough (the last bucket absorbs any remainder).
    period:
        Temporal period (24 h).
    min_support:
        Cells/buckets with fewer records are dropped; their records snap
        to the nearest surviving unit, mirroring the mean-shift detector's
        noise handling.
    """

    def __init__(
        self,
        *,
        cell_km: float = 1.0,
        bucket_hours: float = 1.0,
        period: float = 24.0,
        min_support: int = 1,
    ) -> None:
        check_positive("cell_km", cell_km)
        check_positive("bucket_hours", bucket_hours)
        check_positive("period", period)
        if bucket_hours > period:
            raise ValueError("bucket_hours must not exceed the period")
        self.cell_km = float(cell_km)
        self.bucket_hours = float(bucket_hours)
        self.period = float(period)
        self.min_support = int(min_support)
        self._spatial_hotspots: np.ndarray | None = None
        self._temporal_hotspots: np.ndarray | None = None
        self._spatial_tree: cKDTree | None = None

    # ------------------------------------------------------------------ state

    @property
    def spatial_hotspots(self) -> np.ndarray:
        """``(S, 2)`` occupied-cell centres; requires :meth:`fit`."""
        if self._spatial_hotspots is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._spatial_hotspots

    @property
    def temporal_hotspots(self) -> np.ndarray:
        """``(T,)`` occupied-bucket centres; requires :meth:`fit`."""
        if self._temporal_hotspots is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._temporal_hotspots

    @property
    def n_spatial(self) -> int:
        """Number of occupied spatial cells."""
        return self.spatial_hotspots.shape[0]

    @property
    def n_temporal(self) -> int:
        """Number of occupied temporal buckets."""
        return self.temporal_hotspots.shape[0]

    # -------------------------------------------------------------------- fit

    def fit(self, corpus: Corpus) -> "GridDetector":
        """Discretize all record locations and times-of-day in ``corpus``."""
        locations = np.asarray(corpus.locations(), dtype=float)
        hours = np.asarray([r.time_of_day for r in corpus], dtype=float)
        return self.fit_arrays(locations, hours)

    def fit_arrays(
        self, locations: np.ndarray, hours: np.ndarray
    ) -> "GridDetector":
        """Fit from ``(n, 2)`` locations and ``(n,)`` hours-of-day."""
        locations = np.asarray(locations, dtype=float)
        hours = np.asarray(hours, dtype=float) % self.period
        if locations.ndim != 2 or locations.shape[1] != 2:
            raise ValueError(
                f"locations must have shape (n, 2), got {locations.shape}"
            )
        if locations.shape[0] != hours.shape[0]:
            raise ValueError("locations and hours must have equal length")

        cells = np.floor(locations / self.cell_km).astype(np.int64)
        uniq, counts = np.unique(cells, axis=0, return_counts=True)
        keep = counts >= self.min_support
        if not keep.any():
            keep = counts >= 1  # never end up with zero units
        self._spatial_hotspots = (uniq[keep] + 0.5) * self.cell_km

        n_buckets = max(1, int(self.period // self.bucket_hours))
        bucket_idx = np.minimum(
            (hours / self.bucket_hours).astype(np.int64), n_buckets - 1
        )
        occupied, t_counts = np.unique(bucket_idx, return_counts=True)
        t_keep = t_counts >= self.min_support
        if not t_keep.any():
            t_keep = t_counts >= 1
        self._temporal_hotspots = (
            occupied[t_keep].astype(float) + 0.5
        ) * self.bucket_hours
        self._spatial_tree = cKDTree(self._spatial_hotspots)
        return self

    # ----------------------------------------------------------------- assign

    def assign_spatial(self, locations: np.ndarray) -> np.ndarray:
        """Nearest occupied cell centre for each location."""
        if self._spatial_tree is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        locations = np.atleast_2d(np.asarray(locations, dtype=float))
        _, idx = self._spatial_tree.query(locations)
        return np.asarray(idx, dtype=np.int64)

    def assign_temporal(self, timestamps: np.ndarray) -> np.ndarray:
        """Nearest occupied bucket centre (circular distance)."""
        hotspots = self.temporal_hotspots
        hours = np.asarray(timestamps, dtype=float).ravel() % self.period
        diff = np.abs(hours[:, None] - hotspots[None, :])
        circular = np.minimum(diff, self.period - diff)
        return circular.argmin(axis=1).astype(np.int64)

    def assign_record(
        self, location: tuple[float, float], timestamp: float
    ) -> tuple[int, int]:
        """``(spatial_idx, temporal_idx)`` for one record."""
        s = int(self.assign_spatial(np.asarray(location)[None, :])[0])
        t = int(self.assign_temporal(np.asarray([timestamp]))[0])
        return s, t
