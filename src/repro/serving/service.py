"""Query service: request validation + batched execution over the engine.

:class:`QueryService` is the transport-independent core of ``repro
serve``: it turns untrusted JSON bodies into typed requests
(:class:`PredictRequest`, :class:`NeighborsRequest`), rejecting anything
malformed with :class:`BadRequest` — a *client* error the HTTP layer maps
to a structured 400 body instead of letting a handler thread die with a
500 — and executes whole mixed batches through the
:class:`~repro.core.query_engine.QueryEngine`'s vectorized paths.

Parity contract: :meth:`QueryService.dispatch` produces, for every
request, a response bit-identical to dispatching that request alone
(``dispatch([r])[0]``).  Predict requests ride
:meth:`~repro.core.query_engine.QueryEngine.score_ragged_batch` (exact
per-row determinism); neighbor requests share one
:meth:`~repro.core.query_engine.QueryEngine.query_matrix` call and score
against the cached normalized modality matrix row by row.  The request
coalescer and the ``bench_serve_latency`` gates both lean on this.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.prediction import TARGETS, top_k
from repro.core.query_engine import QueryEngine
from repro.utils.logging import NULL_LOGGER
from repro.utils.metrics import MetricsRegistry

__all__ = [
    "BadRequest",
    "PredictRequest",
    "NeighborsRequest",
    "QueryService",
    "NEIGHBOR_MODALITIES",
]

NEIGHBOR_MODALITIES = ("word", "time", "location")

_MAX_CANDIDATES = 4096
_MAX_K = 1024


class BadRequest(ValueError):
    """A malformed client request (maps to HTTP 400, never a 500).

    Parameters
    ----------
    message:
        Human-readable description of what failed validation.
    field:
        Name of the offending request field, when attributable.
    """

    def __init__(self, message: str, *, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field

    def to_payload(self) -> dict:
        """The structured JSON error body served to the client."""
        payload = {"error": str(self)}
        if self.field is not None:
            payload["field"] = self.field
        return payload


@dataclass(frozen=True)
class PredictRequest:
    """A validated cross-modal prediction request.

    Attributes
    ----------
    target:
        Candidate modality being ranked (``"text"`` / ``"location"`` /
        ``"time"``).
    candidates:
        Normalized candidate values: word-bag tuples for text, ``(x, y)``
        tuples for location, floats for time.
    time / location / words:
        The observed query modalities (each may be ``None``; at least one
        is present).
    k:
        Ranking length to return (``None`` ranks every candidate).
    """

    target: str
    candidates: tuple
    time: float | None = None
    location: tuple[float, float] | None = None
    words: tuple[str, ...] | None = None
    k: int | None = None


@dataclass(frozen=True)
class NeighborsRequest:
    """A validated per-modality nearest-neighbor request.

    Attributes
    ----------
    modality:
        Unit space searched (``"word"`` / ``"time"`` / ``"location"``).
    time / location / words:
        The query modalities composing the probe vector.
    k:
        Number of neighbors to return.
    """

    modality: str
    time: float | None = None
    location: tuple[float, float] | None = None
    words: tuple[str, ...] | None = None
    k: int = 10


def _require_dict(body) -> dict:
    """The request body as a dict, or a :class:`BadRequest`."""
    if not isinstance(body, dict):
        raise BadRequest(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _number(value, field: str) -> float:
    """Coerce a JSON number (bools are not numbers here)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(
            f"{field} must be a number, got {type(value).__name__}",
            field=field,
        )
    return float(value)


def _opt_time(body: dict) -> float | None:
    """The optional ``time`` query field."""
    value = body.get("time")
    return None if value is None else _number(value, "time")


def _opt_location(body: dict) -> tuple[float, float] | None:
    """The optional ``location`` query field (an ``[x, y]`` pair)."""
    value = body.get("location")
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise BadRequest(
            "location must be an [x, y] pair", field="location"
        )
    return (_number(value[0], "location"), _number(value[1], "location"))


def _opt_words(body: dict, field: str = "words") -> tuple[str, ...] | None:
    """The optional ``words`` query field (a list of keywords)."""
    value = body.get(field)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise BadRequest(
            f"{field} must be a list of strings", field=field
        )
    for word in value:
        if not isinstance(word, str):
            raise BadRequest(
                f"{field} entries must be strings, got "
                f"{type(word).__name__}",
                field=field,
            )
    return tuple(value)


def _opt_k(body: dict, *, default: int | None = None) -> int | None:
    """The optional ``k`` field (positive, bounded)."""
    value = body.get("k", default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(
            f"k must be an integer, got {type(value).__name__}", field="k"
        )
    if not 1 <= value <= _MAX_K:
        raise BadRequest(
            f"k must be between 1 and {_MAX_K}, got {value}", field="k"
        )
    return value


def _candidate(value, target: str):
    """Normalize one candidate of ``target``; raises on shape errors."""
    if target == "text":
        if not isinstance(value, (list, tuple)):
            raise BadRequest(
                "text candidates must be lists of keywords",
                field="candidates",
            )
        for word in value:
            if not isinstance(word, str):
                raise BadRequest(
                    "text candidate entries must be strings",
                    field="candidates",
                )
        return tuple(value)
    if target == "location":
        if not isinstance(value, (list, tuple)) or len(value) != 2:
            raise BadRequest(
                "location candidates must be [x, y] pairs",
                field="candidates",
            )
        return (
            _number(value[0], "candidates"),
            _number(value[1], "candidates"),
        )
    return _number(value, "candidates")


class QueryService:
    """Validate and execute serve requests against one fitted model.

    Parameters
    ----------
    model:
        Any :class:`~repro.core.prediction.GraphEmbeddingModel` (a live
        Actor or a read-only ``load_bundle(mmap=True)`` QueryModel).
    engine:
        Optional pre-built :class:`~repro.core.query_engine.QueryEngine`
        over ``model``; one is created against ``metrics`` otherwise.
    metrics:
        Optional shared :class:`~repro.utils.metrics.MetricsRegistry`.
    logger:
        Optional structured logger for request-shape warnings.
    """

    def __init__(
        self,
        model,
        *,
        engine: QueryEngine | None = None,
        metrics: MetricsRegistry | None = None,
        logger=None,
    ) -> None:
        self.model = model
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.engine = (
            engine
            if engine is not None
            else QueryEngine(model, metrics=self.metrics, logger=self.logger)
        )

    # ------------------------------------------------------------- validation

    def validate_predict(self, body) -> PredictRequest:
        """Parse an untrusted ``/v1/predict`` body into a typed request."""
        body = _require_dict(body)
        target = body.get("target")
        if target not in TARGETS:
            raise BadRequest(
                f"target must be one of {list(TARGETS)}, got {target!r}",
                field="target",
            )
        raw = body.get("candidates")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise BadRequest(
                "candidates must be a non-empty list", field="candidates"
            )
        if len(raw) > _MAX_CANDIDATES:
            raise BadRequest(
                f"at most {_MAX_CANDIDATES} candidates per request, got "
                f"{len(raw)}",
                field="candidates",
            )
        request = PredictRequest(
            target=target,
            candidates=tuple(_candidate(c, target) for c in raw),
            time=_opt_time(body),
            location=_opt_location(body),
            words=_opt_words(body),
            k=_opt_k(body),
        )
        if (
            request.time is None
            and request.location is None
            and request.words is None
        ):
            raise BadRequest(
                "at least one query modality (time, location, words) is "
                "required"
            )
        return request

    def validate_neighbors(self, body) -> NeighborsRequest:
        """Parse an untrusted ``/v1/neighbors`` body into a typed request."""
        body = _require_dict(body)
        modality = body.get("modality")
        if modality not in NEIGHBOR_MODALITIES:
            raise BadRequest(
                f"modality must be one of {list(NEIGHBOR_MODALITIES)}, "
                f"got {modality!r}",
                field="modality",
            )
        request = NeighborsRequest(
            modality=modality,
            time=_opt_time(body),
            location=_opt_location(body),
            words=_opt_words(body),
            k=_opt_k(body, default=10) or 10,
        )
        if (
            request.time is None
            and request.location is None
            and request.words is None
        ):
            raise BadRequest(
                "at least one query modality (time, location, words) is "
                "required"
            )
        return request

    # -------------------------------------------------------------- execution

    def dispatch(self, requests: Sequence) -> list[dict]:
        """Execute a mixed batch of typed requests, preserving order.

        Predict requests sharing a target modality are scored through one
        :meth:`~repro.core.query_engine.QueryEngine.score_ragged_batch`
        call; neighbor requests share one
        :meth:`~repro.core.query_engine.QueryEngine.query_matrix` pass.
        Element ``i`` of the result is bit-identical to
        ``dispatch([requests[i]])[0]`` — the coalescing parity contract.
        """
        responses: list[dict | None] = [None] * len(requests)
        predict_by_target: dict[str, list[int]] = {}
        neighbor_indices: list[int] = []
        for i, request in enumerate(requests):
            if isinstance(request, PredictRequest):
                predict_by_target.setdefault(request.target, []).append(i)
            elif isinstance(request, NeighborsRequest):
                neighbor_indices.append(i)
            else:
                raise TypeError(
                    f"unsupported request type {type(request).__name__}"
                )
        for target, indices in predict_by_target.items():
            group = [requests[i] for i in indices]
            scores = self.engine.score_ragged_batch(
                target=target,
                candidates=[r.candidates for r in group],
                times=[r.time for r in group],
                locations=[r.location for r in group],
                words=[r.words for r in group],
            )
            for i, request, row in zip(indices, group, scores):
                responses[i] = self._predict_response(request, row)
        if neighbor_indices:
            group = [requests[i] for i in neighbor_indices]
            probes = self.engine.query_matrix(
                times=[r.time for r in group],
                locations=[r.location for r in group],
                words=[r.words for r in group],
            )
            for i, request, probe in zip(neighbor_indices, group, probes):
                responses[i] = self._neighbors_response(request, probe)
        self.metrics.counter("serve.requests").inc(len(requests))
        return responses

    def _predict_response(
        self, request: PredictRequest, scores: np.ndarray
    ) -> dict:
        """Build the ``/v1/predict`` response body for one scored request."""
        k = request.k if request.k is not None else len(scores)
        order = top_k(scores, k)
        return {
            "target": request.target,
            "n_candidates": int(len(scores)),
            "scores": [float(s) for s in scores],
            "ranking": [int(i) for i in order],
        }

    def _neighbors_response(
        self, request: NeighborsRequest, probe: np.ndarray
    ) -> dict:
        """Build the ``/v1/neighbors`` response body for one probe vector.

        Retrieval goes through the *engine's* ``neighbors`` seam: the
        exact :class:`~repro.core.query_engine.QueryEngine` delegates to
        the model's dense scan, while an
        :class:`~repro.ann.engine.IndexedQueryEngine` (``repro serve
        --ann``) answers from its IVF index — same response shape, same
        per-request determinism, so coalescing parity holds either way.
        """
        raw = self.engine.neighbors(probe, request.modality, request.k)
        detector = self.model.built.detector
        neighbors = []
        for key, score in raw:
            entry: dict = {"score": float(score)}
            if request.modality == "time":
                entry["hotspot"] = int(key)
                entry["hour"] = float(detector.temporal_hotspots[int(key)])
            elif request.modality == "location":
                entry["hotspot"] = int(key)
                center = detector.spatial_hotspots[int(key)]
                entry["center"] = [float(center[0]), float(center[1])]
            else:
                entry["word"] = str(key)
            neighbors.append(entry)
        return {
            "modality": request.modality,
            "k": request.k,
            "neighbors": neighbors,
        }
