"""Request batcher/coalescer: many concurrent callers, one engine call.

The query engine's vectorized paths amortize their fixed per-call cost
(modality-cache lookup, hotspot snap, normalized gathers) across a whole
batch — but serving traffic arrives as single queries on independent
handler threads.  :class:`RequestBatcher` bridges the two shapes: callers
block in :meth:`~RequestBatcher.submit` while a dispatcher thread collects
everything that arrived within a few milliseconds (``max_wait_ms``) or up
to ``max_batch`` items, hands the group to one ``dispatch_fn`` call, and
fans the per-item results back out.

The contract that makes coalescing safe is **exact parity**: the dispatch
function must return, for each item, the same result it would return for a
single-item batch (the engine's ragged-batch path guarantees this
bit-for-bit; see :meth:`repro.core.query_engine.QueryEngine
.score_ragged_batch`).  The batcher itself never reorders items — the
dispatch list preserves submission order.

Failure semantics: an exception raised by ``dispatch_fn`` is delivered to
*every* caller of that batch (it describes the group call); a per-item
failure is expressed by returning an :class:`Exception` instance in that
item's result slot, which is raised only in its own caller.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

from repro.utils.metrics import MetricsRegistry

__all__ = ["RequestBatcher", "BatcherClosed"]


class BatcherClosed(RuntimeError):
    """Raised by :meth:`RequestBatcher.submit` after the batcher closed."""


class _Slot:
    """One caller's result slot: an event, the outcome and trace state.

    ``ctx`` is the caller's optional
    :class:`~repro.serving.reqtrace.RequestContext`; ``enqueued`` is the
    submission timestamp the dispatcher diffs to compute the per-item
    queue wait.
    """

    __slots__ = ("event", "result", "error", "ctx", "enqueued")

    def __init__(self, ctx=None) -> None:
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.ctx = ctx
        self.enqueued = time.perf_counter()


class RequestBatcher:
    """Coalesce concurrent single requests into batched dispatch calls.

    Parameters
    ----------
    dispatch_fn:
        ``callable(list[request]) -> sequence[result]`` executing a whole
        batch; must return exactly one result per request, in order.  An
        :class:`Exception` instance in a result slot is raised in that
        caller alone.
    max_batch:
        Upper bound on items per dispatch call.
    max_wait_ms:
        How long the dispatcher waits for more arrivals after the first
        item of a batch, in milliseconds.  ``0`` dispatches whatever is
        queued immediately (still coalescing items that queued while a
        previous batch was executing).
    metrics:
        Optional :class:`~repro.utils.metrics.MetricsRegistry`; records
        ``serve.batch_size`` / ``serve.batch_wait_seconds`` histograms and
        the ``serve.batches`` / ``serve.coalesced_batches`` counters.
    name:
        Thread-name suffix for the dispatcher thread.
    """

    def __init__(
        self,
        dispatch_fn: Callable[[list], Sequence],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        metrics: MetricsRegistry | None = None,
        name: str = "serve",
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._dispatch_fn = dispatch_fn
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queue: list[tuple[object, _Slot]] = []
        self._closed = False
        self.dispatched = 0
        self._batch_seq = 0
        self._dispatch_ctxs: list = []
        self._thread = threading.Thread(
            target=self._run, name=f"repro-batcher-{name}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- caller side

    def submit(self, request, *, ctx=None, timeout: float | None = 30.0):
        """Block until ``request``'s batch executed; return its result.

        ``ctx`` (optional) is a
        :class:`~repro.serving.reqtrace.RequestContext`: the dispatcher
        stamps it with the batch id/size, this item's queue wait and its
        fan-back time, linking the request's trace entry to the batch
        span it rode.

        Raises :class:`BatcherClosed` when the batcher is already closed,
        :class:`TimeoutError` if no result arrived within ``timeout``
        seconds, and re-raises whatever exception the dispatch produced
        for this item or its batch.
        """
        slot = _Slot(ctx)
        with self._arrived:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            self._queue.append((request, slot))
            self._arrived.notify_all()
        if not slot.event.wait(timeout):
            raise TimeoutError(
                f"batched dispatch did not complete within {timeout}s"
            )
        if slot.error is not None:
            raise slot.error
        return slot.result

    @property
    def depth(self) -> int:
        """Requests currently queued and awaiting dispatch."""
        with self._lock:
            return len(self._queue)

    @property
    def dispatching_contexts(self) -> list:
        """The request contexts of the batch currently being dispatched.

        Only meaningful when read from *inside* ``dispatch_fn`` (which
        runs on the dispatcher thread that just set it); the server's
        trampoline uses it to attach engine-stage timings and the batch
        trace entry to the requests of the batch it is executing.
        Entries are ``None`` for items submitted without a context.
        """
        return self._dispatch_ctxs

    # --------------------------------------------------------- dispatcher side

    def _take_batch(self) -> list[tuple[object, _Slot]] | None:
        """Wait for arrivals, linger ``max_wait``, then cut one batch.

        Returns ``None`` exactly once: when the batcher closed and the
        queue is fully drained, which terminates the dispatcher thread.
        """
        with self._arrived:
            while not self._queue:
                if self._closed:
                    return None
                self._arrived.wait()
            if self.max_wait > 0:
                deadline = time.monotonic() + self.max_wait
                while len(self._queue) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrived.wait(remaining)
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            return batch

    def _run(self) -> None:
        """Dispatcher loop: cut batches and execute them until drained."""
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            start = time.perf_counter()
            requests = [request for request, _slot in batch]
            # Stamp the coalescing link before dispatch: batch identity
            # plus each item's measured queue wait.  ``dispatch_fn`` can
            # read the same contexts via ``dispatching_contexts`` to
            # attach engine-stage timings.
            self._batch_seq += 1
            batch_id = f"b{self._batch_seq}"
            self._dispatch_ctxs = [slot.ctx for _request, slot in batch]
            for _request, slot in batch:
                if slot.ctx is not None:
                    slot.ctx.begin_batch(
                        batch_id,
                        len(batch),
                        queue_wait=start - slot.enqueued,
                    )
            try:
                results = self._dispatch_fn(requests)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"dispatch returned {len(results)} results for "
                        f"{len(batch)} requests"
                    )
            except Exception as exc:  # noqa: BLE001 - delivered to callers
                fanback_start = time.perf_counter()
                for _request, slot in batch:
                    slot.error = exc
                    if slot.ctx is not None:
                        slot.ctx.stage(
                            "fanback", time.perf_counter() - fanback_start
                        )
                    slot.event.set()
                continue
            finally:
                self.dispatched += len(batch)
                self.metrics.counter("serve.batches").inc()
                if len(batch) > 1:
                    self.metrics.counter("serve.coalesced_batches").inc()
                self.metrics.histogram("serve.batch_size").observe(len(batch))
                self.metrics.histogram("serve.batch_wait_seconds").observe(
                    time.perf_counter() - start
                )
                self._dispatch_ctxs = []
            fanback_start = time.perf_counter()
            for (_request, slot), result in zip(batch, results):
                if isinstance(result, Exception):
                    slot.error = result
                else:
                    slot.result = result
                if slot.ctx is not None:
                    # Per-item fan-back: how long this item waited behind
                    # earlier items of its batch to have its slot set.
                    slot.ctx.stage(
                        "fanback", time.perf_counter() - fanback_start
                    )
                slot.event.set()

    # ---------------------------------------------------------------- lifecycle

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop accepting work, drain queued requests, join the thread.

        Everything already queued is still dispatched (callers blocked in
        :meth:`submit` get their results); only *new* submissions fail
        with :class:`BatcherClosed`.  Idempotent.
        """
        with self._arrived:
            self._closed = True
            self._arrived.notify_all()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RequestBatcher":
        """Context-manager entry: the batcher itself (already running)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()
