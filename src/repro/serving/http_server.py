"""``repro serve``: the HTTP/JSON query-serving daemon.

:class:`QueryServer` exposes a fitted model — typically a read-only
``load_bundle(mmap=True)`` bundle — over a stdlib
:class:`~http.server.ThreadingHTTPServer` (the same idiom as
:class:`~repro.utils.telemetry_server.TelemetryServer`, which it embeds
for its observability surface):

* ``POST /v1/predict`` — cross-modal candidate ranking: a JSON body with
  ``target``, ``candidates`` and at least one of ``time`` / ``location``
  / ``words``; returns cosine ``scores`` plus the stable descending
  ``ranking``;
* ``POST /v1/neighbors`` — per-modality nearest-neighbor search around a
  composed query vector;
* ``GET /metrics`` / ``/healthz`` / ``/varz`` — the live telemetry
  endpoints, rendered by the embedded
  :class:`~repro.utils.telemetry_server.TelemetryServer` on *this*
  socket (no second port).

Concurrent single-query requests are coalesced: handler threads park in
the :class:`~repro.serving.batcher.RequestBatcher` for up to
``batch_window_ms`` and execute as one vectorized
:class:`~repro.serving.service.QueryService` dispatch, with exact parity
to per-request execution.  Malformed bodies are *client* errors: they
return structured 400 payloads and count under ``serve.bad_requests``
rather than killing the handler thread with a 500.

Shutdown drains: :meth:`QueryServer.stop` stops accepting new work (late
requests get a 503), waits for in-flight handlers to finish, then drains
and joins the batcher.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.query_engine import QueryEngine
from repro.serving.batcher import BatcherClosed, RequestBatcher
from repro.serving.service import BadRequest, QueryService
from repro.utils.logging import NULL_LOGGER
from repro.utils.metrics import MetricsRegistry
from repro.utils.telemetry_server import TelemetryServer

__all__ = ["QueryServer"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


class _QueryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a backlog sized for client bursts.

    The stdlib default ``request_queue_size`` of 5 drops connections
    (ECONNRESET on the client) the moment a coalescing-friendly burst of
    concurrent clients connects at once.
    """

    daemon_threads = True
    request_queue_size = 128


class _ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to the owning :class:`QueryServer`."""

    # Built once per QueryServer via type(); the server injects itself.
    server_ref: "QueryServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Serve the observability endpoints from the embedded renderer."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        rendered = self.server_ref.telemetry.respond_get(path)
        if rendered is None:
            self._respond_json(404, {"error": f"no such endpoint: {path}"})
            return
        status, body, content_type = rendered
        self._respond(status, body, content_type)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Route ``/v1/predict`` and ``/v1/neighbors``."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        server = self.server_ref
        if path not in ("/v1/predict", "/v1/neighbors"):
            self._respond_json(404, {"error": f"no such endpoint: {path}"})
            return
        if not server.accepting:
            self._respond_json(503, {"error": "server is draining"})
            return
        server._enter_request()
        try:
            status, payload = self._handle_query(path)
        finally:
            server._exit_request()
        self._respond_json(status, payload)

    def _handle_query(self, path: str) -> tuple[int, dict]:
        """Validate, dispatch and shape one query request."""
        server = self.server_ref
        metrics = server.metrics
        with metrics.time("serve.request"):
            try:
                body = self._read_json_body()
                if path == "/v1/predict":
                    request = server.service.validate_predict(body)
                else:
                    request = server.service.validate_neighbors(body)
            except BadRequest as exc:
                metrics.counter("serve.bad_requests").inc()
                server.logger.warning(
                    "serve.bad_request", path=path, error=str(exc)
                )
                return 400, exc.to_payload()
            try:
                result = server.execute(request)
            except BatcherClosed:
                return 503, {"error": "server is draining"}
            except Exception as exc:  # noqa: BLE001 - must not kill thread
                metrics.counter("serve.errors").inc()
                server.logger.error(
                    "serve.internal_error",
                    path=path,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return 500, {"error": "internal server error"}
        server.telemetry.heartbeat()
        return 200, result

    def _read_json_body(self):
        """Read and parse the request body; malformed input is a 400."""
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header)
        except (TypeError, ValueError):
            raise BadRequest("Content-Length header is required") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise BadRequest(
                f"request body must be 0..{_MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        """Send one complete response."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, payload: dict) -> None:
        """Send ``payload`` as a JSON response."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._respond(status, body, "application/json; charset=utf-8")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs to the structured logger instead of stderr."""
        self.server_ref.logger.debug(
            "serve.request_line", detail=format % args
        )


class QueryServer:
    """Serve cross-modal queries over HTTP with request coalescing.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.prediction.GraphEmbeddingModel`
        (live Actor, or a ``load_bundle(mmap=True)`` QueryModel for
        zero-copy read-only serving).
    port:
        TCP port; ``0`` picks an ephemeral port (read :attr:`port` after
        :meth:`start`).
    host:
        Bind address; loopback by default.
    max_batch:
        Largest coalesced batch handed to the engine at once.
    batch_window_ms:
        How long a request lingers for co-travellers before dispatch.
    coalesce:
        ``False`` disables the batcher entirely — every request becomes
        its own engine call (the naive path the latency bench compares
        against).
    ann:
        ``True`` serves ``/v1/neighbors`` from per-modality IVF indexes
        (:class:`~repro.ann.engine.IndexedQueryEngine`) built eagerly at
        :meth:`start` — i.e. at bundle load for ``--mmap`` serving —
        instead of dense O(V) scans.  ``/v1/predict`` (explicit
        candidate lists) keeps the exact path.  Build time lands in the
        ``ann.build_seconds`` histogram and each query's scored fraction
        in ``ann.probed_fraction``.
    ann_nlist / ann_nprobe:
        IVF shape: inverted lists per modality and cells probed per
        query (see ``docs/operations.md`` for the tuning runbook).
    metrics / logger / stale_after:
        Shared registry, structured logger, and ``/healthz`` staleness
        threshold (see :class:`~repro.utils.telemetry_server
        .TelemetryServer`).
    """

    def __init__(
        self,
        model,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        max_batch: int = 64,
        batch_window_ms: float = 2.0,
        coalesce: bool = True,
        ann: bool = False,
        ann_nlist: int = 256,
        ann_nprobe: int = 8,
        metrics: MetricsRegistry | None = None,
        logger=None,
        stale_after: float | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.ann = bool(ann)
        self.ann_nlist = int(ann_nlist)
        self.ann_nprobe = int(ann_nprobe)
        self.model = model
        engine = self.build_engine(model)
        if self.ann:
            self.metrics.gauge("ann.nlist").set(ann_nlist)
            self.metrics.gauge("ann.nprobe").set(ann_nprobe)
        self.engine = engine
        self.service = QueryService(
            model, engine=engine, metrics=self.metrics, logger=self.logger
        )
        self.coalesce = bool(coalesce)
        self.max_batch = int(max_batch)
        self.batch_window_ms = float(batch_window_ms)
        self.batcher: RequestBatcher | None = None
        self.telemetry = TelemetryServer(
            self.metrics,
            host=host,
            slow_queries=engine.slow_queries,
            logger=logger,
            stale_after=stale_after,
        )
        self.telemetry.add_status_provider(self._serving_status)
        self.requested_port = int(port)
        self.host = host
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._accepting = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "QueryServer":
        """Bind the socket, start the batcher, serve from a daemon thread."""
        if self._httpd is not None:
            raise RuntimeError("query server already started")
        if self.coalesce:
            # The batcher gets the trampoline, not a bound dispatch:
            # reading self.service per batch is what lets swap_model
            # retarget in-flight coalescing without restarting it.
            self.batcher = RequestBatcher(
                self._dispatch_batch,
                max_batch=self.max_batch,
                max_wait_ms=self.batch_window_ms,
                metrics=self.metrics,
            )
        self.warm_engine(self.engine)
        handler = type("BoundServeHandler", (_ServeHandler,), {"server_ref": self})
        self._httpd = _QueryHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._accepting = True
        self.telemetry.mark_started()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-query-server",
            daemon=True,
        )
        self._thread.start()
        self.logger.info(
            "serve.started",
            host=self.host,
            port=self.port,
            coalesce=self.coalesce,
        )
        return self

    def stop(self, *, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, drain in-flight, join.

        In-flight requests (including ones parked in the batcher) run to
        completion within ``drain_timeout`` seconds; requests arriving
        after the drain began receive a 503.  Idempotent.
        """
        if self._httpd is None:
            return
        self._accepting = False
        with self._inflight_cond:
            self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout=drain_timeout
            )
        if self.batcher is not None:
            self.batcher.close(timeout=drain_timeout)
            self.batcher = None
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
        self.logger.info("serve.stopped")

    def __enter__(self) -> "QueryServer":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`stop` (drains in-flight work)."""
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the HTTP thread is currently serving."""
        return self._httpd is not None

    @property
    def accepting(self) -> bool:
        """Whether new query requests are admitted (False while draining)."""
        return self._accepting

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral ``port=0`` bindings)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ generations

    def build_engine(self, model):
        """A query engine over ``model`` matching this server's config.

        ANN servers get an :class:`~repro.ann.engine.IndexedQueryEngine`
        with the same ``(nlist, nprobe)`` shape; the lifecycle layer uses
        this to open green candidate bundles identically to the blue one.
        """
        if self.ann:
            from repro.ann import IndexedQueryEngine

            return IndexedQueryEngine(
                model,
                nlist=self.ann_nlist,
                nprobe=self.ann_nprobe,
                metrics=self.metrics,
                logger=self.logger,
            )
        return QueryEngine(model, metrics=self.metrics, logger=self.logger)

    def warm_engine(self, engine) -> None:
        """Build every ANN modality index of ``engine`` up front.

        Runs at :meth:`start` (bundle load for mmap serving) and again
        for each green candidate the lifecycle layer opens — always off
        the serving path, so the first neighbor query (and the atomic
        swap) never pays an index build.  Empty modalities fall back to
        the exact scan; non-ANN servers are a no-op.
        """
        if not self.ann:
            return
        for modality in engine.ann_modalities:
            if engine.model.modality_cache(modality).keys:
                engine.index_for(modality)

    def swap_model(self, model, engine, service) -> None:
        """Atomically retarget serving onto a new model generation.

        The single ``self.service`` rebind is the linearization point:
        the batcher trampoline and the direct path read it exactly once
        per dispatch (atomic under the GIL), so every batch executes
        entirely against one generation — no torn reads.  ``model`` /
        ``engine`` attrs and the slow-query log follow for telemetry and
        later swaps; requests already validated against the old service
        dispatch fine on the new one (validation is model-independent).
        """
        self.service = service
        self.model = model
        self.engine = engine
        self.telemetry.slow_queries = engine.slow_queries
        self.logger.info("serve.model_swapped")

    # -------------------------------------------------------------- execution

    def _dispatch_batch(self, requests):
        """Batcher trampoline: dispatch on the *current* service.

        Reads ``self.service`` once per batch so a concurrent
        :meth:`swap_model` either lands before this batch (all requests
        see the new generation) or after it (all see the old) — never
        mid-batch.
        """
        return self.service.dispatch(requests)

    def execute(self, request) -> dict:
        """Run one typed request through the coalesced (or direct) path."""
        batcher = self.batcher
        if batcher is not None:
            return batcher.submit(request)
        return self.service.dispatch([request])[0]

    def _enter_request(self) -> None:
        """Count one handler thread into the in-flight drain barrier."""
        with self._inflight_cond:
            self._inflight += 1

    def _exit_request(self) -> None:
        """Count one handler thread out of the in-flight drain barrier."""
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _serving_status(self) -> dict:
        """Status-provider payload merged into ``/healthz`` and ``/varz``."""
        batcher = self.batcher
        status = {
            "serving": {
                "accepting": self._accepting,
                "inflight": self._inflight,
                "coalesce": self.coalesce,
                "ann": self.ann,
                "batcher_depth": batcher.depth if batcher is not None else 0,
            }
        }
        if self.ann:
            status["ann"] = self.engine.ann_status()
        return status
