"""``repro serve``: the HTTP/JSON query-serving daemon.

:class:`QueryServer` exposes a fitted model — typically a read-only
``load_bundle(mmap=True)`` bundle — over a stdlib
:class:`~http.server.ThreadingHTTPServer` (the same idiom as
:class:`~repro.utils.telemetry_server.TelemetryServer`, which it embeds
for its observability surface):

* ``POST /v1/predict`` — cross-modal candidate ranking: a JSON body with
  ``target``, ``candidates`` and at least one of ``time`` / ``location``
  / ``words``; returns cosine ``scores`` plus the stable descending
  ``ranking``;
* ``POST /v1/neighbors`` — per-modality nearest-neighbor search around a
  composed query vector;
* ``GET /metrics`` / ``/healthz`` / ``/varz`` / ``/debug/requests`` —
  the live telemetry endpoints, rendered by the embedded
  :class:`~repro.utils.telemetry_server.TelemetryServer` on *this*
  socket (no second port).

Every request is traced (``trace_requests=True``): an id from the
inbound ``X-Request-Id`` header (or freshly generated) is echoed back in
the response headers, the request's stage timings — validation, batcher
queue wait, engine snap/gather/score, ANN probe, fan-back — land in a
bounded :class:`~repro.serving.reqtrace.TraceRing` served at
``/debug/requests``, and each entry links to the coalesced batch span it
rode plus the lifecycle epoch it executed against.  An
:class:`~repro.utils.slo.SLOEngine` evaluates availability and latency
burn rates on every health scrape.

Concurrent single-query requests are coalesced: handler threads park in
the :class:`~repro.serving.batcher.RequestBatcher` for up to
``batch_window_ms`` and execute as one vectorized
:class:`~repro.serving.service.QueryService` dispatch, with exact parity
to per-request execution.  Malformed bodies are *client* errors: they
return structured 400 payloads and count under ``serve.bad_requests``
rather than killing the handler thread with a 500.

Shutdown drains: :meth:`QueryServer.stop` stops accepting new work (late
requests get a 503), waits for in-flight handlers to finish, then drains
and joins the batcher.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.query_engine import QueryEngine
from repro.serving.batcher import BatcherClosed, RequestBatcher
from repro.serving.reqtrace import (
    QUEUE_WAIT_HEADER,
    REQUEST_ID_HEADER,
    RequestContext,
    TraceRing,
    request_id_from_header,
)
from repro.serving.service import BadRequest, QueryService
from repro.utils.logging import NULL_LOGGER
from repro.utils.metrics import MetricsRegistry
from repro.utils.slo import (
    SLObjective,
    SLOEngine,
    availability_source,
    latency_source,
)
from repro.utils.telemetry_server import TelemetryServer

__all__ = ["QueryServer"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


class _QueryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a backlog sized for client bursts.

    The stdlib default ``request_queue_size`` of 5 drops connections
    (ECONNRESET on the client) the moment a coalescing-friendly burst of
    concurrent clients connects at once.
    """

    daemon_threads = True
    request_queue_size = 128


class _ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to the owning :class:`QueryServer`."""

    # Built once per QueryServer via type(); the server injects itself.
    server_ref: "QueryServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Serve the observability endpoints from the embedded renderer."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        rendered = self.server_ref.telemetry.respond_get(path)
        if rendered is None:
            self._respond_json(404, {"error": f"no such endpoint: {path}"})
            return
        status, body, content_type = rendered
        self._respond(status, body, content_type)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Route ``/v1/predict`` and ``/v1/neighbors``.

        Admitted requests get a :class:`~repro.serving.reqtrace
        .RequestContext` (honoring an inbound ``X-Request-Id``); the id
        and measured queue wait are echoed as response headers, non-200
        payloads additionally name the id so clients can quote it, and
        the finished context lands in the server's trace ring *before*
        the response bytes go out (a client can always find its own
        request at ``/debug/requests`` afterwards).
        """
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        server = self.server_ref
        if path not in ("/v1/predict", "/v1/neighbors"):
            self._respond_json(404, {"error": f"no such endpoint: {path}"})
            return
        if not server.accepting:
            self._respond_json(503, {"error": "server is draining"})
            return
        ctx = server.new_request_context(
            path, self.headers.get(REQUEST_ID_HEADER)
        )
        started = time.perf_counter()
        server._enter_request()
        try:
            status, payload = self._handle_query(path, ctx)
        finally:
            server._exit_request()
        headers = None
        if ctx is not None:
            if status != 200:
                payload = dict(payload)
                payload.setdefault("request_id", ctx.request_id)
            headers = {
                REQUEST_ID_HEADER: ctx.request_id,
                QUEUE_WAIT_HEADER: (
                    f"{ctx.queue_wait_seconds * 1e3:.3f}"
                ),
            }
        server.finalize_request(
            ctx,
            status,
            seconds=time.perf_counter() - started,
            error=payload.get("error") if status != 200 else None,
        )
        self._respond_json(status, payload, headers=headers)

    def _handle_query(
        self, path: str, ctx: RequestContext | None
    ) -> tuple[int, dict]:
        """Validate, dispatch and shape one query request."""
        server = self.server_ref
        metrics = server.metrics
        with metrics.time("serve.request"):
            validate_start = time.perf_counter()
            try:
                body = self._read_json_body()
                if path == "/v1/predict":
                    request = server.service.validate_predict(body)
                else:
                    request = server.service.validate_neighbors(body)
            except BadRequest as exc:
                metrics.counter("serve.bad_requests").inc()
                server.logger.warning(
                    "serve.bad_request", path=path, error=str(exc)
                )
                return 400, exc.to_payload()
            finally:
                if ctx is not None:
                    ctx.stage(
                        "validate", time.perf_counter() - validate_start
                    )
            try:
                result = server.execute(request, ctx)
            except BatcherClosed:
                return 503, {"error": "server is draining"}
            except Exception as exc:  # noqa: BLE001 - must not kill thread
                metrics.counter("serve.errors").inc()
                server.logger.error(
                    "serve.internal_error",
                    path=path,
                    request_id=ctx.request_id if ctx is not None else None,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return 500, {"error": "internal server error"}
        server.telemetry.heartbeat()
        return 200, result

    def _read_json_body(self):
        """Read and parse the request body; malformed input is a 400."""
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header)
        except (TypeError, ValueError):
            raise BadRequest("Content-Length header is required") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise BadRequest(
                f"request body must be 0..{_MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None

    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> None:
        """Send one complete response (plus optional extra headers)."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        """Send ``payload`` as a JSON response."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._respond(
            status, body, "application/json; charset=utf-8", headers
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs to the structured logger instead of stderr."""
        self.server_ref.logger.debug(
            "serve.request_line", detail=format % args
        )


class QueryServer:
    """Serve cross-modal queries over HTTP with request coalescing.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.prediction.GraphEmbeddingModel`
        (live Actor, or a ``load_bundle(mmap=True)`` QueryModel for
        zero-copy read-only serving).
    port:
        TCP port; ``0`` picks an ephemeral port (read :attr:`port` after
        :meth:`start`).
    host:
        Bind address; loopback by default.
    max_batch:
        Largest coalesced batch handed to the engine at once.
    batch_window_ms:
        How long a request lingers for co-travellers before dispatch.
    coalesce:
        ``False`` disables the batcher entirely — every request becomes
        its own engine call (the naive path the latency bench compares
        against).
    ann:
        ``True`` serves ``/v1/neighbors`` from per-modality IVF indexes
        (:class:`~repro.ann.engine.IndexedQueryEngine`) built eagerly at
        :meth:`start` — i.e. at bundle load for ``--mmap`` serving —
        instead of dense O(V) scans.  ``/v1/predict`` (explicit
        candidate lists) keeps the exact path.  Build time lands in the
        ``ann.build_seconds`` histogram and each query's scored fraction
        in ``ann.probed_fraction``.
    ann_nlist / ann_nprobe:
        IVF shape: inverted lists per modality and cells probed per
        query (see ``docs/operations.md`` for the tuning runbook).
    shards:
        Scatter-gather fan-out width for ``/v1/neighbors``.  ``0``
        (default) auto-detects: models backed by a
        :class:`~repro.sharding.ShardedStore` (format-v3 bundles) fan
        out over their store's shard count, everything else serves the
        single-replica path.  Any value ``> 1`` forces a
        :class:`~repro.sharding.ShardedQueryEngine` (or its indexed
        variant with ``ann``) of that width even over an unsharded
        store; merged results stay bit-exact either way.
    metrics / logger / stale_after:
        Shared registry, structured logger, and ``/healthz`` staleness
        threshold (see :class:`~repro.utils.telemetry_server
        .TelemetryServer`).
    trace_requests:
        ``True`` (default) assigns every request an id, records its
        stage-timing breakdown in the trace ring behind
        ``/debug/requests`` and echoes ``X-Request-Id`` /
        ``X-Queue-Wait-Ms`` response headers.  ``False`` turns the whole
        request-scoped layer off (the tracing-overhead bench's
        baseline); aggregate metrics and the SLO engine keep working.
    trace_ring_size:
        Retained request entries in the trace ring.
    slow_request_ms:
        Advisory slow threshold stamped on ``/debug/requests`` payloads
        (``repro tail`` uses it to label exemplars).
    slo:
        ``True`` (default) attaches an :class:`~repro.utils.slo
        .SLOEngine` with an availability and a latency objective,
        evaluated on every ``/healthz`` / ``/varz`` scrape and exported
        as ``slo.*`` metrics.
    slo_availability_target:
        Required non-5xx fraction (default 99.9%).
    slo_latency_target / slo_latency_threshold_ms:
        Required fraction of requests (default 99%) served within the
        threshold (default 250ms), read from the ``serve.request_seconds``
        log-spaced histogram.
    """

    def __init__(
        self,
        model,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        max_batch: int = 64,
        batch_window_ms: float = 2.0,
        coalesce: bool = True,
        ann: bool = False,
        ann_nlist: int = 256,
        ann_nprobe: int = 8,
        shards: int = 0,
        metrics: MetricsRegistry | None = None,
        logger=None,
        stale_after: float | None = None,
        trace_requests: bool = True,
        trace_ring_size: int = 256,
        slow_request_ms: float = 100.0,
        slo: bool = True,
        slo_availability_target: float = 0.999,
        slo_latency_target: float = 0.99,
        slo_latency_threshold_ms: float = 250.0,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.ann = bool(ann)
        self.ann_nlist = int(ann_nlist)
        self.ann_nprobe = int(ann_nprobe)
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.shards = int(shards)
        self.model = model
        engine = self.build_engine(model)
        if self.ann:
            self.metrics.gauge("ann.nlist").set(ann_nlist)
            self.metrics.gauge("ann.nprobe").set(ann_nprobe)
        self.engine = engine
        self.service = QueryService(
            model, engine=engine, metrics=self.metrics, logger=self.logger
        )
        self.coalesce = bool(coalesce)
        self.max_batch = int(max_batch)
        self.batch_window_ms = float(batch_window_ms)
        self.batcher: RequestBatcher | None = None
        self.trace_ring = (
            TraceRing(int(trace_ring_size), slow_ms=float(slow_request_ms))
            if trace_requests
            else None
        )
        self.slo_engine: SLOEngine | None = None
        if slo:
            self.slo_engine = SLOEngine(self.metrics)
            self.slo_engine.add_objective(
                SLObjective(
                    "availability",
                    target=slo_availability_target,
                    description="non-5xx fraction of admitted requests",
                ),
                availability_source(self.metrics),
            )
            threshold = float(slo_latency_threshold_ms) / 1e3
            self.slo_engine.add_objective(
                SLObjective(
                    "latency",
                    target=slo_latency_target,
                    threshold=threshold,
                    description=(
                        f"requests served within "
                        f"{slo_latency_threshold_ms:g}ms"
                    ),
                ),
                latency_source(self.metrics, threshold=threshold),
            )
        self.active_epoch = 0
        self._lifecycle_state = None
        self._direct_ids = itertools.count(1)
        self.telemetry = TelemetryServer(
            self.metrics,
            host=host,
            slow_queries=engine.slow_queries,
            logger=logger,
            stale_after=stale_after,
            trace_ring=self.trace_ring,
        )
        self.telemetry.add_status_provider(self._serving_status)
        if self.slo_engine is not None:
            self.telemetry.add_status_provider(self.slo_engine.status)
        self.requested_port = int(port)
        self.host = host
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._accepting = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "QueryServer":
        """Bind the socket, start the batcher, serve from a daemon thread."""
        if self._httpd is not None:
            raise RuntimeError("query server already started")
        if self.coalesce:
            # The batcher gets the trampoline, not a bound dispatch:
            # reading self.service per batch is what lets swap_model
            # retarget in-flight coalescing without restarting it.
            self.batcher = RequestBatcher(
                self._dispatch_batch,
                max_batch=self.max_batch,
                max_wait_ms=self.batch_window_ms,
                metrics=self.metrics,
            )
        self.warm_engine(self.engine)
        handler = type("BoundServeHandler", (_ServeHandler,), {"server_ref": self})
        self._httpd = _QueryHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._accepting = True
        self.telemetry.mark_started()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-query-server",
            daemon=True,
        )
        self._thread.start()
        self.logger.info(
            "serve.started",
            host=self.host,
            port=self.port,
            coalesce=self.coalesce,
        )
        return self

    def stop(self, *, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, drain in-flight, join.

        In-flight requests (including ones parked in the batcher) run to
        completion within ``drain_timeout`` seconds; requests arriving
        after the drain began receive a 503.  Idempotent.
        """
        if self._httpd is None:
            return
        self._accepting = False
        with self._inflight_cond:
            self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout=drain_timeout
            )
        if self.batcher is not None:
            self.batcher.close(timeout=drain_timeout)
            self.batcher = None
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
        self.logger.info("serve.stopped")

    def __enter__(self) -> "QueryServer":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`stop` (drains in-flight work)."""
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the HTTP thread is currently serving."""
        return self._httpd is not None

    @property
    def accepting(self) -> bool:
        """Whether new query requests are admitted (False while draining)."""
        return self._accepting

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ephemeral ``port=0`` bindings)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ generations

    def shards_for(self, model) -> int:
        """The fan-out width serving ``model`` would use.

        An explicit ``shards`` setting wins; otherwise a model backed by
        a :class:`~repro.sharding.ShardedStore` inherits its store's
        shard count and anything else serves unsharded.
        """
        if self.shards:
            return self.shards
        from repro.sharding import ShardedStore

        store = getattr(model, "_store", None) or getattr(
            model, "store", None
        )
        return store.n_shards if isinstance(store, ShardedStore) else 1

    def build_engine(self, model):
        """A query engine over ``model`` matching this server's config.

        ANN servers get an :class:`~repro.ann.engine.IndexedQueryEngine`
        with the same ``(nlist, nprobe)`` shape; the lifecycle layer uses
        this to open green candidate bundles identically to the blue one.
        When sharding is active (:meth:`shards_for`), the sharded
        scatter-gather variants take over with the same shapes.
        """
        n_shards = self.shards_for(model)
        if n_shards > 1:
            from repro.sharding import (
                ShardedIndexedQueryEngine,
                ShardedQueryEngine,
            )

            if self.ann:
                return ShardedIndexedQueryEngine(
                    model,
                    nlist=self.ann_nlist,
                    nprobe=self.ann_nprobe,
                    n_shards=n_shards,
                    metrics=self.metrics,
                    logger=self.logger,
                )
            return ShardedQueryEngine(
                model,
                n_shards=n_shards,
                metrics=self.metrics,
                logger=self.logger,
            )
        if self.ann:
            from repro.ann import IndexedQueryEngine

            return IndexedQueryEngine(
                model,
                nlist=self.ann_nlist,
                nprobe=self.ann_nprobe,
                metrics=self.metrics,
                logger=self.logger,
            )
        return QueryEngine(model, metrics=self.metrics, logger=self.logger)

    def warm_engine(self, engine) -> None:
        """Build every ANN modality index of ``engine`` up front.

        Runs at :meth:`start` (bundle load for mmap serving) and again
        for each green candidate the lifecycle layer opens — always off
        the serving path, so the first neighbor query (and the atomic
        swap) never pays an index build.  Empty modalities fall back to
        the exact scan; non-ANN servers are a no-op.
        """
        if not self.ann:
            return
        for modality in engine.ann_modalities:
            if engine.model.modality_cache(modality).keys:
                if hasattr(engine, "indexes_for"):
                    engine.indexes_for(modality)  # one index per shard
                else:
                    engine.index_for(modality)

    def swap_model(self, model, engine, service) -> None:
        """Atomically retarget serving onto a new model generation.

        The single ``self.service`` rebind is the linearization point:
        the batcher trampoline and the direct path read it exactly once
        per dispatch (atomic under the GIL), so every batch executes
        entirely against one generation — no torn reads.  ``model`` /
        ``engine`` attrs and the slow-query log follow for telemetry and
        later swaps; requests already validated against the old service
        dispatch fine on the new one (validation is model-independent).
        """
        self.service = service
        self.model = model
        self.engine = engine
        self.telemetry.slow_queries = engine.slow_queries
        self.logger.info("serve.model_swapped")

    # ----------------------------------------------------------- request trace

    def new_request_context(self, endpoint: str, header_value: str | None):
        """A :class:`~repro.serving.reqtrace.RequestContext` for one
        admitted request — or ``None`` when request tracing is off.

        ``header_value`` is the raw inbound ``X-Request-Id`` (honored
        when usable, replaced by a generated id otherwise).
        """
        if self.trace_ring is None:
            return None
        return RequestContext(
            request_id_from_header(header_value), endpoint
        )

    def lifecycle_info(self) -> dict:
        """The lifecycle context stamped on trace entries.

        ``epoch`` is the generation currently serving (0 before any
        lifecycle management); ``swap_in_progress`` is true while the
        bound :class:`~repro.lifecycle.manager.LifecycleManager` is
        mid-decision (gating / promoting / rolling back), which is
        exactly when a tail spike should be attributed to the lifecycle
        rather than to traffic.
        """
        state_fn = self._lifecycle_state
        state = state_fn() if state_fn is not None else "idle"
        return {
            "epoch": self.active_epoch,
            "state": state,
            "swap_in_progress": state != "idle",
        }

    def bind_lifecycle(self, state_fn) -> None:
        """Register the lifecycle manager's state callable (see
        :meth:`lifecycle_info`); called by ``LifecycleManager``."""
        self._lifecycle_state = state_fn

    def finalize_request(
        self,
        ctx,
        status: int,
        *,
        seconds: float,
        error: str | None = None,
    ) -> None:
        """Account one finished request: SLO counters + trace ring entry.

        Runs for every admitted request whether or not it was traced
        (``ctx`` may be ``None``), so the SLO sources see identical
        traffic with tracing on or off.
        """
        self.metrics.counter("serve.responses").inc()
        if status >= 500:
            self.metrics.counter("serve.responses_5xx").inc()
        self.metrics.histogram("serve.request_seconds").observe(seconds)
        if ctx is None or self.trace_ring is None:
            return
        ctx.lifecycle = self.lifecycle_info()
        ctx.finish(status, error=error)
        self.trace_ring.record(ctx.to_entry())

    # -------------------------------------------------------------- execution

    def _dispatch_batch(self, requests):
        """Batcher trampoline: dispatch on the *current* service.

        Reads ``self.service`` once per batch so a concurrent
        :meth:`swap_model` either lands before this batch (all requests
        see the new generation) or after it (all see the old) — never
        mid-batch.
        """
        service = self.service
        batcher = self.batcher
        ctxs = (
            batcher.dispatching_contexts if batcher is not None else []
        )
        if self.trace_ring is None or not any(
            ctx is not None for ctx in ctxs
        ):
            return service.dispatch(requests)
        return self._traced_dispatch(service, requests, ctxs)

    def _traced_dispatch(self, service, requests, ctxs):
        """Dispatch with engine-stage collection and a batch trace entry.

        Wraps the service dispatch in the engine's
        :meth:`~repro.core.query_engine.QueryEngine.collect_stages` sink,
        then fans the measured snap / gather / score / ANN timings out to
        every linked request context and records one batch entry in the
        trace ring — ``links`` lists the request ids it served.  The
        entry is recorded even when the dispatch raises (with the error
        attached), so errored requests still resolve to their batch.
        """
        engine = service.engine
        start = time.perf_counter()
        error = None
        stages: dict = {}
        try:
            with engine.collect_stages() as stages:
                return service.dispatch(requests)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            seconds = time.perf_counter() - start
            values = stages.pop("values", {})
            linked = [ctx for ctx in ctxs if ctx is not None]
            for ctx in linked:
                ctx.dispatch_seconds = seconds
                for name, stage_seconds in stages.items():
                    ctx.stage(name, stage_seconds)
                for key, value in values.items():
                    ctx.note(key, value)
            entry = {
                "kind": "batch",
                "id": linked[0].batch_id if linked else None,
                "ts": time.time(),
                "size": len(requests),
                "coalesced": len(requests) > 1,
                "dispatch_ms": round(seconds * 1e3, 3),
                "stages_ms": {
                    name: round(stage_seconds * 1e3, 3)
                    for name, stage_seconds in sorted(stages.items())
                },
                "links": [ctx.request_id for ctx in linked],
            }
            if values:
                entry["values"] = values
            if error is not None:
                entry["error"] = error
            self.trace_ring.record_batch(entry)

    def execute(self, request, ctx=None) -> dict:
        """Run one typed request through the coalesced (or direct) path.

        ``ctx`` (optional) is the request's trace context: the coalesced
        path hands it to the batcher, the direct path stamps a
        synthetic batch-of-one (``d<n>`` ids, zero queue wait) so trace
        entries link to exactly one batch span either way.
        """
        batcher = self.batcher
        if batcher is not None:
            return batcher.submit(request, ctx=ctx)
        if ctx is not None and self.trace_ring is not None:
            ctx.begin_batch(
                f"d{next(self._direct_ids)}", 1, queue_wait=0.0
            )
            return self._traced_dispatch(self.service, [request], [ctx])[0]
        return self.service.dispatch([request])[0]

    def _enter_request(self) -> None:
        """Count one handler thread into the in-flight drain barrier."""
        with self._inflight_cond:
            self._inflight += 1

    def _exit_request(self) -> None:
        """Count one handler thread out of the in-flight drain barrier."""
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _serving_status(self) -> dict:
        """Status-provider payload merged into ``/healthz`` and ``/varz``."""
        batcher = self.batcher
        ring = self.trace_ring
        status = {
            "serving": {
                "accepting": self._accepting,
                "inflight": self._inflight,
                "coalesce": self.coalesce,
                "ann": self.ann,
                "batcher_depth": batcher.depth if batcher is not None else 0,
                "trace_requests": ring is not None,
                "traced_requests": ring.recorded if ring is not None else 0,
                "active_epoch": self.active_epoch,
            }
        }
        if self.ann:
            status["ann"] = self.engine.ann_status()
        shard_status = getattr(self.engine, "shard_status", None)
        if shard_status is not None:
            status["sharding"] = shard_status()
        return status
