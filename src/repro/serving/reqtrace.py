"""Request-scoped tracing: per-request ids, stage timings, trace ring.

Aggregate metrics (histograms, counters) say *that* p99 moved; this
module says *why a particular request was slow*.  Every HTTP request
gets a :class:`RequestContext` carrying a request id (honoring an
inbound ``X-Request-Id`` header, echoed back in the response), a
stage-timing map and the coalescing/lifecycle context it executed
under.  Finished contexts land in a bounded :class:`TraceRing` that the
server exposes at ``/debug/requests`` and, at shutdown, exports to
``requests.jsonl`` for ``repro tail``.

The span-link schema mirrors distributed-tracing practice collapsed
into one process: each *request entry* links to exactly one *batch
entry* (the coalesced dispatch it rode) via ``batch.id``, and each
batch entry lists the request ids it served in ``links``.  Batch
entries carry the engine's per-stage timings (snap / gather / score /
ANN probe; sharded engines add ``scatter`` / ``merge`` for the
per-shard fan-out and the top-k merge, plus a ``shards.fanout`` value)
measured once per dispatch — shared by every linked request, which is
exactly how coalescing spends the time.

Stage accounting invariant: for any request entry, the sum of
``stages_ms`` values is <= ``duration_ms`` (wall time).  ``queue_wait``
and ``fanback`` are measured per item by the batcher; the engine stages
happen inside the dispatch window that the request spent blocked on its
slot event; ``validate`` precedes enqueue.  Nothing is double-counted.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from collections import deque
from pathlib import Path

__all__ = [
    "RequestContext",
    "TraceRing",
    "REQUEST_ID_HEADER",
    "QUEUE_WAIT_HEADER",
    "request_id_from_header",
    "load_request_trace",
    "summarize_tail",
    "render_tail_summary",
]

#: Header carrying the request id, inbound (honored) and outbound (echoed).
REQUEST_ID_HEADER = "X-Request-Id"
#: Response header reporting the request's coalescing queue wait (ms).
QUEUE_WAIT_HEADER = "X-Queue-Wait-Ms"

_MAX_ID_LENGTH = 128


def request_id_from_header(value: str | None) -> str:
    """A usable request id: the inbound header value, or a fresh one.

    Inbound ids are stripped, truncated to 128 characters and must be
    printable ASCII without whitespace (anything else is replaced by a
    generated id, so a hostile header can never corrupt the trace ring
    or the echoed response header).
    """
    if value:
        candidate = value.strip()[:_MAX_ID_LENGTH]
        if candidate and all(33 <= ord(ch) <= 126 for ch in candidate):
            return candidate
    return uuid.uuid4().hex[:16]


def _ms(seconds: float) -> float:
    """Seconds -> milliseconds, rounded to 3 decimals (µs resolution)."""
    return round(seconds * 1e3, 3)


class RequestContext:
    """One in-flight request's trace state, stamped as it moves through
    the handler thread, the batcher queue and the dispatch.

    Handler threads create one per request; the batcher stamps
    ``queue_wait`` / batch identity before dispatch and ``fanback``
    after; the server copies the dispatch's engine-stage timings in via
    :meth:`stage`.  :meth:`finish` freezes the wall-clock duration, and
    :meth:`to_entry` renders the JSON-safe ring entry.
    """

    __slots__ = (
        "request_id",
        "endpoint",
        "started_at",
        "stages",
        "values",
        "batch_id",
        "batch_size",
        "dispatch_seconds",
        "status",
        "error",
        "lifecycle",
        "duration",
        "_t0",
    )

    def __init__(self, request_id: str, endpoint: str) -> None:
        self.request_id = request_id
        self.endpoint = endpoint
        self.started_at = time.time()
        self.stages: dict[str, float] = {}
        self.values: dict[str, float] = {}
        self.batch_id: str | None = None
        self.batch_size = 0
        self.dispatch_seconds = 0.0
        self.status: int | None = None
        self.error: str | None = None
        self.lifecycle: dict | None = None
        self.duration: float | None = None
        self._t0 = time.perf_counter()

    def stage(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under stage ``name`` (additive)."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def note(self, key: str, value: float) -> None:
        """Attach a non-duration observation (e.g. ANN probed fraction)."""
        self.values[key] = value

    def begin_batch(
        self, batch_id: str, size: int, *, queue_wait: float
    ) -> None:
        """Stamp the coalescing link: which dispatch this request rode."""
        self.batch_id = batch_id
        self.batch_size = size
        self.stage("queue_wait", queue_wait)

    @property
    def queue_wait_seconds(self) -> float:
        """Time spent queued in the batcher (0 before dispatch)."""
        return self.stages.get("queue_wait", 0.0)

    def finish(self, status: int, *, error: str | None = None) -> None:
        """Freeze wall time and record the response outcome."""
        self.duration = time.perf_counter() - self._t0
        self.status = status
        self.error = error

    def to_entry(self) -> dict:
        """The JSON-safe ring entry (durations in milliseconds)."""
        entry = {
            "kind": "request",
            "id": self.request_id,
            "endpoint": self.endpoint,
            "ts": self.started_at,
            "status": self.status,
            "duration_ms": _ms(self.duration or 0.0),
            "stages_ms": {
                name: _ms(seconds)
                for name, seconds in sorted(self.stages.items())
            },
            "batch": (
                {
                    "id": self.batch_id,
                    "size": self.batch_size,
                    "dispatch_ms": _ms(self.dispatch_seconds),
                }
                if self.batch_id is not None
                else None
            ),
        }
        if self.values:
            entry["values"] = dict(self.values)
        if self.lifecycle is not None:
            entry["lifecycle"] = dict(self.lifecycle)
        if self.error is not None:
            entry["error"] = self.error
        return entry


class TraceRing:
    """Bounded, lock-protected ring of finished request/batch entries.

    Three deques with independent capacities: ``recent`` requests (the
    main ring), ``errors`` (5xx / transport failures, retained even
    when healthy traffic would evict them) and ``batches`` (dispatch
    spans that request entries link to).  :meth:`snapshot` renders the
    ``/debug/requests`` payload: recent requests, the slowest among
    them, retained errors and recent batches.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        error_capacity: int = 64,
        batch_capacity: int = 256,
        slow_ms: float = 100.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.slow_ms = float(slow_ms)
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=self.capacity)
        self._errors: deque[dict] = deque(maxlen=int(error_capacity))
        self._batches: deque[dict] = deque(maxlen=int(batch_capacity))
        self.recorded = 0
        self.recorded_errors = 0
        self.recorded_batches = 0

    def record(self, entry: dict) -> None:
        """Add one finished request entry (errors are double-kept)."""
        status = entry.get("status")
        errored = (
            entry.get("error") is not None
            or status is None
            or int(status) >= 500
        )
        with self._lock:
            self._recent.append(entry)
            self.recorded += 1
            if errored:
                self._errors.append(entry)
                self.recorded_errors += 1

    def record_batch(self, entry: dict) -> None:
        """Add one batch-dispatch entry (the span requests link to)."""
        with self._lock:
            self._batches.append(entry)
            self.recorded_batches += 1

    def entries(self) -> list[dict]:
        """Every retained request entry, oldest first (export surface)."""
        with self._lock:
            return list(self._recent)

    def batch_entries(self) -> list[dict]:
        """Every retained batch entry, oldest first."""
        with self._lock:
            return list(self._batches)

    def snapshot(
        self, *, recent: int = 32, slowest: int = 16, errors: int = 16
    ) -> dict:
        """The ``/debug/requests`` payload.

        ``recent`` / ``errors`` are newest-first; ``slowest`` ranks the
        retained ring by ``duration_ms`` (worst first) so a scrape
        during an incident surfaces the tail immediately.
        """
        with self._lock:
            retained = list(self._recent)
            errored = list(self._errors)
            batches = list(self._batches)
        slow = sorted(
            retained, key=lambda e: e.get("duration_ms", 0.0), reverse=True
        )[:slowest]
        return {
            "recorded": self.recorded,
            "recorded_errors": self.recorded_errors,
            "recorded_batches": self.recorded_batches,
            "slow_ms": self.slow_ms,
            "recent": list(reversed(retained[-recent:])),
            "slowest": slow,
            "errors": list(reversed(errored[-errors:])),
            "batches": list(reversed(batches[-recent:])),
        }

    def export_jsonl(self, path: str | Path) -> Path:
        """Write retained request then batch entries, one per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for entry in self.entries() + self.batch_entries():
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return path


def load_request_trace(path: str | Path) -> tuple[list[dict], list[dict]]:
    """Read a :meth:`TraceRing.export_jsonl` file back.

    Returns ``(requests, batches)`` split by each line's ``kind`` field;
    unmarked lines are treated as request entries for forward
    compatibility with hand-built files.
    """
    requests: list[dict] = []
    batches: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("kind") == "batch":
                batches.append(entry)
            else:
                requests.append(entry)
    return requests, batches


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q / 100.0 * len(sorted_values)) - 1
    return sorted_values[max(0, min(rank, len(sorted_values) - 1))]


def summarize_tail(
    requests: list[dict], *, q: float = 99.0, slowest: int = 8
) -> dict:
    """Attribute the latency tail of request-trace entries to stages.

    Computes overall duration percentiles, then isolates the *tail set*
    (the slowest ``100 - q`` percent of requests, at least one) and
    ranks stages by the total time they consumed inside that set —
    "where do the slow requests spend their time", which is the
    question a p99 regression poses.  Returns::

        {
          "n": ..., "p50_ms": ..., "p90_ms": ..., "p99_ms": ...,
          "tail": {"q": 99.0, "threshold_ms": ..., "n": ...},
          "stages": [
            {"stage": "score", "n": ..., "total_ms": ...,
             "mean_ms": ..., "share": 0.41},   # of tail wall time
            ...
          ],
          "slowest": [<request entries, worst first, capped>],
        }

    ``requests`` are ring entries (:meth:`RequestContext.to_entry`
    shape) from ``/debug/requests`` or a ``requests.jsonl`` export.
    """
    durations = sorted(
        float(entry.get("duration_ms", 0.0)) for entry in requests
    )
    ranked_requests = sorted(
        requests,
        key=lambda e: float(e.get("duration_ms", 0.0)),
        reverse=True,
    )
    # The tail set is the worst (100 - q)% of requests (at least one),
    # taken by rank rather than by threshold so a duration that ties
    # the p99 value doesn't sweep the whole distribution in.
    tail_n = (
        max(1, math.ceil(len(requests) * (100.0 - q) / 100.0 - 1e-9))
        if requests
        else 0
    )
    tail = ranked_requests[:tail_n]
    threshold = (
        float(tail[-1].get("duration_ms", 0.0)) if tail else 0.0
    )
    tail_wall = sum(float(e.get("duration_ms", 0.0)) for e in tail)
    stage_rows: dict[str, dict] = {}
    for entry in tail:
        for stage, ms in (entry.get("stages_ms") or {}).items():
            row = stage_rows.setdefault(
                stage, {"stage": stage, "n": 0, "total_ms": 0.0}
            )
            row["n"] += 1
            row["total_ms"] += float(ms)
    for row in stage_rows.values():
        row["total_ms"] = round(row["total_ms"], 3)
        row["mean_ms"] = round(row["total_ms"] / row["n"], 3)
        row["share"] = (
            round(row["total_ms"] / tail_wall, 4) if tail_wall > 0 else 0.0
        )
    ranked = sorted(
        stage_rows.values(), key=lambda r: r["total_ms"], reverse=True
    )
    worst = ranked_requests[: max(0, int(slowest))]
    return {
        "n": len(requests),
        "p50_ms": round(_nearest_rank(durations, 50.0), 3),
        "p90_ms": round(_nearest_rank(durations, 90.0), 3),
        "p99_ms": round(_nearest_rank(durations, 99.0), 3),
        "tail": {
            "q": float(q),
            "threshold_ms": round(threshold, 3),
            "n": len(tail),
        },
        "stages": ranked,
        "slowest": worst,
    }


def render_tail_summary(summary: dict, *, title: str = "tail") -> str:
    """Aligned text rendering of a :func:`summarize_tail` result.

    Two tables: stages ranked by their share of tail wall time, then
    the slowest exemplar requests with their coalescing batch and the
    serving epoch they executed under.
    """
    lines = [
        f"{title}: {summary['n']} requests  "
        f"p50={summary['p50_ms']}ms  p90={summary['p90_ms']}ms  "
        f"p99={summary['p99_ms']}ms",
        f"tail set: {summary['tail']['n']} request(s) >= "
        f"{summary['tail']['threshold_ms']}ms "
        f"(p{summary['tail']['q']:g})",
    ]
    if summary["stages"]:
        width = max(len(row["stage"]) for row in summary["stages"])
        lines.append("stages by tail contribution:")
        for row in summary["stages"]:
            lines.append(
                f"  {row['stage'].ljust(width)}  "
                f"total={row['total_ms']:9.3f}ms  "
                f"mean={row['mean_ms']:8.3f}ms  "
                f"share={row['share'] * 100:5.1f}%  n={row['n']}"
            )
    if summary["slowest"]:
        lines.append("slowest requests:")
        for entry in summary["slowest"]:
            batch = entry.get("batch") or {}
            lifecycle = entry.get("lifecycle") or {}
            top_stage = max(
                (entry.get("stages_ms") or {}).items(),
                key=lambda kv: kv[1],
                default=(None, 0.0),
            )
            detail = (
                f"  {entry.get('id', '?')}  {entry.get('endpoint', '?')}  "
                f"{entry.get('duration_ms', 0.0)}ms  "
                f"status={entry.get('status')}"
            )
            if top_stage[0] is not None:
                detail += f"  top_stage={top_stage[0]}:{top_stage[1]}ms"
            if batch.get("id"):
                detail += f"  batch={batch['id']}(n={batch.get('size')})"
            if "epoch" in lifecycle:
                detail += f"  epoch={lifecycle['epoch']}"
                if lifecycle.get("swap_in_progress"):
                    detail += f"  swapping={lifecycle.get('state')}"
            lines.append(detail)
    return "\n".join(lines)
