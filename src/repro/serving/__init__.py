"""Query serving: HTTP daemon, request coalescing, synthetic load replay.

The serving layer turns a fitted model (usually a read-only
``load_bundle(mmap=True)`` bundle) into a network service:

* :class:`~repro.serving.http_server.QueryServer` — the ``repro serve``
  daemon: ``POST /v1/predict`` + ``POST /v1/neighbors`` plus the live
  ``/metrics`` / ``/healthz`` / ``/varz`` / ``/debug/requests``
  observability surface;
* :class:`~repro.serving.batcher.RequestBatcher` — coalesces concurrent
  single queries into the engine's vectorized batch path with exact
  per-request parity;
* :class:`~repro.serving.service.QueryService` — validation
  (:class:`~repro.serving.service.BadRequest` → structured 400s) and
  batched dispatch;
* :class:`~repro.serving.reqtrace.RequestContext` /
  :class:`~repro.serving.reqtrace.TraceRing` — request-scoped tracing:
  per-request ids (inbound ``X-Request-Id`` honored and echoed), stage
  timings, span links through coalesced batches, and the bounded
  in-memory ring behind ``/debug/requests`` and ``repro tail``;
* :class:`~repro.serving.loadgen.LoadGenerator` — ``repro loadgen``:
  replays :meth:`~repro.data.synthetic.CityModel.generate_query_stream`
  traffic and reports p50/p99 latency, queries/sec, queue waits and the
  request ids of slow/failed exemplars.
"""

from repro.serving.batcher import BatcherClosed, RequestBatcher
from repro.serving.http_server import QueryServer
from repro.serving.loadgen import LoadGenerator, http_transport
from repro.serving.reqtrace import (
    QUEUE_WAIT_HEADER,
    REQUEST_ID_HEADER,
    RequestContext,
    TraceRing,
    load_request_trace,
    request_id_from_header,
)
from repro.serving.service import (
    BadRequest,
    NeighborsRequest,
    PredictRequest,
    QueryService,
)

__all__ = [
    "BadRequest",
    "BatcherClosed",
    "LoadGenerator",
    "NeighborsRequest",
    "PredictRequest",
    "QUEUE_WAIT_HEADER",
    "QueryServer",
    "QueryService",
    "REQUEST_ID_HEADER",
    "RequestBatcher",
    "RequestContext",
    "TraceRing",
    "http_transport",
    "load_request_trace",
    "request_id_from_header",
]
