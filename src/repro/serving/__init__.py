"""Query serving: HTTP daemon, request coalescing, synthetic load replay.

The serving layer turns a fitted model (usually a read-only
``load_bundle(mmap=True)`` bundle) into a network service:

* :class:`~repro.serving.http_server.QueryServer` — the ``repro serve``
  daemon: ``POST /v1/predict`` + ``POST /v1/neighbors`` plus the live
  ``/metrics`` / ``/healthz`` / ``/varz`` observability surface;
* :class:`~repro.serving.batcher.RequestBatcher` — coalesces concurrent
  single queries into the engine's vectorized batch path with exact
  per-request parity;
* :class:`~repro.serving.service.QueryService` — validation
  (:class:`~repro.serving.service.BadRequest` → structured 400s) and
  batched dispatch;
* :class:`~repro.serving.loadgen.LoadGenerator` — ``repro loadgen``:
  replays :meth:`~repro.data.synthetic.CityModel.generate_query_stream`
  traffic and reports p50/p99 latency + queries/sec.
"""

from repro.serving.batcher import BatcherClosed, RequestBatcher
from repro.serving.http_server import QueryServer
from repro.serving.loadgen import LoadGenerator, http_transport
from repro.serving.service import (
    BadRequest,
    NeighborsRequest,
    PredictRequest,
    QueryService,
)

__all__ = [
    "BadRequest",
    "BatcherClosed",
    "LoadGenerator",
    "NeighborsRequest",
    "PredictRequest",
    "QueryServer",
    "QueryService",
    "RequestBatcher",
    "http_transport",
]
