"""``repro loadgen``: replay synthetic client traffic against a server.

Pairs with :class:`~repro.serving.http_server.QueryServer`: a
:class:`LoadGenerator` takes the per-user query stream produced by
:meth:`repro.data.synthetic.CityModel.generate_query_stream` (Zipf user
popularity, diurnal arrival curve, mixed modality targets) and replays it
from a pool of concurrent worker threads, following each event's arrival
offset (an open-loop generator: a worker that falls behind schedule fires
immediately rather than compressing the measured latencies).

Every request's wall latency and HTTP status are recorded; :meth:`
LoadGenerator.run` returns a report with per-endpoint counts, error
tallies, latency percentiles (p50/p90/p99) and achieved queries/sec —
the numbers ``bench_serve_latency.py`` gates and the serving runbook's
SLO tables read.  When the transport also reports per-request metadata
(the server's ``X-Request-Id`` / ``X-Queue-Wait-Ms`` response headers),
the report additionally carries per-endpoint queue-wait percentiles, a
``slowest`` exemplar list and a ``failures`` list naming the server-side
request id of every non-200 response — the handles ``repro tail`` and
``/debug/requests`` resolve to full stage breakdowns.

The transport is injectable: any ``callable(endpoint, body_dict)``
returning ``(status_code, response_dict)`` or ``(status_code,
response_dict, info_dict)`` where ``info_dict`` may carry
``request_id`` and ``queue_wait_ms``.  The default POSTs JSON over
urllib to the target base URL, needing nothing outside the stdlib.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections.abc import Callable, Sequence

import numpy as np

__all__ = ["LoadGenerator", "http_transport", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``q`` is in ``[0, 100]``; empty input returns 0.0 (a report of zero
    completed requests has no latency distribution to summarize).
    """
    if not sorted_values:
        return 0.0
    rank = int(np.ceil(q / 100.0 * len(sorted_values))) - 1
    return float(sorted_values[max(0, min(rank, len(sorted_values) - 1))])


def _header_info(headers) -> dict:
    """Tracing metadata from a response's headers (empty when absent).

    Picks out the server's ``X-Request-Id`` and ``X-Queue-Wait-Ms``
    response headers (see :mod:`repro.serving.reqtrace`); tolerates any
    mapping-like object exposing ``get`` as well as ``None``.
    """
    if headers is None:
        return {}
    info: dict = {}
    request_id = headers.get("X-Request-Id")
    if request_id:
        info["request_id"] = request_id
    queue_wait = headers.get("X-Queue-Wait-Ms")
    if queue_wait:
        try:
            info["queue_wait_ms"] = float(queue_wait)
        except ValueError:
            pass
    return info


def http_transport(
    base_url: str, *, timeout: float = 30.0
) -> Callable[[str, dict], tuple[int, dict, dict]]:
    """A stdlib-urllib JSON POST transport bound to ``base_url``.

    Returns ``(status_code, parsed_body, info)`` where ``info`` carries
    the server's per-request tracing metadata (``request_id``,
    ``queue_wait_ms``) when the response headers supply it; HTTP error
    statuses (4xx/5xx) are returned, not raised, so the load generator
    can tally them.  Transport-level failures (connection refused,
    timeout) are reported as status ``0`` with the error text in the
    body and empty info.
    """
    base = base_url.rstrip("/")

    def transport(endpoint: str, body: dict) -> tuple[int, dict, dict]:
        """POST one request body to ``endpoint`` under the base URL."""
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{base}{endpoint}",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return (
                    response.status,
                    json.loads(response.read()),
                    _header_info(response.headers),
                )
        except urllib.error.HTTPError as err:
            try:
                payload = json.loads(err.read())
            except (ValueError, OSError):
                payload = {"error": str(err)}
            return err.code, payload, _header_info(err.headers)
        except (urllib.error.URLError, OSError, TimeoutError) as err:
            return 0, {"error": str(err)}, {}

    return transport


class LoadGenerator:
    """Replay a query-event stream from concurrent worker threads.

    Parameters
    ----------
    events:
        Sequence of :class:`~repro.data.synthetic.QueryEvent`; replayed
        in arrival order, each no earlier than its ``offset`` (scaled by
        ``speedup``).
    transport:
        ``callable(endpoint, body) -> (status, response)`` or
        ``-> (status, response, info)``; build one with
        :func:`http_transport`, or inject an in-process callable in
        tests.  The optional third element is a dict whose
        ``request_id`` / ``queue_wait_ms`` keys feed the report's
        queue-wait stats, ``failures`` and ``slowest`` lists.
    max_exemplars:
        Cap on the ``failures`` and ``slowest`` lists in the report.
    concurrency:
        Number of worker threads issuing requests.
    speedup:
        Time-compression factor for event offsets (``2.0`` replays a
        10-second stream in ~5 seconds of wall time).
    """

    def __init__(
        self,
        events: Sequence,
        transport: Callable[[str, dict], tuple[int, dict]],
        *,
        concurrency: int = 8,
        speedup: float = 1.0,
        max_exemplars: int = 16,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup}")
        if max_exemplars < 0:
            raise ValueError(
                f"max_exemplars must be >= 0, got {max_exemplars}"
            )
        self.events = list(events)
        self.transport = transport
        self.concurrency = int(concurrency)
        self.speedup = float(speedup)
        self.max_exemplars = int(max_exemplars)
        self._cursor = 0
        self._cursor_lock = threading.Lock()
        self._results_lock = threading.Lock()
        self._latencies: dict[str, list[float]] = {}
        self._statuses: dict[int, int] = {}
        self._queue_waits: dict[str, list[float]] = {}
        self._samples: list[dict] = []

    def _next_event(self):
        """Claim the next unreplayed event, or ``None`` when exhausted."""
        with self._cursor_lock:
            if self._cursor >= len(self.events):
                return None
            event = self.events[self._cursor]
            self._cursor += 1
            return event

    def _worker(self, start: float) -> None:
        """Worker loop: pace to each event's offset, fire, record."""
        while True:
            event = self._next_event()
            if event is None:
                return
            due = start + event.offset / self.speedup
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            sent = time.perf_counter()
            outcome = self.transport(event.endpoint, event.body)
            latency = time.perf_counter() - sent
            status, response = outcome[0], outcome[1]
            info = outcome[2] if len(outcome) > 2 else {}
            sample = {
                "endpoint": event.endpoint,
                "status": status,
                "latency_ms": round(latency * 1e3, 3),
            }
            # Prefer the header-reported id; fall back to the request_id
            # the server embeds in non-200 payloads.
            request_id = info.get("request_id") or (
                response.get("request_id")
                if isinstance(response, dict)
                else None
            )
            if request_id is not None:
                sample["request_id"] = request_id
            queue_wait = info.get("queue_wait_ms")
            if queue_wait is not None:
                sample["queue_wait_ms"] = round(float(queue_wait), 3)
            if status != 200 and isinstance(response, dict):
                error = response.get("error")
                if error is not None:
                    sample["error"] = str(error)
            with self._results_lock:
                self._statuses[status] = self._statuses.get(status, 0) + 1
                self._latencies.setdefault(event.endpoint, []).append(latency)
                if queue_wait is not None:
                    self._queue_waits.setdefault(event.endpoint, []).append(
                        float(queue_wait)
                    )
                self._samples.append(sample)

    def run(self) -> dict:
        """Replay every event; returns the traffic report dict."""
        start = time.monotonic()
        workers = [
            threading.Thread(
                target=self._worker,
                args=(start,),
                name=f"repro-loadgen-{i}",
                daemon=True,
            )
            for i in range(self.concurrency)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.monotonic() - start
        return self._report(wall)

    def _report(self, wall_seconds: float) -> dict:
        """Summarize statuses, latency percentiles and throughput.

        Beyond the aggregate percentiles, exposes the tracing handles
        gathered from transport info: per-endpoint queue-wait
        percentiles (when the server reported them), the ``slowest``
        requests by wall latency, and every non-200 outcome (capped at
        ``max_exemplars``) with its server-side request id so the
        operator can look it up at ``/debug/requests``.
        """
        all_latencies = sorted(
            latency
            for latencies in self._latencies.values()
            for latency in latencies
        )
        endpoints = {}
        for endpoint, latencies in sorted(self._latencies.items()):
            ordered = sorted(latencies)
            endpoints[endpoint] = {
                "n": len(ordered),
                "p50_ms": round(percentile(ordered, 50) * 1e3, 3),
                "p90_ms": round(percentile(ordered, 90) * 1e3, 3),
                "p99_ms": round(percentile(ordered, 99) * 1e3, 3),
            }
            waits = sorted(self._queue_waits.get(endpoint, []))
            if waits:
                endpoints[endpoint]["queue_wait_p50_ms"] = round(
                    percentile(waits, 50), 3
                )
                endpoints[endpoint]["queue_wait_p99_ms"] = round(
                    percentile(waits, 99), 3
                )
        slowest = sorted(
            self._samples,
            key=lambda sample: sample["latency_ms"],
            reverse=True,
        )[: self.max_exemplars]
        failures = [
            sample for sample in self._samples if sample["status"] != 200
        ][: self.max_exemplars]
        n = len(all_latencies)
        server_errors = sum(
            count for status, count in self._statuses.items() if status >= 500
        )
        client_errors = sum(
            count
            for status, count in self._statuses.items()
            if 400 <= status < 500
        )
        transport_errors = self._statuses.get(0, 0)
        return {
            "n_requests": n,
            "concurrency": self.concurrency,
            "wall_seconds": round(wall_seconds, 3),
            "qps": round(n / wall_seconds, 2) if wall_seconds > 0 else 0.0,
            "p50_ms": round(percentile(all_latencies, 50) * 1e3, 3),
            "p90_ms": round(percentile(all_latencies, 90) * 1e3, 3),
            "p99_ms": round(percentile(all_latencies, 99) * 1e3, 3),
            "statuses": {
                str(status): count
                for status, count in sorted(self._statuses.items())
            },
            "server_errors": server_errors,
            "client_errors": client_errors,
            "transport_errors": transport_errors,
            "endpoints": endpoints,
            "slowest": slowest,
            "failures": failures,
        }
