"""Cross-modal prediction API (paper Sections 3 and 6.2.1).

Given any two of (time, location, text) the model must rank candidates for
the third: the query's available units are embedded and averaged, each
candidate is embedded, and candidates are ranked by cosine similarity —
"compute the cosine similarity of each candidate ... and rank them in the
descending order".

:class:`GraphEmbeddingModel` is the shared base for every embedding-based
model in this repository (ACTOR, CrossMap, LINE, metapath2vec): it owns the
built graphs plus center/context matrices and implements the full query
surface — unit lookup, query composition, candidate scoring and
nearest-neighbor search.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.graphs.builder import BuiltGraphs
from repro.graphs.types import NodeType

__all__ = [
    "cosine_similarities",
    "rank_descending",
    "GraphEmbeddingModel",
    "TARGETS",
]

TARGETS = ("text", "location", "time")

_MODALITY_TO_TYPE = {
    "time": NodeType.TIME,
    "location": NodeType.LOCATION,
    "word": NodeType.WORD,
    "user": NodeType.USER,
}


def cosine_similarities(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``query`` against every row of ``matrix``.

    Zero vectors (an out-of-vocabulary candidate, an empty query) get
    similarity 0 rather than NaN.
    """
    query_norm = np.linalg.norm(query)
    row_norms = np.linalg.norm(matrix, axis=1)
    denom = query_norm * row_norms
    scores = np.zeros(matrix.shape[0])
    valid = denom > 0
    scores[valid] = (matrix[valid] @ query) / denom[valid]
    return scores


def rank_descending(scores: np.ndarray) -> np.ndarray:
    """1-based rank of each entry under descending-score order.

    Ties are broken by original position (stable), matching a ranked list.
    """
    order = np.argsort(-scores, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(1, scores.shape[0] + 1)
    return ranks


class GraphEmbeddingModel:
    """Query surface shared by every embedding model over the activity graph.

    Subclasses populate ``self.built`` (graphs + detector + vocab) and
    ``self.center`` / ``self.context`` embedding matrices in ``fit``.
    """

    built: BuiltGraphs
    center: np.ndarray
    context: np.ndarray

    # ------------------------------------------------------------- unit level

    @property
    def dim(self) -> int:
        """Embedding dimension."""
        return self.center.shape[1]

    def node_vector(self, node: int) -> np.ndarray:
        """Center vector of a dense graph node index."""
        return self.center[node]

    def unit_vector(self, modality: str, value) -> np.ndarray | None:
        """Embed one raw value of ``modality``; ``None`` if unmappable.

        * ``"time"`` — a timestamp (hours); snapped to its temporal hotspot.
        * ``"location"`` — an ``(x, y)`` pair; snapped to its spatial
          hotspot.
        * ``"word"`` — a keyword; ``None`` when pruned from the vocabulary.
        * ``"user"`` — a user name; ``None`` when unseen in training.
        """
        node = self._node_of(modality, value)
        return None if node is None else self.center[node]

    def _node_of(self, modality: str, value) -> int | None:
        if modality not in _MODALITY_TO_TYPE:
            raise ValueError(
                f"modality must be one of {sorted(_MODALITY_TO_TYPE)}, got {modality!r}"
            )
        activity = self.built.activity
        if modality == "time":
            idx = int(self.built.detector.assign_temporal(np.asarray([value]))[0])
            return activity.index_of(NodeType.TIME, idx)
        if modality == "location":
            loc = np.asarray(value, dtype=float)[None, :]
            idx = int(self.built.detector.assign_spatial(loc)[0])
            return activity.index_of(NodeType.LOCATION, idx)
        node_type = _MODALITY_TO_TYPE[modality]
        if activity.has_node(node_type, value):
            return activity.index_of(node_type, value)
        return None

    def words_vector(self, words: Iterable[str]) -> np.ndarray:
        """Mean of the in-vocabulary word vectors (zeros if none survive)."""
        vectors = [
            v
            for v in (self.unit_vector("word", w) for w in words)
            if v is not None
        ]
        if not vectors:
            return np.zeros(self.dim)
        return np.mean(vectors, axis=0)

    # ------------------------------------------------------------ query level

    def query_vector(
        self,
        *,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Average of the available modalities' unit vectors."""
        parts: list[np.ndarray] = []
        if time is not None:
            vec = self.unit_vector("time", time)
            if vec is not None:
                parts.append(vec)
        if location is not None:
            vec = self.unit_vector("location", location)
            if vec is not None:
                parts.append(vec)
        if words is not None:
            parts.append(self.words_vector(words))
        if not parts:
            return np.zeros(self.dim)
        return np.mean(parts, axis=0)

    def candidate_vector(self, target: str, candidate) -> np.ndarray:
        """Embed one candidate of the ``target`` modality.

        Text candidates are word bags (sequences of keywords); location
        candidates are coordinate pairs; time candidates are timestamps.
        """
        if target == "text":
            return self.words_vector(candidate)
        if target == "location":
            vec = self.unit_vector("location", candidate)
        elif target == "time":
            vec = self.unit_vector("time", candidate)
        else:
            raise ValueError(f"target must be one of {TARGETS}, got {target!r}")
        return np.zeros(self.dim) if vec is None else vec

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine score of every candidate against the query (higher = better)."""
        query = self.query_vector(time=time, location=location, words=words)
        matrix = np.stack(
            [self.candidate_vector(target, c) for c in candidates]
        )
        return cosine_similarities(query, matrix)

    # --------------------------------------------------------------- neighbors

    def modality_vectors(
        self, modality: str
    ) -> tuple[list[Hashable], np.ndarray]:
        """All unit keys of ``modality`` with their center-vector matrix."""
        node_type = _MODALITY_TO_TYPE[modality]
        nodes = self.built.activity.nodes_of_type(node_type)
        keys = [self.built.activity.key_of(int(n)) for n in nodes]
        return keys, self.center[nodes]

    def neighbors(
        self, query_vec: np.ndarray, modality: str, k: int = 10
    ) -> list[tuple[Hashable, float]]:
        """Top-``k`` nearest units of ``modality`` to ``query_vec`` by cosine."""
        keys, matrix = self.modality_vectors(modality)
        scores = cosine_similarities(query_vec, matrix)
        order = np.argsort(-scores, kind="stable")[:k]
        return [(keys[i], float(scores[i])) for i in order]
