"""Cross-modal prediction API (paper Sections 3 and 6.2.1).

Given any two of (time, location, text) the model must rank candidates for
the third: the query's available units are embedded and averaged, each
candidate is embedded, and candidates are ranked by cosine similarity —
"compute the cosine similarity of each candidate ... and rank them in the
descending order".

:class:`GraphEmbeddingModel` is the shared base for every embedding-based
model in this repository (ACTOR, CrossMap, LINE, metapath2vec): it owns the
built graphs plus an :class:`~repro.storage.base.EmbeddingStore` holding
the center/context matrices, and implements the full query surface — unit
lookup, query composition, candidate scoring and nearest-neighbor search.
``model.center`` / ``model.context`` remain plain ndarray attributes to
callers (they are properties delegating to the store), and the batched
query caches key off the store's monotonic ``version`` counter.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.builder import BuiltGraphs
from repro.graphs.types import NodeType
from repro.storage import DenseStore, EmbeddingStore
from repro.storage.base import normalize_rows

__all__ = [
    "cosine_similarities",
    "rank_descending",
    "top_k",
    "normalize_rows",
    "ModalityCache",
    "GraphEmbeddingModel",
    "TARGETS",
]

TARGETS = ("text", "location", "time")

_MODALITY_TO_TYPE = {
    "time": NodeType.TIME,
    "location": NodeType.LOCATION,
    "word": NodeType.WORD,
    "user": NodeType.USER,
}


def cosine_similarities(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``query`` against every row of ``matrix``.

    Zero vectors (an out-of-vocabulary candidate, an empty query) get
    similarity 0 rather than NaN.

    The row dots use ``einsum`` rather than BLAS ``matrix @ query``:
    blocked gemv kernels can return *different* floats for bit-identical
    rows depending on row position, which would make exact ties (duplicate
    candidates) position-dependent.  ``einsum`` accumulates every row the
    same way, so identical rows always score identically — the tie
    contract that the batched engine's rank parity relies on.
    """
    query_norm = np.linalg.norm(query)
    row_norms = np.linalg.norm(matrix, axis=1)
    denom = query_norm * row_norms
    scores = np.zeros(matrix.shape[0])
    valid = denom > 0
    scores[valid] = np.einsum("ij,j->i", matrix[valid], query) / denom[valid]
    return scores


def rank_descending(scores: np.ndarray) -> np.ndarray:
    """1-based rank of each entry under descending-score order.

    Ties are broken by original position (stable), matching a ranked list.
    """
    order = np.argsort(-scores, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(1, scores.shape[0] + 1)
    return ranks


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best scores, descending, with stable ties.

    Exactly equivalent to ``np.argsort(-scores, kind="stable")[:k]`` but
    O(n + k log k) via ``argpartition``: only the selected prefix is
    sorted.  Boundary ties (several candidates sharing the k-th score) are
    resolved by ascending original position, matching the stable full sort.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.argsort(-scores, kind="stable")
    if np.isnan(scores).any():
        # argpartition makes no ordering promise for NaN: a NaN landing in
        # the prefix turns `threshold` into NaN, both filters below go
        # False, and the result can shrink below k.  The stable full sort
        # ranks NaN last (after every finite and infinite score), which is
        # the documented reference order, so defer to it for these rare
        # pathological inputs.
        return np.argsort(-scores, kind="stable")[:k]
    part = np.argpartition(-scores, k - 1)[:k]
    threshold = scores[part].min()
    chosen = np.flatnonzero(scores > threshold)
    need = k - chosen.shape[0]
    if need > 0:
        tied = np.flatnonzero(scores == threshold)[:need]
        chosen = np.concatenate([chosen, tied])
    return chosen[np.argsort(-scores[chosen], kind="stable")]


# normalize_rows moved to repro.storage.base (the store's normalized-view
# cache is the canonical producer); re-exported here for compatibility.


@dataclass
class ModalityCache:
    """Precomputed per-modality matrices for the batched query path.

    Attributes
    ----------
    keys:
        External unit keys, aligned with the matrix rows.
    matrix:
        Center vectors of the modality's units (one row per key).
    normalized:
        Row-L2-normalized copy of ``matrix`` (zero rows stay zero).
    position_of:
        ``key -> row`` mapping.  For time/location modalities
        :attr:`index_map` is the vectorized equivalent.
    index_map:
        Hotspot-index -> row array (``-1`` where the hotspot never became
        a graph node); ``None`` for keyword/user modalities.
    """

    keys: list[Hashable]
    matrix: np.ndarray
    normalized: np.ndarray
    position_of: dict[Hashable, int]
    index_map: np.ndarray | None = None


class GraphEmbeddingModel:
    """Query surface shared by every embedding model over the activity graph.

    Subclasses populate ``self.built`` (graphs + detector + vocab) and
    ``self.center`` / ``self.context`` embedding matrices in ``fit``.
    The matrices live in an :class:`~repro.storage.base.EmbeddingStore`
    (a :class:`~repro.storage.dense.DenseStore` unless another backend was
    adopted); the ``center``/``context`` attributes stay assignable exactly
    as before — assignment routes through ``store.set_matrix`` and bumps
    the store version, which is what invalidates the batched query caches.
    """

    built: BuiltGraphs

    # ----------------------------------------------------------------- storage

    @property
    def store(self) -> EmbeddingStore:
        """The model's embedding store (lazily a ``DenseStore``)."""
        store = self.__dict__.get("_store")
        if store is None:
            store = self.__dict__["_store"] = DenseStore()
        return store

    def adopt_store(self, store: EmbeddingStore) -> None:
        """Swap in a different storage backend (matrices travel with it).

        Any previously cached modality matrices are keyed off the old
        store's version and center identity, so they can never be served
        stale after adoption.
        """
        self.__dict__["_store"] = store

    @property
    def center(self) -> np.ndarray:
        """Center embedding matrix (zero-copy view from the store)."""
        return self.store.center

    @center.setter
    def center(self, value) -> None:
        """Replace the center matrix via the store (bumps its version)."""
        self.store.set_matrix("center", value)

    @property
    def context(self) -> np.ndarray:
        """Context embedding matrix (zero-copy view from the store)."""
        return self.store.context

    @context.setter
    def context(self, value) -> None:
        """Replace the context matrix via the store (bumps its version)."""
        self.store.set_matrix("context", value)

    def __setstate__(self, state: dict) -> None:
        """Unpickle, migrating pre-storage pickles transparently.

        Older pickles carry raw ``center``/``context`` ndarrays in
        ``__dict__`` (they were plain attributes then); fold them into a
        fresh :class:`DenseStore` so the loaded model speaks the store
        protocol like any other.
        """
        center = state.pop("center", None)
        context = state.pop("context", None)
        self.__dict__.update(state)
        if "_store" not in self.__dict__ and (
            center is not None or context is not None
        ):
            self.__dict__["_store"] = DenseStore(center, context)

    # ------------------------------------------------------------- unit level

    @property
    def dim(self) -> int:
        """Embedding dimension."""
        return self.center.shape[1]

    def node_vector(self, node: int) -> np.ndarray:
        """Center vector of a dense graph node index."""
        return self.center[node]

    def unit_vector(self, modality: str, value) -> np.ndarray | None:
        """Embed one raw value of ``modality``; ``None`` if unmappable.

        * ``"time"`` — a timestamp (hours); snapped to its temporal hotspot.
        * ``"location"`` — an ``(x, y)`` pair; snapped to its spatial
          hotspot.
        * ``"word"`` — a keyword; ``None`` when pruned from the vocabulary.
        * ``"user"`` — a user name; ``None`` when unseen in training.
        """
        node = self._node_of(modality, value)
        return None if node is None else self.center[node]

    def _node_of(self, modality: str, value) -> int | None:
        if modality not in _MODALITY_TO_TYPE:
            raise ValueError(
                f"modality must be one of {sorted(_MODALITY_TO_TYPE)}, got {modality!r}"
            )
        activity = self.built.activity
        node_type = _MODALITY_TO_TYPE[modality]
        # Times/locations snap to their nearest hotspot first; a hotspot
        # that never co-occurred in training has no graph node, and such
        # queries fall back to None (-> zero vector) rather than raising,
        # matching the batched engine and the streaming model.
        if modality == "time":
            key: Hashable = int(
                self.built.detector.assign_temporal(np.asarray([value]))[0]
            )
        elif modality == "location":
            loc = np.asarray(value, dtype=float)[None, :]
            key = int(self.built.detector.assign_spatial(loc)[0])
        else:
            key = value
        if activity.has_node(node_type, key):
            return activity.index_of(node_type, key)
        return None

    def words_vector(self, words: Iterable[str]) -> np.ndarray:
        """Mean of the in-vocabulary word vectors (zeros if none survive).

        The sum is accumulated sequentially (``reduceat``) rather than via
        ``np.mean``'s pairwise summation so the result is bit-identical to
        the batched engine's segment sums for any bag size.
        """
        vectors = [
            v
            for v in (self.unit_vector("word", w) for w in words)
            if v is not None
        ]
        if not vectors:
            return np.zeros(self.dim)
        stacked = np.stack(vectors)
        return np.add.reduceat(stacked, [0], axis=0)[0] / len(vectors)

    # ------------------------------------------------------------ query level

    def query_vector(
        self,
        *,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Average of the available modalities' unit vectors."""
        parts: list[np.ndarray] = []
        if time is not None:
            vec = self.unit_vector("time", time)
            if vec is not None:
                parts.append(vec)
        if location is not None:
            vec = self.unit_vector("location", location)
            if vec is not None:
                parts.append(vec)
        if words is not None:
            parts.append(self.words_vector(words))
        if not parts:
            return np.zeros(self.dim)
        return np.mean(parts, axis=0)

    def candidate_vector(self, target: str, candidate) -> np.ndarray:
        """Embed one candidate of the ``target`` modality.

        Text candidates are word bags (sequences of keywords); location
        candidates are coordinate pairs; time candidates are timestamps.
        """
        if target == "text":
            return self.words_vector(candidate)
        if target == "location":
            vec = self.unit_vector("location", candidate)
        elif target == "time":
            vec = self.unit_vector("time", candidate)
        else:
            raise ValueError(f"target must be one of {TARGETS}, got {target!r}")
        return np.zeros(self.dim) if vec is None else vec

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine score of every candidate against the query (higher = better)."""
        query = self.query_vector(time=time, location=location, words=words)
        matrix = np.stack(
            [self.candidate_vector(target, c) for c in candidates]
        )
        return cosine_similarities(query, matrix)

    # --------------------------------------------------------------- neighbors

    def modality_rows(
        self, modality: str
    ) -> tuple[list[Hashable], np.ndarray]:
        """All unit keys of ``modality`` with their store row indices.

        The row indices address both the center matrix and the store's
        normalized view, so callers gather whichever representation they
        need without materializing the other.  Streaming subclasses
        override this to append rows that grew past the base graph.
        """
        node_type = _MODALITY_TO_TYPE[modality]
        nodes = self.built.activity.nodes_of_type(node_type)
        keys = [self.built.activity.key_of(int(n)) for n in nodes]
        return keys, np.asarray(nodes, dtype=np.int64)

    def modality_vectors(
        self, modality: str
    ) -> tuple[list[Hashable], np.ndarray]:
        """All unit keys of ``modality`` with their center-vector matrix."""
        keys, rows = self.modality_rows(modality)
        return keys, self.store.view(rows)

    # ----------------------------------------------------------- batch caches

    @property
    def query_version(self) -> int:
        """Monotone counter invalidating the batched-query caches.

        This is the store's :attr:`~repro.storage.base.EmbeddingStore
        .version`: every mutation path — refit (``set_matrix``), streamed
        row growth (``grow``), and in-place SGD bursts (reported via
        :meth:`invalidate_query_cache`) — advances it, so a
        :class:`ModalityCache` is valid only while it stands still.
        """
        return self.store.version

    def invalidate_query_cache(self) -> None:
        """Bump the store version (embeddings changed in place).

        In-place SGD kernels write through store views without calling
        store methods; :meth:`~repro.core.streaming.OnlineActor
        .partial_fit` calls this once per burst so readers notice.
        """
        self.store.bump()

    def modality_cache(self, modality: str) -> ModalityCache:
        """The (lazily built, version-checked) :class:`ModalityCache`.

        Rebuilt whenever the store version moved or the store/center
        matrix object was replaced (a refit swaps both and may reset the
        version, hence the identity check); otherwise every call to
        :meth:`neighbors` and the batched query engine reuses the same
        normalized matrix instead of re-deriving it per query.  The
        normalized rows are gathered from the store's cached full
        normalized view — row-wise normalization makes the gather
        bit-identical to normalizing the gathered block directly.
        """
        cache: dict = self.__dict__.setdefault("_modality_caches", {})
        entry = cache.get(modality)
        stamp = (self.query_version, id(self.center))
        if entry is not None and entry[0] == stamp and entry[2] is self.center:
            return entry[1]
        keys, rows = self.modality_rows(modality)
        matrix = self.store.view(rows)
        normalized = self.store.normalized("center")[rows]
        position_of = {key: i for i, key in enumerate(keys)}
        index_map = None
        if modality in ("time", "location"):
            n_hotspots = (
                self.built.detector.n_temporal
                if modality == "time"
                else self.built.detector.n_spatial
            )
            index_map = np.full(n_hotspots, -1, dtype=np.int64)
            for key, pos in position_of.items():
                index_map[int(key)] = pos
        built = ModalityCache(
            keys=keys,
            matrix=matrix,
            normalized=normalized,
            position_of=position_of,
            index_map=index_map,
        )
        # Hold a reference to the center matrix the cache was built from so
        # identity comparison stays meaningful (the array cannot be garbage
        # collected and its id reused).
        cache[modality] = (stamp, built, self.center)
        return built

    def query_engine(self):
        """The batched :class:`~repro.core.query_engine.QueryEngine`.

        Created on first use and shared afterwards; its per-modality
        caches follow :attr:`query_version`, so it stays valid across
        streaming updates.
        """
        engine = self.__dict__.get("_query_engine")
        if engine is None:
            from repro.core.query_engine import QueryEngine

            engine = self._query_engine = QueryEngine(self)
        return engine

    def neighbors(
        self, query_vec: np.ndarray, modality: str, k: int = 10
    ) -> list[tuple[Hashable, float]]:
        """Top-``k`` nearest units of ``modality`` to ``query_vec`` by cosine.

        Served from the cached normalized modality matrix with an
        ``argpartition`` top-k — no full sort, no per-call re-norming.
        """
        cache = self.modality_cache(modality)
        query = np.asarray(query_vec, dtype=float)
        norm = np.linalg.norm(query)
        if norm > 0:
            # einsum, not gemv: per-row accumulation order is independent
            # of row position, so a shard-local gather scores bit-equal
            # to this full scan (the scatter-gather parity contract).
            scores = np.einsum("nd,d->n", cache.normalized, query / norm)
        else:
            scores = np.zeros(cache.matrix.shape[0])
        order = top_k(scores, k)
        return [(cache.keys[i], float(scores[i])) for i in order]
