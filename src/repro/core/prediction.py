"""Cross-modal prediction API (paper Sections 3 and 6.2.1).

Given any two of (time, location, text) the model must rank candidates for
the third: the query's available units are embedded and averaged, each
candidate is embedded, and candidates are ranked by cosine similarity —
"compute the cosine similarity of each candidate ... and rank them in the
descending order".

:class:`GraphEmbeddingModel` is the shared base for every embedding-based
model in this repository (ACTOR, CrossMap, LINE, metapath2vec): it owns the
built graphs plus center/context matrices and implements the full query
surface — unit lookup, query composition, candidate scoring and
nearest-neighbor search.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.builder import BuiltGraphs
from repro.graphs.types import NodeType

__all__ = [
    "cosine_similarities",
    "rank_descending",
    "top_k",
    "normalize_rows",
    "ModalityCache",
    "GraphEmbeddingModel",
    "TARGETS",
]

TARGETS = ("text", "location", "time")

_MODALITY_TO_TYPE = {
    "time": NodeType.TIME,
    "location": NodeType.LOCATION,
    "word": NodeType.WORD,
    "user": NodeType.USER,
}


def cosine_similarities(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``query`` against every row of ``matrix``.

    Zero vectors (an out-of-vocabulary candidate, an empty query) get
    similarity 0 rather than NaN.

    The row dots use ``einsum`` rather than BLAS ``matrix @ query``:
    blocked gemv kernels can return *different* floats for bit-identical
    rows depending on row position, which would make exact ties (duplicate
    candidates) position-dependent.  ``einsum`` accumulates every row the
    same way, so identical rows always score identically — the tie
    contract that the batched engine's rank parity relies on.
    """
    query_norm = np.linalg.norm(query)
    row_norms = np.linalg.norm(matrix, axis=1)
    denom = query_norm * row_norms
    scores = np.zeros(matrix.shape[0])
    valid = denom > 0
    scores[valid] = np.einsum("ij,j->i", matrix[valid], query) / denom[valid]
    return scores


def rank_descending(scores: np.ndarray) -> np.ndarray:
    """1-based rank of each entry under descending-score order.

    Ties are broken by original position (stable), matching a ranked list.
    """
    order = np.argsort(-scores, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(1, scores.shape[0] + 1)
    return ranks


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best scores, descending, with stable ties.

    Exactly equivalent to ``np.argsort(-scores, kind="stable")[:k]`` but
    O(n + k log k) via ``argpartition``: only the selected prefix is
    sorted.  Boundary ties (several candidates sharing the k-th score) are
    resolved by ascending original position, matching the stable full sort.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.argsort(-scores, kind="stable")
    part = np.argpartition(-scores, k - 1)[:k]
    threshold = scores[part].min()
    chosen = np.flatnonzero(scores > threshold)
    need = k - chosen.shape[0]
    if need > 0:
        tied = np.flatnonzero(scores == threshold)[:need]
        chosen = np.concatenate([chosen, tied])
    return chosen[np.argsort(-scores[chosen], kind="stable")]


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows; zero rows stay zero (OOV / empty-query vectors).

    With both operands row-normalized, a plain matrix product yields the
    cosine-similarity block of :func:`cosine_similarities`, and zero rows
    score 0 against everything — the same out-of-vocabulary convention.
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    out = np.zeros_like(matrix, dtype=float)
    np.divide(matrix, norms, out=out, where=norms > 0)
    return out


@dataclass
class ModalityCache:
    """Precomputed per-modality matrices for the batched query path.

    Attributes
    ----------
    keys:
        External unit keys, aligned with the matrix rows.
    matrix:
        Center vectors of the modality's units (one row per key).
    normalized:
        Row-L2-normalized copy of ``matrix`` (zero rows stay zero).
    position_of:
        ``key -> row`` mapping.  For time/location modalities
        :attr:`index_map` is the vectorized equivalent.
    index_map:
        Hotspot-index -> row array (``-1`` where the hotspot never became
        a graph node); ``None`` for keyword/user modalities.
    """

    keys: list[Hashable]
    matrix: np.ndarray
    normalized: np.ndarray
    position_of: dict[Hashable, int]
    index_map: np.ndarray | None = None


class GraphEmbeddingModel:
    """Query surface shared by every embedding model over the activity graph.

    Subclasses populate ``self.built`` (graphs + detector + vocab) and
    ``self.center`` / ``self.context`` embedding matrices in ``fit``.
    """

    built: BuiltGraphs
    center: np.ndarray
    context: np.ndarray

    # ------------------------------------------------------------- unit level

    @property
    def dim(self) -> int:
        """Embedding dimension."""
        return self.center.shape[1]

    def node_vector(self, node: int) -> np.ndarray:
        """Center vector of a dense graph node index."""
        return self.center[node]

    def unit_vector(self, modality: str, value) -> np.ndarray | None:
        """Embed one raw value of ``modality``; ``None`` if unmappable.

        * ``"time"`` — a timestamp (hours); snapped to its temporal hotspot.
        * ``"location"`` — an ``(x, y)`` pair; snapped to its spatial
          hotspot.
        * ``"word"`` — a keyword; ``None`` when pruned from the vocabulary.
        * ``"user"`` — a user name; ``None`` when unseen in training.
        """
        node = self._node_of(modality, value)
        return None if node is None else self.center[node]

    def _node_of(self, modality: str, value) -> int | None:
        if modality not in _MODALITY_TO_TYPE:
            raise ValueError(
                f"modality must be one of {sorted(_MODALITY_TO_TYPE)}, got {modality!r}"
            )
        activity = self.built.activity
        node_type = _MODALITY_TO_TYPE[modality]
        # Times/locations snap to their nearest hotspot first; a hotspot
        # that never co-occurred in training has no graph node, and such
        # queries fall back to None (-> zero vector) rather than raising,
        # matching the batched engine and the streaming model.
        if modality == "time":
            key: Hashable = int(
                self.built.detector.assign_temporal(np.asarray([value]))[0]
            )
        elif modality == "location":
            loc = np.asarray(value, dtype=float)[None, :]
            key = int(self.built.detector.assign_spatial(loc)[0])
        else:
            key = value
        if activity.has_node(node_type, key):
            return activity.index_of(node_type, key)
        return None

    def words_vector(self, words: Iterable[str]) -> np.ndarray:
        """Mean of the in-vocabulary word vectors (zeros if none survive).

        The sum is accumulated sequentially (``reduceat``) rather than via
        ``np.mean``'s pairwise summation so the result is bit-identical to
        the batched engine's segment sums for any bag size.
        """
        vectors = [
            v
            for v in (self.unit_vector("word", w) for w in words)
            if v is not None
        ]
        if not vectors:
            return np.zeros(self.dim)
        stacked = np.stack(vectors)
        return np.add.reduceat(stacked, [0], axis=0)[0] / len(vectors)

    # ------------------------------------------------------------ query level

    def query_vector(
        self,
        *,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Average of the available modalities' unit vectors."""
        parts: list[np.ndarray] = []
        if time is not None:
            vec = self.unit_vector("time", time)
            if vec is not None:
                parts.append(vec)
        if location is not None:
            vec = self.unit_vector("location", location)
            if vec is not None:
                parts.append(vec)
        if words is not None:
            parts.append(self.words_vector(words))
        if not parts:
            return np.zeros(self.dim)
        return np.mean(parts, axis=0)

    def candidate_vector(self, target: str, candidate) -> np.ndarray:
        """Embed one candidate of the ``target`` modality.

        Text candidates are word bags (sequences of keywords); location
        candidates are coordinate pairs; time candidates are timestamps.
        """
        if target == "text":
            return self.words_vector(candidate)
        if target == "location":
            vec = self.unit_vector("location", candidate)
        elif target == "time":
            vec = self.unit_vector("time", candidate)
        else:
            raise ValueError(f"target must be one of {TARGETS}, got {target!r}")
        return np.zeros(self.dim) if vec is None else vec

    def score_candidates(
        self,
        *,
        target: str,
        candidates: Sequence,
        time: float | None = None,
        location: tuple[float, float] | None = None,
        words: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Cosine score of every candidate against the query (higher = better)."""
        query = self.query_vector(time=time, location=location, words=words)
        matrix = np.stack(
            [self.candidate_vector(target, c) for c in candidates]
        )
        return cosine_similarities(query, matrix)

    # --------------------------------------------------------------- neighbors

    def modality_vectors(
        self, modality: str
    ) -> tuple[list[Hashable], np.ndarray]:
        """All unit keys of ``modality`` with their center-vector matrix."""
        node_type = _MODALITY_TO_TYPE[modality]
        nodes = self.built.activity.nodes_of_type(node_type)
        keys = [self.built.activity.key_of(int(n)) for n in nodes]
        return keys, self.center[nodes]

    # ----------------------------------------------------------- batch caches

    @property
    def query_version(self) -> int:
        """Monotone counter invalidating the batched-query caches.

        A :class:`ModalityCache` is valid only while this counter and the
        identity of :attr:`center` both stand still.  Refits and streamed
        row growth replace ``center`` (automatic invalidation); in-place
        SGD updates must call :meth:`invalidate_query_cache` explicitly —
        :meth:`~repro.core.streaming.OnlineActor.partial_fit` does.
        """
        return getattr(self, "_query_version", 0)

    def invalidate_query_cache(self) -> None:
        """Drop cached modality matrices (embeddings changed in place)."""
        self._query_version = self.query_version + 1

    def modality_cache(self, modality: str) -> ModalityCache:
        """The (lazily built, version-checked) :class:`ModalityCache`.

        Rebuilt whenever :attr:`query_version` was bumped or the
        :attr:`center` matrix object was replaced; otherwise every call to
        :meth:`neighbors` and the batched query engine reuses the same
        normalized matrix instead of re-deriving it per query.
        """
        cache: dict = self.__dict__.setdefault("_modality_caches", {})
        entry = cache.get(modality)
        stamp = (self.query_version, id(self.center))
        if entry is not None and entry[0] == stamp and entry[2] is self.center:
            return entry[1]
        keys, matrix = self.modality_vectors(modality)
        position_of = {key: i for i, key in enumerate(keys)}
        index_map = None
        if modality in ("time", "location"):
            n_hotspots = (
                self.built.detector.n_temporal
                if modality == "time"
                else self.built.detector.n_spatial
            )
            index_map = np.full(n_hotspots, -1, dtype=np.int64)
            for key, pos in position_of.items():
                index_map[int(key)] = pos
        built = ModalityCache(
            keys=keys,
            matrix=matrix,
            normalized=normalize_rows(matrix),
            position_of=position_of,
            index_map=index_map,
        )
        # Hold a reference to the center matrix the cache was built from so
        # identity comparison stays meaningful (the array cannot be garbage
        # collected and its id reused).
        cache[modality] = (stamp, built, self.center)
        return built

    def query_engine(self):
        """The batched :class:`~repro.core.query_engine.QueryEngine`.

        Created on first use and shared afterwards; its per-modality
        caches follow :attr:`query_version`, so it stays valid across
        streaming updates.
        """
        engine = self.__dict__.get("_query_engine")
        if engine is None:
            from repro.core.query_engine import QueryEngine

            engine = self._query_engine = QueryEngine(self)
        return engine

    def neighbors(
        self, query_vec: np.ndarray, modality: str, k: int = 10
    ) -> list[tuple[Hashable, float]]:
        """Top-``k`` nearest units of ``modality`` to ``query_vec`` by cosine.

        Served from the cached normalized modality matrix with an
        ``argpartition`` top-k — no full sort, no per-call re-norming.
        """
        cache = self.modality_cache(modality)
        query = np.asarray(query_vec, dtype=float)
        norm = np.linalg.norm(query)
        if norm > 0:
            scores = cache.normalized @ (query / norm)
        else:
            scores = np.zeros(cache.matrix.shape[0])
        order = top_k(scores, k)
        return [(cache.keys[i], float(scores[i])) for i in order]
