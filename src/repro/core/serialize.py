"""Portable, pickle-free model serialization.

:meth:`Actor.save`/:meth:`Actor.load` use pickle, which is convenient but
carries the usual trust caveats and ties the file to this codebase's
internals.  This module writes a *portable inference bundle* instead — a
directory of plain ``.npz``/``.json`` files containing exactly what the
query surface needs:

```
bundle/
  manifest.json     format version, dims, detector period, config snapshot
  embeddings.npz    center, context (float64)
  hotspots.npz      spatial (S, 2), temporal (T,)
  nodes.json        node registry: ordered [type, key] pairs
  vocab.json        retained keywords in id order
```

:func:`load_bundle` reconstructs a :class:`QueryModel` — the full
:class:`~repro.core.prediction.GraphEmbeddingModel` query surface
(prediction, neighbor search) without training state.  Retraining requires
the original corpus; persist the fitted :class:`Actor` with pickle if you
need that.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.actor import Actor
from repro.core.prediction import GraphEmbeddingModel
from repro.data.text import Vocabulary
from repro.graphs.activity_graph import ActivityGraph
from repro.graphs.builder import BuiltGraphs
from repro.graphs.interaction_graph import UserInteractionGraph
from repro.graphs.types import NodeType
from repro.hotspots.detector import HotspotDetector

__all__ = [
    "save_bundle",
    "load_bundle",
    "QueryModel",
    "FORMAT_VERSION",
    "save_online_checkpoint",
    "load_online_checkpoint",
    "ONLINE_FORMAT_VERSION",
]

FORMAT_VERSION = 1
ONLINE_FORMAT_VERSION = 1


class QueryModel(GraphEmbeddingModel):
    """Inference-only model reconstructed from a serialized bundle.

    Exposes the complete query surface (``score_candidates``,
    ``neighbors``, ``unit_vector`` ...) but has no trainer and no edges —
    only the node registry, hotspots, vocabulary and embeddings.
    """

    name = "ACTOR(bundle)"
    supports_time = True

    def __init__(
        self, built: BuiltGraphs, center: np.ndarray, context: np.ndarray
    ) -> None:
        self.built = built
        self.center = center
        self.context = context


def save_bundle(model: Actor | QueryModel, directory: str | Path) -> Path:
    """Write ``model``'s inference state to ``directory`` (created if needed)."""
    if not isinstance(model, QueryModel) and not model.is_fitted:
        raise ValueError("cannot serialize an unfitted model")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    activity = model.built.activity
    nodes = [
        [activity.type_of(i).value, activity.key_of(i)]
        for i in range(activity.n_nodes)
    ]
    detector = model.built.detector

    np.savez_compressed(
        directory / "embeddings.npz",
        center=model.center,
        context=model.context,
    )
    np.savez_compressed(
        directory / "hotspots.npz",
        spatial=detector.spatial_hotspots,
        temporal=detector.temporal_hotspots,
    )
    (directory / "nodes.json").write_text(json.dumps(nodes))
    (directory / "vocab.json").write_text(
        json.dumps(model.built.vocab.words)
    )
    config = getattr(model, "config", None)
    manifest = {
        "format_version": FORMAT_VERSION,
        "dim": int(model.center.shape[1]),
        "n_nodes": int(model.center.shape[0]),
        "period": float(getattr(detector, "period", 24.0)),
        "config": asdict(config) if config is not None else None,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_bundle(directory: str | Path) -> QueryModel:
    """Reconstruct a :class:`QueryModel` from a bundle directory."""
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format {manifest.get('format_version')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )

    with np.load(directory / "embeddings.npz") as data:
        center = np.array(data["center"])
        context = np.array(data["context"])
    with np.load(directory / "hotspots.npz") as data:
        detector = HotspotDetector.from_arrays(
            data["spatial"], data["temporal"], period=manifest["period"]
        )

    nodes = json.loads((directory / "nodes.json").read_text())
    if len(nodes) != manifest["n_nodes"] or center.shape[0] != len(nodes):
        raise ValueError("bundle is inconsistent: node/embedding count mismatch")

    activity = ActivityGraph()
    for type_value, key in nodes:
        node_type = NodeType(type_value)
        # JSON round-trips hotspot indices as ints and words/users as str;
        # T/L keys are indices.
        if node_type in (NodeType.TIME, NodeType.LOCATION):
            key = int(key)
        activity.add_node(node_type, key)
    activity.finalize()

    words = json.loads((directory / "vocab.json").read_text())
    vocab = Vocabulary(min_count=1)
    vocab.fit([])  # freeze empty, then append in stored id order
    for word in words:
        vocab.add_word(word)

    interaction = UserInteractionGraph()
    interaction.finalize()
    built = BuiltGraphs(
        activity=activity,
        interaction=interaction,
        detector=detector,
        vocab=vocab,
        record_units=[],
    )
    return QueryModel(built=built, center=center, context=context)


# --------------------------------------------------------------------------
# Streaming checkpoints
#
# An OnlineActor's state beyond its base Actor is: the (grown) embedding
# matrices, the registry of streamed-in extra nodes, the recency buffer
# contents, and the online RNG stream.  A checkpoint directory holds
#
#   online_manifest.json   format version, hyper-params, extra node registry,
#                          buffer clock, RNG state
#   online_state.npz       center, context, buffer columns
#
# so a streaming deployment can crash and resume against the same base
# model without replaying the stream.


def save_online_checkpoint(model, directory: str | Path) -> Path:
    """Write ``model``'s (an :class:`~repro.core.streaming.OnlineActor`)
    resumable streaming state to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # Extra nodes in row order, so restore can rebuild the registry by
    # enumeration.  Keys are hotspot ints or word/user strings — JSON-safe.
    base_rows = model.center.shape[0] - len(model._extra_nodes)
    ordered = sorted(model._extra_nodes.items(), key=lambda item: item[1])
    extra_nodes = []
    for offset, ((node_type, key), row) in enumerate(ordered):
        if row != base_rows + offset:
            raise ValueError(
                "extra node rows are not contiguous; refusing to checkpoint"
            )
        extra_nodes.append(
            [node_type.value, int(key) if isinstance(key, (int, np.integer)) else key]
        )

    buffer_state = model.buffer.state()
    np.savez_compressed(
        directory / "online_state.npz",
        center=model.center,
        context=model.context,
        buf_src=buffer_state["src"],
        buf_dst=buffer_state["dst"],
        buf_weight=buffer_state["weight"],
        buf_born=buffer_state["born"],
    )
    manifest = {
        "format_version": ONLINE_FORMAT_VERSION,
        "dim": int(model.center.shape[1]),
        "base_rows": int(base_rows),
        "n_rows": int(model.center.shape[0]),
        "n_ingested": int(model.n_ingested),
        "half_life": float(model.buffer.half_life),
        "online_lr": float(model.online_lr),
        "steps_per_batch": int(model.steps_per_batch),
        "batch_size": int(model.batch_size),
        "negatives": int(model.negatives),
        "buffer_max_size": int(model.buffer.max_size),
        "buffer_clock": int(buffer_state["clock"]),
        "buffer_evictions": int(buffer_state["evictions"]),
        "extra_nodes": extra_nodes,
        "rng_state": model._rng.bit_generator.state,
    }
    (directory / "online_manifest.json").write_text(
        json.dumps(manifest, indent=2)
    )
    return directory


def load_online_checkpoint(base: Actor, directory: str | Path):
    """Rebuild an :class:`~repro.core.streaming.OnlineActor` from a
    :func:`save_online_checkpoint` directory, resuming against ``base``.

    ``base`` must be the fitted Actor the checkpointed deployment was
    warm-started from (same node count and dimension); the shared built
    graphs supply the detector, base node registry and vocabulary.
    """
    from repro.core.streaming import OnlineActor, RecencyBuffer

    directory = Path(directory)
    manifest = json.loads((directory / "online_manifest.json").read_text())
    if manifest.get("format_version") != ONLINE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {manifest.get('format_version')!r};"
            f" this build reads version {ONLINE_FORMAT_VERSION}"
        )
    if not base.is_fitted:
        raise ValueError("base Actor must be fitted to restore a checkpoint")
    if (
        base.center.shape[0] != manifest["base_rows"]
        or base.center.shape[1] != manifest["dim"]
    ):
        raise ValueError(
            f"checkpoint was taken against a base model with "
            f"{manifest['base_rows']} nodes of dim {manifest['dim']}, got "
            f"{base.center.shape[0]} nodes of dim {base.center.shape[1]}"
        )

    model = OnlineActor(
        base,
        half_life=manifest["half_life"],
        online_lr=manifest["online_lr"],
        steps_per_batch=manifest["steps_per_batch"],
        batch_size=manifest["batch_size"],
        negatives=manifest["negatives"],
        buffer_size=manifest["buffer_max_size"],
        seed=0,
    )
    with np.load(directory / "online_state.npz") as data:
        center = np.array(data["center"])
        context = np.array(data["context"])
        buffer_state = {
            "src": data["buf_src"],
            "dst": data["buf_dst"],
            "weight": data["buf_weight"],
            "born": data["buf_born"],
            "clock": manifest["buffer_clock"],
            "evictions": manifest["buffer_evictions"],
        }

    extra_nodes = manifest["extra_nodes"]
    if (
        center.shape != (manifest["n_rows"], manifest["dim"])
        or center.shape != context.shape
        or manifest["n_rows"] != manifest["base_rows"] + len(extra_nodes)
    ):
        raise ValueError(
            "checkpoint is inconsistent: row/extra-node count mismatch"
        )

    model.center = center
    model.context = context
    base_rows = manifest["base_rows"]
    vocab = model.built.vocab
    for offset, (type_value, key) in enumerate(extra_nodes):
        node_type = NodeType(type_value)
        if node_type in (NodeType.TIME, NodeType.LOCATION):
            key = int(key)
        model._extra_nodes[(node_type, key)] = base_rows + offset
        # Words restored into a fresh base need their vocabulary entry
        # back; a full vocabulary simply leaves the word resolvable
        # through the extra-node registry.
        if (
            node_type is NodeType.WORD
            and key not in vocab
            and (vocab.max_size is None or len(vocab) < vocab.max_size)
        ):
            vocab.add_word(key)
    model.buffer = RecencyBuffer.from_state(
        buffer_state,
        half_life=manifest["half_life"],
        max_size=manifest["buffer_max_size"],
    )
    model.n_ingested = int(manifest["n_ingested"])
    rng_state = manifest["rng_state"]
    if rng_state.get("bit_generator") == model._rng.bit_generator.state.get(
        "bit_generator"
    ):
        model._rng.bit_generator.state = rng_state
    return model
