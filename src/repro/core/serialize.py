"""Portable, pickle-free model serialization.

:meth:`Actor.save`/:meth:`Actor.load` use pickle, which is convenient but
carries the usual trust caveats and ties the file to this codebase's
internals.  This module writes a *portable inference bundle* instead — a
directory of plain ``.npz``/``.json`` files containing exactly what the
query surface needs:

```
bundle/
  manifest.json     format version, dims, detector period, config snapshot
  embeddings.npz    center, context (float64)
  hotspots.npz      spatial (S, 2), temporal (T,)
  nodes.json        node registry: ordered [type, key] pairs
  vocab.json        retained keywords in id order
```

:func:`load_bundle` reconstructs a :class:`QueryModel` — the full
:class:`~repro.core.prediction.GraphEmbeddingModel` query surface
(prediction, neighbor search) without training state.  Retraining requires
the original corpus; persist the fitted :class:`Actor` with pickle if you
need that.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.actor import Actor
from repro.core.prediction import GraphEmbeddingModel
from repro.data.text import Vocabulary
from repro.graphs.activity_graph import ActivityGraph
from repro.graphs.builder import BuiltGraphs
from repro.graphs.interaction_graph import UserInteractionGraph
from repro.graphs.types import NodeType
from repro.hotspots.detector import HotspotDetector

__all__ = ["save_bundle", "load_bundle", "QueryModel", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class QueryModel(GraphEmbeddingModel):
    """Inference-only model reconstructed from a serialized bundle.

    Exposes the complete query surface (``score_candidates``,
    ``neighbors``, ``unit_vector`` ...) but has no trainer and no edges —
    only the node registry, hotspots, vocabulary and embeddings.
    """

    name = "ACTOR(bundle)"
    supports_time = True

    def __init__(
        self, built: BuiltGraphs, center: np.ndarray, context: np.ndarray
    ) -> None:
        self.built = built
        self.center = center
        self.context = context


def save_bundle(model: Actor | QueryModel, directory: str | Path) -> Path:
    """Write ``model``'s inference state to ``directory`` (created if needed)."""
    if not isinstance(model, QueryModel) and not model.is_fitted:
        raise ValueError("cannot serialize an unfitted model")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    activity = model.built.activity
    nodes = [
        [activity.type_of(i).value, activity.key_of(i)]
        for i in range(activity.n_nodes)
    ]
    detector = model.built.detector

    np.savez_compressed(
        directory / "embeddings.npz",
        center=model.center,
        context=model.context,
    )
    np.savez_compressed(
        directory / "hotspots.npz",
        spatial=detector.spatial_hotspots,
        temporal=detector.temporal_hotspots,
    )
    (directory / "nodes.json").write_text(json.dumps(nodes))
    (directory / "vocab.json").write_text(
        json.dumps(model.built.vocab.words)
    )
    config = getattr(model, "config", None)
    manifest = {
        "format_version": FORMAT_VERSION,
        "dim": int(model.center.shape[1]),
        "n_nodes": int(model.center.shape[0]),
        "period": float(getattr(detector, "period", 24.0)),
        "config": asdict(config) if config is not None else None,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_bundle(directory: str | Path) -> QueryModel:
    """Reconstruct a :class:`QueryModel` from a bundle directory."""
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format {manifest.get('format_version')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )

    with np.load(directory / "embeddings.npz") as data:
        center = np.array(data["center"])
        context = np.array(data["context"])
    with np.load(directory / "hotspots.npz") as data:
        detector = HotspotDetector.from_arrays(
            data["spatial"], data["temporal"], period=manifest["period"]
        )

    nodes = json.loads((directory / "nodes.json").read_text())
    if len(nodes) != manifest["n_nodes"] or center.shape[0] != len(nodes):
        raise ValueError("bundle is inconsistent: node/embedding count mismatch")

    activity = ActivityGraph()
    for type_value, key in nodes:
        node_type = NodeType(type_value)
        # JSON round-trips hotspot indices as ints and words/users as str;
        # T/L keys are indices.
        if node_type in (NodeType.TIME, NodeType.LOCATION):
            key = int(key)
        activity.add_node(node_type, key)
    activity.finalize()

    words = json.loads((directory / "vocab.json").read_text())
    vocab = Vocabulary(min_count=1)
    vocab.fit([])  # freeze empty, then append in stored id order
    for word in words:
        vocab.add_word(word)

    interaction = UserInteractionGraph()
    interaction.finalize()
    built = BuiltGraphs(
        activity=activity,
        interaction=interaction,
        detector=detector,
        vocab=vocab,
        record_units=[],
    )
    return QueryModel(built=built, center=center, context=context)
