"""Portable, pickle-free model serialization.

:meth:`Actor.save`/:meth:`Actor.load` use pickle, which is convenient but
carries the usual trust caveats and ties the file to this codebase's
internals.  This module writes a *portable inference bundle* instead — a
directory of plain ``.npy``/``.npz``/``.json`` files containing exactly
what the query surface needs:

```
bundle/
  manifest.json     format version, dims, detector period, config snapshot
  center.npy        center embeddings (float64, raw — mmap-able)
  context.npy       context embeddings (float64, raw — mmap-able)
  hotspots.npz      spatial (S, 2), temporal (T,)
  nodes.json        node registry: ordered [type, key] pairs
  vocab.json        retained keywords in id order
```

Format **v2** (the default) stores the embeddings as raw ``.npy``
sidecars so :func:`load_bundle` can memory-map them (``mmap=True``):
startup becomes an ``mmap(2)`` call, pages fault in as queries touch
rows, and models larger than RAM serve fine.  Format **v1** bundles
(compressed ``embeddings.npz``) still load — only eagerly, since zip
members can't be mapped.

Format **v3** (``save_bundle(..., shards=K)``) hash-partitions the
matrices over per-shard sidecar directories::

    bundle/
      manifest.json       format_version 3 + {"sharding": {...}}
      shards/00/center.npy  shard 0's rows, ascending global id
      shards/00/context.npy
      shards/01/...
      hotspots.npz nodes.json vocab.json   (as v2)

Row placement is the deterministic splitmix64 vertex hash of
:class:`~repro.sharding.HashPartitioner` — nothing but the shard count
is recorded, and :func:`load_bundle` re-derives the layout and wraps the
shards in a :class:`~repro.sharding.ShardedStore` (each shard
memory-mapped read-only under ``mmap=True``).  Malformed bundles of any
version raise :class:`BundleFormatError` naming the offending field and
format version.

:func:`load_bundle` reconstructs a :class:`QueryModel` — the full
:class:`~repro.core.prediction.GraphEmbeddingModel` query surface
(prediction, neighbor search) without training state.  Retraining requires
the original corpus; persist the fitted :class:`Actor` with pickle if you
need that.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.actor import Actor
from repro.core.prediction import GraphEmbeddingModel
from repro.data.text import Vocabulary
from repro.graphs.activity_graph import ActivityGraph
from repro.graphs.builder import BuiltGraphs
from repro.graphs.interaction_graph import UserInteractionGraph
from repro.graphs.types import NodeType
from repro.hotspots.detector import HotspotDetector
from repro.storage import DenseStore, EmbeddingStore, MmapStore

__all__ = [
    "save_bundle",
    "load_bundle",
    "QueryModel",
    "BundleFormatError",
    "FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "save_online_checkpoint",
    "load_online_checkpoint",
    "ONLINE_FORMAT_VERSION",
]

FORMAT_VERSION = 2
SHARDED_FORMAT_VERSION = 3
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3)
ONLINE_FORMAT_VERSION = 2
SUPPORTED_ONLINE_FORMAT_VERSIONS = (1, 2)


class BundleFormatError(ValueError):
    """A bundle/checkpoint directory is missing, truncated or incompatible.

    Raised instead of bare ``KeyError``/``ValueError`` so callers (and
    operators reading logs) see *which* manifest field or file is at
    fault and which format version the bundle declared.
    """


def _read_manifest(path: Path, *, kind: str) -> dict:
    """Load and sanity-check a manifest file, or raise BundleFormatError."""
    if not path.exists():
        raise BundleFormatError(
            f"{kind} at {path.parent} has no {path.name}; "
            "not a bundle directory?"
        )
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BundleFormatError(
            f"{kind} manifest {path} is corrupt or truncated: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise BundleFormatError(
            f"{kind} manifest {path} must hold a JSON object, "
            f"got {type(manifest).__name__}"
        )
    return manifest


def _require(manifest: dict, field: str, *, version, directory: Path):
    """Fetch a manifest field or raise a BundleFormatError naming it."""
    try:
        return manifest[field]
    except KeyError:
        raise BundleFormatError(
            f"bundle at {directory} (format v{version}) is missing "
            f"manifest field {field!r}"
        ) from None


def _check_version(manifest: dict, supported, *, kind: str, directory: Path):
    """Validate the declared format version against ``supported``."""
    version = manifest.get("format_version")
    if version not in supported:
        raise BundleFormatError(
            f"unsupported {kind} format {version!r} at {directory}; "
            f"this build reads versions {supported}"
        )
    return version


def _load_array(path: Path, *, mmap: bool, version, directory: Path):
    """Read one ``.npy`` sidecar, mapped or eager, with clear errors."""
    if not path.exists():
        raise BundleFormatError(
            f"bundle at {directory} (format v{version}) is missing {path.name}"
        )
    try:
        if mmap:
            return np.load(path, mmap_mode="r", allow_pickle=False)
        return np.load(path, allow_pickle=False)
    except ValueError as exc:
        raise BundleFormatError(
            f"bundle file {path} is corrupt or truncated: {exc}"
        ) from exc


class QueryModel(GraphEmbeddingModel):
    """Inference-only model reconstructed from a serialized bundle.

    Exposes the complete query surface (``score_candidates``,
    ``neighbors``, ``unit_vector`` ...) but has no trainer and no edges —
    only the node registry, hotspots, vocabulary and embeddings.  When
    constructed with a ``store`` (e.g. a read-only
    :class:`~repro.storage.mmap.MmapStore` over the bundle directory)
    the matrices are served straight from it, zero-copy.
    """

    name = "ACTOR(bundle)"
    supports_time = True

    def __init__(
        self,
        built: BuiltGraphs,
        center: np.ndarray | None = None,
        context: np.ndarray | None = None,
        *,
        store: EmbeddingStore | None = None,
    ) -> None:
        self.built = built
        if store is not None:
            if center is not None or context is not None:
                raise ValueError(
                    "pass either a store or raw matrices, not both"
                )
            self.adopt_store(store)
        else:
            self.center = center
            self.context = context


def check_shard_plan(
    shards: int, fleet_size: int | None = None
) -> int:
    """Validate an export shard count against the serving fleet.

    ``shards`` must be >= 1, and when ``fleet_size`` is given every
    serving replica must own a whole number of shards — i.e.
    ``fleet_size`` must divide ``shards`` evenly.  Raises ``ValueError``
    with the constraint spelled out (the CLI surfaces it as an exit-2
    argument error, not a traceback).  Returns the validated count.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if fleet_size is not None:
        if fleet_size < 1:
            raise ValueError(
                f"fleet size must be >= 1, got {fleet_size}"
            )
        if shards % fleet_size != 0:
            raise ValueError(
                f"shards={shards} does not divide evenly over a serving "
                f"fleet of {fleet_size} replicas: each replica must own a "
                f"whole number of shards, so pick a shard count that is a "
                f"multiple of {fleet_size} (e.g. "
                f"{max(1, shards // fleet_size) * fleet_size} or "
                f"{(shards // fleet_size + 1) * fleet_size})"
            )
    return int(shards)


def save_bundle(
    model: Actor | QueryModel,
    directory: str | Path,
    *,
    shards: int = 1,
    fleet_size: int | None = None,
) -> Path:
    """Write ``model``'s inference state to ``directory`` (created if needed).

    Embeddings go out as raw ``.npy`` sidecars (format v2) so the bundle
    can later be served zero-copy via ``load_bundle(..., mmap=True)``.
    With ``shards=K > 1`` the matrices are hash-partitioned into
    ``shards/NN`` sidecar directories (format v3) for scatter-gather
    serving; ``fleet_size`` additionally enforces that the shard count
    divides the serving fleet evenly (see :func:`check_shard_plan`).
    """
    shards = check_shard_plan(shards, fleet_size)
    # QueryModel and OnlineActor are fitted by construction; a bare Actor
    # must have been trained.
    if not getattr(model, "is_fitted", True):
        raise ValueError("cannot serialize an unfitted model")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    activity = model.built.activity
    nodes = [
        [activity.type_of(i).value, activity.key_of(i)]
        for i in range(activity.n_nodes)
    ]
    # Streaming models (OnlineActor) grow rows past the base registry;
    # append those nodes in row order so nodes.json matches the matrices
    # and the bundle loads as a self-consistent QueryModel.
    extra_nodes = getattr(model, "_extra_nodes", None)
    if extra_nodes:
        base_rows = model.center.shape[0] - len(extra_nodes)
        if base_rows != activity.n_nodes:
            raise ValueError(
                f"cannot serialize: {activity.n_nodes} registry nodes plus "
                f"{len(extra_nodes)} extra nodes do not account for "
                f"{model.center.shape[0]} embedding rows"
            )
        ordered = sorted(extra_nodes.items(), key=lambda item: item[1])
        for offset, ((node_type, key), row) in enumerate(ordered):
            if row != base_rows + offset:
                raise ValueError(
                    "extra node rows are not contiguous; refusing to export"
                )
            nodes.append(
                [
                    node_type.value,
                    int(key) if isinstance(key, (int, np.integer)) else key,
                ]
            )
    detector = model.built.detector

    center = np.asarray(model.center, dtype=np.float64)
    context = np.asarray(model.context, dtype=np.float64)
    if shards == 1:
        np.save(directory / "center.npy", center)
        np.save(directory / "context.npy", context)
    else:
        from repro.sharding import HashPartitioner, shard_subdir

        _, _, shard_rows = HashPartitioner(shards).build_maps(
            center.shape[0]
        )
        for s, rows in enumerate(shard_rows):
            sdir = shard_subdir(directory, s)
            sdir.mkdir(parents=True, exist_ok=True)
            np.save(sdir / "center.npy", center[rows])
            np.save(sdir / "context.npy", context[rows])
    np.savez_compressed(
        directory / "hotspots.npz",
        spatial=detector.spatial_hotspots,
        temporal=detector.temporal_hotspots,
    )
    (directory / "nodes.json").write_text(json.dumps(nodes))
    (directory / "vocab.json").write_text(
        json.dumps(model.built.vocab.words)
    )
    config = getattr(model, "config", None)
    manifest = {
        "format_version": (
            FORMAT_VERSION if shards == 1 else SHARDED_FORMAT_VERSION
        ),
        "dim": int(center.shape[1]),
        "n_nodes": int(center.shape[0]),
        "period": float(getattr(detector, "period", 24.0)),
        "config": asdict(config) if config is not None else None,
    }
    if shards > 1:
        manifest["sharding"] = {
            "n_shards": shards,
            "partitioner": "splitmix64",
        }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_bundle(directory: str | Path, *, mmap: bool = False) -> QueryModel:
    """Reconstruct a :class:`QueryModel` from a bundle directory.

    With ``mmap=True`` (format v2/v3 bundles) the embedding matrices
    are memory-mapped read-only straight from the bundle's ``.npy``
    sidecars — no copy, near-instant startup, identical query results.
    Format v1 bundles store compressed ``embeddings.npz`` archives, whose
    members cannot be mapped; re-export with :func:`save_bundle` to get
    a mappable v2 bundle.  Format v3 bundles come back behind a
    :class:`~repro.sharding.ShardedStore` over the per-shard sidecars
    (each shard mapped read-only under ``mmap=True``), with the row
    layout re-derived from the manifest's shard count.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory / "manifest.json", kind="bundle")
    version = _check_version(
        manifest, SUPPORTED_FORMAT_VERSIONS, kind="bundle", directory=directory
    )

    store: EmbeddingStore | None = None
    center = context = None
    if version == 3:
        from repro.sharding import ShardedStore, shard_subdir

        sharding = _require(
            manifest, "sharding", version=version, directory=directory
        )
        n_shards = sharding.get("n_shards")
        if not isinstance(n_shards, int) or n_shards < 1:
            raise BundleFormatError(
                f"bundle at {directory} (format v3) declares invalid "
                f"sharding.n_shards {n_shards!r}"
            )
        partitioner = sharding.get("partitioner")
        if partitioner != "splitmix64":
            raise BundleFormatError(
                f"bundle at {directory} (format v3) uses unknown "
                f"partitioner {partitioner!r}; this build reads 'splitmix64'"
            )
        children: list[EmbeddingStore] = []
        for s in range(n_shards):
            sdir = shard_subdir(directory, s)
            if mmap:
                if not (sdir / "center.npy").exists():
                    raise BundleFormatError(
                        f"bundle at {directory} (format v3) is missing "
                        f"shard sidecar {sdir.name}/center.npy"
                    )
                children.append(MmapStore.open(sdir, mode="r"))
            else:
                children.append(
                    DenseStore(
                        _load_array(
                            sdir / "center.npy", mmap=False,
                            version=version, directory=directory,
                        ),
                        _load_array(
                            sdir / "context.npy", mmap=False,
                            version=version, directory=directory,
                        ),
                    )
                )
        try:
            store = ShardedStore.from_children(children)
        except ValueError as exc:
            raise BundleFormatError(
                f"bundle at {directory} (format v3) is mis-sharded: {exc}"
            ) from exc
    elif version == 1:
        if mmap:
            raise BundleFormatError(
                f"bundle at {directory} is format v1 (compressed "
                "embeddings.npz), which cannot be memory-mapped; re-export "
                "it with save_bundle to get a mmap-able v2 bundle"
            )
        npz_path = directory / "embeddings.npz"
        if not npz_path.exists():
            raise BundleFormatError(
                f"bundle at {directory} (format v1) is missing embeddings.npz"
            )
        try:
            with np.load(npz_path) as data:
                center = np.array(data["center"])
                context = np.array(data["context"])
        except (ValueError, KeyError, OSError) as exc:
            raise BundleFormatError(
                f"bundle file {npz_path} is corrupt or truncated: {exc}"
            ) from exc
    elif mmap:
        store = MmapStore.open(directory, mode="r")
        center = _load_array(
            directory / "center.npy", mmap=True, version=version,
            directory=directory,
        )
        context = _load_array(
            directory / "context.npy", mmap=True, version=version,
            directory=directory,
        )
    else:
        center = _load_array(
            directory / "center.npy", mmap=False, version=version,
            directory=directory,
        )
        context = _load_array(
            directory / "context.npy", mmap=False, version=version,
            directory=directory,
        )
    if center is not None and center.shape != context.shape:
        raise BundleFormatError(
            f"bundle at {directory} (format v{version}) has mismatched "
            f"center {center.shape} vs context {context.shape} shapes"
        )
    n_rows = store.n_rows if center is None else center.shape[0]

    period = _require(manifest, "period", version=version, directory=directory)
    n_nodes = _require(manifest, "n_nodes", version=version, directory=directory)
    hotspots_path = directory / "hotspots.npz"
    if not hotspots_path.exists():
        raise BundleFormatError(
            f"bundle at {directory} (format v{version}) is missing hotspots.npz"
        )
    try:
        with np.load(hotspots_path) as data:
            detector = HotspotDetector.from_arrays(
                data["spatial"], data["temporal"], period=period
            )
    except (ValueError, KeyError, OSError) as exc:
        raise BundleFormatError(
            f"bundle file {hotspots_path} is corrupt or truncated: {exc}"
        ) from exc

    nodes = json.loads((directory / "nodes.json").read_text())
    if len(nodes) != n_nodes or n_rows != len(nodes):
        raise BundleFormatError(
            f"bundle at {directory} (format v{version}) is inconsistent: "
            f"manifest n_nodes={n_nodes}, nodes.json holds {len(nodes)}, "
            f"embeddings hold {n_rows} rows"
        )

    activity = ActivityGraph()
    # One enum lookup per distinct type value, not per node — bundles hold
    # tens of thousands of nodes and this loop dominates non-mmap load.
    type_cache: dict = {}
    index_types = (NodeType.TIME, NodeType.LOCATION)
    for type_value, key in nodes:
        node_type = type_cache.get(type_value)
        if node_type is None:
            node_type = type_cache[type_value] = NodeType(type_value)
        # JSON round-trips hotspot indices as ints and words/users as str;
        # T/L keys are indices.
        if node_type in index_types:
            key = int(key)
        activity.add_node(node_type, key)
    activity.finalize()

    words = json.loads((directory / "vocab.json").read_text())
    vocab = Vocabulary(min_count=1)
    vocab.fit([])  # freeze empty, then append in stored id order
    for word in words:
        vocab.add_word(word)

    interaction = UserInteractionGraph()
    interaction.finalize()
    built = BuiltGraphs(
        activity=activity,
        interaction=interaction,
        detector=detector,
        vocab=vocab,
        record_units=[],
    )
    if store is not None:
        return QueryModel(built=built, store=store)
    return QueryModel(built=built, center=center, context=context)


# --------------------------------------------------------------------------
# Streaming checkpoints
#
# An OnlineActor's state beyond its base Actor is: the (grown) embedding
# matrices, the registry of streamed-in extra nodes, the recency buffer
# contents, and the online RNG stream.  A checkpoint directory holds
#
#   online_manifest.json   format version, hyper-params, extra node registry,
#                          buffer clock, RNG state
#   center.npy/context.npy (grown) embedding matrices, raw — mmap-able
#   online_state.npz       recency-buffer columns
#
# so a streaming deployment can crash and resume against the same base
# model without replaying the stream.  Checkpoint format v1 kept the
# matrices inside online_state.npz; those still load.


def save_online_checkpoint(model, directory: str | Path) -> Path:
    """Write ``model``'s (an :class:`~repro.core.streaming.OnlineActor`)
    resumable streaming state to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # Extra nodes in row order, so restore can rebuild the registry by
    # enumeration.  Keys are hotspot ints or word/user strings — JSON-safe.
    base_rows = model.center.shape[0] - len(model._extra_nodes)
    ordered = sorted(model._extra_nodes.items(), key=lambda item: item[1])
    extra_nodes = []
    for offset, ((node_type, key), row) in enumerate(ordered):
        if row != base_rows + offset:
            raise ValueError(
                "extra node rows are not contiguous; refusing to checkpoint"
            )
        extra_nodes.append(
            [node_type.value, int(key) if isinstance(key, (int, np.integer)) else key]
        )

    buffer_state = model.buffer.state()
    np.save(directory / "center.npy", np.asarray(model.center, dtype=np.float64))
    np.save(directory / "context.npy", np.asarray(model.context, dtype=np.float64))
    np.savez_compressed(
        directory / "online_state.npz",
        buf_src=buffer_state["src"],
        buf_dst=buffer_state["dst"],
        buf_weight=buffer_state["weight"],
        buf_born=buffer_state["born"],
    )
    manifest = {
        "format_version": ONLINE_FORMAT_VERSION,
        "dim": int(model.center.shape[1]),
        "base_rows": int(base_rows),
        "n_rows": int(model.center.shape[0]),
        "n_ingested": int(model.n_ingested),
        "half_life": float(model.buffer.half_life),
        "online_lr": float(model.online_lr),
        "steps_per_batch": int(model.steps_per_batch),
        "batch_size": int(model.batch_size),
        "negatives": int(model.negatives),
        "buffer_max_size": int(model.buffer.max_size),
        "buffer_clock": int(buffer_state["clock"]),
        "buffer_evictions": int(buffer_state["evictions"]),
        "extra_nodes": extra_nodes,
        "rng_state": model._rng.bit_generator.state,
    }
    (directory / "online_manifest.json").write_text(
        json.dumps(manifest, indent=2)
    )
    return directory


def load_online_checkpoint(base: Actor, directory: str | Path):
    """Rebuild an :class:`~repro.core.streaming.OnlineActor` from a
    :func:`save_online_checkpoint` directory, resuming against ``base``.

    ``base`` must be the fitted Actor the checkpointed deployment was
    warm-started from (same node count and dimension); the shared built
    graphs supply the detector, base node registry and vocabulary.
    Reads checkpoint formats v1 (matrices inside ``online_state.npz``)
    and v2 (raw ``.npy`` sidecars).
    """
    from repro.core.streaming import OnlineActor, RecencyBuffer

    directory = Path(directory)
    manifest = _read_manifest(
        directory / "online_manifest.json", kind="checkpoint"
    )
    version = _check_version(
        manifest, SUPPORTED_ONLINE_FORMAT_VERSIONS,
        kind="checkpoint", directory=directory,
    )
    if not base.is_fitted:
        raise ValueError("base Actor must be fitted to restore a checkpoint")
    base_rows = _require(
        manifest, "base_rows", version=version, directory=directory
    )
    dim = _require(manifest, "dim", version=version, directory=directory)
    if base.center.shape[0] != base_rows or base.center.shape[1] != dim:
        raise ValueError(
            f"checkpoint was taken against a base model with "
            f"{base_rows} nodes of dim {dim}, got "
            f"{base.center.shape[0]} nodes of dim {base.center.shape[1]}"
        )

    model = OnlineActor(
        base,
        half_life=manifest["half_life"],
        online_lr=manifest["online_lr"],
        steps_per_batch=manifest["steps_per_batch"],
        batch_size=manifest["batch_size"],
        negatives=manifest["negatives"],
        buffer_size=manifest["buffer_max_size"],
        seed=0,
    )
    state_path = directory / "online_state.npz"
    if not state_path.exists():
        raise BundleFormatError(
            f"checkpoint at {directory} (format v{version}) is missing "
            "online_state.npz"
        )
    try:
        with np.load(state_path) as data:
            if version == 1:
                center = np.array(data["center"])
                context = np.array(data["context"])
            buffer_state = {
                "src": data["buf_src"],
                "dst": data["buf_dst"],
                "weight": data["buf_weight"],
                "born": data["buf_born"],
                "clock": manifest["buffer_clock"],
                "evictions": manifest["buffer_evictions"],
            }
    except (ValueError, KeyError, OSError) as exc:
        raise BundleFormatError(
            f"checkpoint file {state_path} is corrupt or truncated: {exc}"
        ) from exc
    if version >= 2:
        center = _load_array(
            directory / "center.npy", mmap=False, version=version,
            directory=directory,
        )
        context = _load_array(
            directory / "context.npy", mmap=False, version=version,
            directory=directory,
        )

    extra_nodes = _require(
        manifest, "extra_nodes", version=version, directory=directory
    )
    if (
        center.shape != (manifest["n_rows"], dim)
        or center.shape != context.shape
        or manifest["n_rows"] != base_rows + len(extra_nodes)
    ):
        raise BundleFormatError(
            f"checkpoint at {directory} (format v{version}) is inconsistent: "
            "row/extra-node count mismatch"
        )

    model.center = center
    model.context = context
    vocab = model.built.vocab
    for offset, (type_value, key) in enumerate(extra_nodes):
        node_type = NodeType(type_value)
        if node_type in (NodeType.TIME, NodeType.LOCATION):
            key = int(key)
        model._extra_nodes[(node_type, key)] = base_rows + offset
        # Words restored into a fresh base need their vocabulary entry
        # back; a full vocabulary simply leaves the word resolvable
        # through the extra-node registry.
        if (
            node_type is NodeType.WORD
            and key not in vocab
            and (vocab.max_size is None or len(vocab) < vocab.max_size)
        ):
            vocab.add_word(key)
    model.buffer = RecencyBuffer.from_state(
        buffer_state,
        half_life=manifest["half_life"],
        max_size=manifest["buffer_max_size"],
    )
    model.n_ingested = int(manifest["n_ingested"])
    rng_state = manifest["rng_state"]
    if rng_state.get("bit_generator") == model._rng.bit_generator.state.get(
        "bit_generator"
    ):
        model._rng.bit_generator.state = rng_state
    return model
