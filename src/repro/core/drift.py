"""Online model-quality drift watchdog for the streaming path.

For an online embedding model the thing that silently rots is the *model
itself*: as :class:`~repro.core.streaming.OnlineActor` evicts records and
rebuilds alias tables, embedding quality can drift with no operational
signal until the next offline evaluation.  CrossMap (the paper's online
predecessor) frames exactly this life-cycle problem — keeping embeddings
fresh as the record distribution shifts — and production embedding systems
pair serving metrics with *continuous quality probes*.

:class:`DriftWatchdog` hooks into every
:meth:`~repro.core.streaming.OnlineActor.partial_fit` call and watches
four independent signals:

1. **Probe MRR** — a frozen held-out probe query set is scored through the
   batched :class:`~repro.core.query_engine.QueryEngine` every
   ``probe_every`` batches; the rolling probe MRR (gauge
   ``drift.probe_mrr``) alarming when it falls more than ``mrr_drop``
   (relative) below the first measurement.  This is the direct
   model-quality signal — the others are cheap proxies that fire earlier.
2. **Embedding-norm distributions** — per modality (time / location /
   word), the mean L2 row norm per batch feeds a histogram
   (``drift.norm.<modality>``) and an EWMA z-score detector
   (``drift.norm_z.<modality>``): a burst of fresh random rows or a
   runaway learning rate moves the norm mass and trips the alarm.
3. **Hotspot-assignment PSI** — the spatial hotspot assignment counts of
   the first ``reference_batches`` batches form a frozen reference
   distribution; each later batch window is compared with the population
   stability index (gauge ``drift.spatial_psi``).  PSI > 0.25 is the
   classic "significant shift" threshold.
4. **Eviction-rate anomaly** — per-batch recency-buffer evictions feed an
   EWMA z-score (``drift.eviction_z``); a spike means the window is
   churning far faster than steady state.

Every alarm transition (healthy -> alarming) appends a JSON-safe event to
:attr:`DriftWatchdog.alerts` — surfaced as ``alerts.jsonl`` through
:func:`~repro.utils.telemetry.write_telemetry`, the ``repro telemetry``
subcommand, and the ``/healthz`` endpoint of
:class:`~repro.utils.telemetry_server.TelemetryServer` — and is logged as
a structured warning when a logger is attached.  All bookkeeping is
vectorized or O(#modalities); the streaming benchmark gates the total
overhead (probe scoring included) below 5% of streaming wall time.
"""

from __future__ import annotations

import math
import time
from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.core.query_engine import QueryEngine
from repro.utils.logging import NULL_LOGGER
from repro.utils.metrics import MetricsRegistry
from repro.utils.validation import check_positive

__all__ = [
    "DriftWatchdog",
    "EwmaZScore",
    "population_stability_index",
    "make_probe_queries",
]

# Modalities whose embedding-norm distribution the watchdog tracks.
_NORM_MODALITIES = ("time", "location", "word")


class EwmaZScore:
    """Exponentially-weighted mean/variance with z-score readout.

    ``update(x)`` returns how many EWMA standard deviations ``x`` sits
    from the mean *before* folding ``x`` in — 0.0 during the warmup
    period (the first ``warmup`` observations), so early noise cannot
    alarm.  The variance recurrence is the standard Welford-style EWMA:
    ``var = (1 - alpha) * (var + alpha * diff^2)``.  A jump after a
    perfectly constant history (variance exactly zero) reports ``±99``
    instead of a division by zero — finite so it stays Prometheus-safe,
    far above any sane threshold.
    """

    __slots__ = ("alpha", "warmup", "mean", "var", "count")

    def __init__(self, *, alpha: float = 0.2, warmup: int = 10) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.alpha = float(alpha)
        self.warmup = int(warmup)
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def update(self, value: float) -> float:
        """Fold in one observation; returns its z-score (0 in warmup)."""
        value = float(value)
        self.count += 1
        if self.count == 1:
            self.mean = value
            return 0.0
        diff = value - self.mean
        std = math.sqrt(self.var)
        if std > 0:
            z = diff / std
        else:
            z = math.copysign(99.0, diff) if abs(diff) > 1e-12 else 0.0
        self.mean += self.alpha * diff
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * diff * diff)
        return z if self.count > self.warmup else 0.0


def population_stability_index(
    expected: np.ndarray, observed: np.ndarray, *, epsilon: float = 1e-4
) -> float:
    """PSI between two count (or probability) vectors of equal length.

    ``sum((q - p) * ln(q / p))`` over the normalized distributions, with
    ``epsilon`` smoothing so empty buckets stay finite.  Conventional
    reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 significant.
    """
    p = np.asarray(expected, dtype=np.float64)
    q = np.asarray(observed, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    p = p / max(p.sum(), epsilon) + epsilon
    q = q / max(q.sum(), epsilon) + epsilon
    p /= p.sum()
    q /= q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


def make_probe_queries(
    records,
    *,
    target: str = "text",
    n_noise: int = 10,
    max_queries: int = 64,
    seed: int = 0,
):
    """Build a frozen probe query set from held-out records.

    A thin wrapper over :func:`repro.eval.mrr.make_queries` that accepts
    either a :class:`~repro.data.records.Corpus` or any iterable of
    records — the shape the CLI has at hand when enabling the watchdog.
    """
    from repro.data.records import Corpus
    from repro.eval.mrr import make_queries

    corpus = (
        records
        if isinstance(records, Corpus)
        else Corpus.from_records(list(records))
    )
    return make_queries(
        corpus, target, n_noise=n_noise, max_queries=max_queries, seed=seed
    )


class DriftWatchdog:
    """Continuous quality probes for an online streaming model.

    Attach with :meth:`repro.core.streaming.OnlineActor.attach_drift_watchdog`
    (or construct through
    :meth:`~repro.core.streaming.OnlineActor.enable_drift_watchdog`); the
    actor then calls :meth:`observe_batch` after every ingested batch.

    Parameters
    ----------
    model:
        The live :class:`~repro.core.streaming.OnlineActor` (any
        :class:`~repro.core.prediction.GraphEmbeddingModel` with a
        ``buffer`` works).
    probe_queries:
        Frozen held-out :class:`~repro.eval.mrr.PredictionQuery` list for
        the probe-MRR gauge (see :func:`make_probe_queries`); ``None``
        disables the probe signal.
    probe_every:
        Score the probe set every this many batches.
    mrr_drop:
        Relative drop below the baseline (first) probe MRR that alarms:
        ``0.3`` fires when the rolling MRR loses 30% of its baseline.
    reference_batches:
        Minimum batches whose spatial-hotspot assignment counts form the
        frozen PSI reference window (accumulation continues until
        ``psi_min_samples`` records are also covered).
    window_batches:
        Minimum rolling-window length (in batches) compared against the
        reference; the window likewise keeps growing until it spans
        ``psi_min_samples`` records.
    psi_min_samples:
        Minimum records both the reference and the rolling window must
        cover before a PSI is computed.  PSI noise scales like
        ``buckets / samples``, so a fixed batch count is far too noisy at
        small batch sizes — bounding by sample count keeps the
        stationary-stream PSI well under the alarm line regardless of
        how the operator batches the stream.
    psi_threshold:
        PSI above which the hotspot-population alarm fires (0.25 is the
        conventional "significant shift" line).
    psi_buckets:
        PSI is computed over at most this many buckets: the hotspots
        with the highest reference mass keep individual buckets and the
        long tail is merged into one.  Raw per-hotspot PSI over hundreds
        of sparse cells is dominated by sampling noise at streaming batch
        sizes; ~10 buckets is the classic credit-scoring setup and keeps
        the stationary-stream PSI well under the alarm line.
    norm_alpha / norm_z_threshold / norm_warmup:
        EWMA parameters of the per-modality norm detectors.
    eviction_alpha / eviction_z_threshold / eviction_warmup:
        EWMA parameters of the eviction-rate detector.
    metrics:
        Registry for the drift gauges; defaults to the model's own, so
        drift metrics ride the same Prometheus export.
    logger:
        Optional :class:`~repro.utils.logging.StructuredLogger`; every
        alert is also emitted as a structured warning.
    max_alerts:
        Retention bound of the in-memory alert list (oldest dropped).
    clock:
        Wall-clock source for alert timestamps; injectable for tests.
    """

    def __init__(
        self,
        model,
        *,
        probe_queries: Sequence | None = None,
        probe_every: int = 10,
        mrr_drop: float = 0.3,
        reference_batches: int = 5,
        window_batches: int = 5,
        psi_threshold: float = 0.25,
        psi_buckets: int = 10,
        psi_min_samples: int = 500,
        norm_alpha: float = 0.1,
        norm_z_threshold: float = 6.0,
        norm_warmup: int = 10,
        eviction_alpha: float = 0.2,
        eviction_z_threshold: float = 6.0,
        eviction_warmup: int = 10,
        metrics: MetricsRegistry | None = None,
        logger=None,
        max_alerts: int = 1000,
        clock=time.time,
    ) -> None:
        check_positive("probe_every", probe_every)
        check_positive("reference_batches", reference_batches)
        check_positive("window_batches", window_batches)
        check_positive("psi_threshold", psi_threshold)
        if psi_buckets < 2:
            raise ValueError(f"psi_buckets must be >= 2, got {psi_buckets}")
        if not 0.0 < mrr_drop < 1.0:
            raise ValueError(f"mrr_drop must be in (0, 1), got {mrr_drop}")
        self.model = model
        self.probe_queries = (
            list(probe_queries) if probe_queries is not None else None
        )
        self.probe_every = int(probe_every)
        self.mrr_drop = float(mrr_drop)
        self.reference_batches = int(reference_batches)
        self.window_batches = int(window_batches)
        check_positive("psi_min_samples", psi_min_samples)
        self.psi_threshold = float(psi_threshold)
        self.psi_buckets = int(psi_buckets)
        self.psi_min_samples = int(psi_min_samples)
        self.norm_z_threshold = float(norm_z_threshold)
        self.eviction_z_threshold = float(eviction_z_threshold)
        if metrics is None:
            metrics = getattr(model, "metrics", None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self._clock = clock

        self._norm_detectors = {
            m: EwmaZScore(alpha=norm_alpha, warmup=norm_warmup)
            for m in _NORM_MODALITIES
        }
        self._eviction_detector = EwmaZScore(
            alpha=eviction_alpha, warmup=eviction_warmup
        )
        n_spatial = len(model.built.detector.spatial_hotspots)
        self._reference_counts = np.zeros(n_spatial, dtype=np.float64)
        self._reference_batches_seen = 0
        self._head_hotspots: np.ndarray | None = None
        self._window: deque[np.ndarray] = deque()
        self._last_evictions = int(getattr(model.buffer, "evictions", 0))
        self._engine: QueryEngine | None = None
        self._alarm_state: dict[str, bool] = {}
        self.alerts: deque[dict] = deque(maxlen=int(max_alerts))
        self.n_batches = 0
        self.probe_mrr: float | None = None
        self.probe_baseline: float | None = None
        self.spatial_psi: float | None = None

    # -------------------------------------------------------------- signals

    def observe_batch(self, records: Sequence) -> None:
        """Digest one ingested batch (called from ``partial_fit``).

        Runs after the training burst, so every signal sees the
        post-update model.  Total cost is gated below 5% of streaming
        wall time by ``benchmarks/bench_online_streaming.py``.
        """
        with self.metrics.time("drift.observe"):
            self.n_batches += 1
            self._observe_hotspots(records)
            self._observe_norms()
            self._observe_evictions()
            if (
                self.probe_queries
                and self.n_batches % self.probe_every == 0
            ):
                self._observe_probe()
        self.metrics.gauge("drift.alarm").set(
            1.0 if any(self._alarm_state.values()) else 0.0
        )

    def _observe_hotspots(self, records: Sequence) -> None:
        """Accumulate spatial-assignment counts; PSI vs the reference."""
        if self._reference_counts.size == 0:
            return
        locations = np.asarray([r.location for r in records], dtype=float)
        if locations.size == 0:
            return
        idx = self.model.built.detector.assign_spatial(locations)
        counts = np.bincount(idx, minlength=self._reference_counts.size).astype(
            np.float64
        )
        if self._head_hotspots is None:
            # Still building the reference: accumulate until it spans
            # both enough batches and enough records.
            self._reference_counts += counts
            self._reference_batches_seen += 1
            if (
                self._reference_batches_seen >= self.reference_batches
                and self._reference_counts.sum() >= self.psi_min_samples
            ):
                # Freeze the bucketing alongside the reference: the
                # heaviest hotspots keep individual buckets, the tail
                # merges into one.
                n_head = min(
                    self.psi_buckets - 1, self._reference_counts.size
                )
                order = np.argsort(self._reference_counts)[::-1]
                self._head_hotspots = order[:n_head]
            return
        self._window.append(counts)
        # Trim to the smallest suffix still satisfying both minima, so
        # the window tracks recent data without dropping below the
        # sample count that keeps PSI noise under the alarm line.
        while (
            len(self._window) > self.window_batches
            and sum(c.sum() for c in self._window) - self._window[0].sum()
            >= self.psi_min_samples
        ):
            self._window.popleft()
        observed = np.sum(self._window, axis=0)
        if (
            len(self._window) < self.window_batches
            or observed.sum() < self.psi_min_samples
        ):
            # A part-filled window has too few samples per bucket —
            # sampling noise alone would cross the alarm line.
            return
        psi = population_stability_index(
            self._bucketize(self._reference_counts),
            self._bucketize(observed),
        )
        self.spatial_psi = psi
        self.metrics.gauge("drift.spatial_psi").set(psi)
        self._transition(
            "spatial_psi",
            psi > self.psi_threshold,
            value=psi,
            threshold=self.psi_threshold,
            message=(
                f"hotspot population shifted: PSI {psi:.3f} > "
                f"{self.psi_threshold}"
            ),
        )

    def _bucketize(self, counts: np.ndarray) -> np.ndarray:
        """Compress per-hotspot counts to head buckets + one tail bucket."""
        head = counts[self._head_hotspots]
        tail = counts.sum() - head.sum()
        return np.append(head, tail)

    def _observe_norms(self) -> None:
        """Track per-modality mean embedding norms (histogram + EWMA z).

        Rows are gathered straight from the model's embedding store
        (``modality_rows`` + ``store.view``), so the detector reads the
        live matrices whatever the backend — dense, shared-memory or
        memory-mapped.
        """
        store = self.model.store
        for modality in _NORM_MODALITIES:
            _keys, rows = self.model.modality_rows(modality)
            if len(rows) == 0:
                continue
            matrix = store.view(rows)
            mean_norm = float(np.linalg.norm(matrix, axis=1).mean())
            self.metrics.gauge(f"drift.norm_mean.{modality}").set(mean_norm)
            self.metrics.histogram(f"drift.norm.{modality}").observe(mean_norm)
            z = self._norm_detectors[modality].update(mean_norm)
            self.metrics.gauge(f"drift.norm_z.{modality}").set(z)
            self._transition(
                f"norm:{modality}",
                abs(z) > self.norm_z_threshold,
                value=z,
                threshold=self.norm_z_threshold,
                message=(
                    f"{modality} embedding-norm mean moved {z:+.1f} EWMA "
                    f"sigma (norm {mean_norm:.4f})"
                ),
            )

    def _observe_evictions(self) -> None:
        """EWMA z-score over per-batch recency-buffer evictions."""
        buffer = getattr(self.model, "buffer", None)
        if buffer is None:
            return
        evictions = int(buffer.evictions)
        delta = evictions - self._last_evictions
        self._last_evictions = evictions
        self.metrics.gauge("drift.evictions_per_batch").set(delta)
        z = self._eviction_detector.update(delta)
        self.metrics.gauge("drift.eviction_z").set(z)
        self._transition(
            "eviction_rate",
            z > self.eviction_z_threshold,
            value=z,
            threshold=self.eviction_z_threshold,
            message=(
                f"eviction rate spiked {z:+.1f} EWMA sigma "
                f"({delta} evictions this batch)"
            ),
        )

    def _observe_probe(self) -> None:
        """Score the frozen probe set through the batched engine."""
        if self._engine is None:
            # Private registry: probe scoring must not inflate the
            # serving-path query metrics.
            self._engine = QueryEngine(self.model, metrics=MetricsRegistry())
        with self.metrics.time("drift.probe"):
            mrr = self._engine.mean_reciprocal_rank(self.probe_queries)
        self.probe_mrr = mrr
        if self.probe_baseline is None:
            self.probe_baseline = mrr
            self.metrics.gauge("drift.probe_mrr_baseline").set(mrr)
        self.metrics.gauge("drift.probe_mrr").set(mrr)
        floor = self.probe_baseline * (1.0 - self.mrr_drop)
        self._transition(
            "probe_mrr",
            mrr < floor,
            value=mrr,
            threshold=floor,
            message=(
                f"probe MRR {mrr:.3f} fell below "
                f"{floor:.3f} ({self.mrr_drop:.0%} under baseline "
                f"{self.probe_baseline:.3f})"
            ),
        )

    # --------------------------------------------------------------- alerts

    def _transition(
        self,
        kind: str,
        firing: bool,
        *,
        value: float,
        threshold: float,
        message: str,
    ) -> None:
        """Edge-triggered alarm bookkeeping: alert once per excursion."""
        was_firing = self._alarm_state.get(kind, False)
        self._alarm_state[kind] = firing
        if firing and not was_firing:
            alert = {
                "ts": float(self._clock()),
                "batch": self.n_batches,
                "kind": kind,
                "value": round(float(value), 6),
                "threshold": round(float(threshold), 6),
                "message": message,
            }
            self.alerts.append(alert)
            self.metrics.counter("drift.alerts").inc()
            self.logger.warning(f"drift.alert.{kind}", **alert)

    @property
    def alarming(self) -> bool:
        """Whether any alarm is currently in the firing state."""
        return any(self._alarm_state.values())

    def status(self) -> dict:
        """JSON-safe summary for ``/healthz`` (a status provider)."""
        return {
            "status": "alerting" if self.alarming else "ok",
            "drift": {
                "batches": self.n_batches,
                "probe_mrr": self.probe_mrr,
                "probe_baseline": self.probe_baseline,
                "spatial_psi": self.spatial_psi,
                "alerts": len(self.alerts),
                "firing": sorted(
                    kind for kind, on in self._alarm_state.items() if on
                ),
            },
        }
