"""Meta-graph definitions (paper Section 5.1, Fig. 3b).

Definition 6: a meta-graph is a sub-graphical scheme — a set of typed
vertices with an adjacency relation.  ACTOR uses two families:

* **M0, the intra-record meta-graph**: the co-occurrence clique of one
  record's units {T, L, W...} with edge types ``{TL, LW, WT, WW}``.  Its
  bag-of-words reading (footnote 4) treats all words of a record as one
  summed textual side.
* **M1-M6, the inter-record meta-graphs**: two mention-linked users, each
  attached to units of their own records —
  ``unit_A -- user_A -- user_B -- unit_B``.  They are categorized by which
  unit-type pair ``(X, Y)`` they connect across the records; with three unit
  types there are exactly six unordered pairs, matching the paper's count.
  (The paper's figure does not spell out the numbering; we fix M4 = (T, W)
  because the running example — temporal unit T1 reaching textual unit W2
  through the user layer — is called an M4 instance.)

The edge-type sets that the training objective (Eq. 6) sums over are
``INTRA_EDGE_TYPES`` and ``INTER_EDGE_TYPES``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.builder import BuiltGraphs
from repro.graphs.types import EdgeType, NodeType

__all__ = [
    "MetaGraph",
    "M0",
    "INTER_META_GRAPHS",
    "ALL_META_GRAPHS",
    "INTRA_EDGE_TYPES",
    "INTER_EDGE_TYPES",
    "count_inter_instances",
]

INTRA_EDGE_TYPES: tuple[EdgeType, ...] = (
    EdgeType.TL,
    EdgeType.LW,
    EdgeType.WT,
    EdgeType.WW,
)
INTER_EDGE_TYPES: tuple[EdgeType, ...] = (
    EdgeType.UT,
    EdgeType.UW,
    EdgeType.UL,
)


@dataclass(frozen=True)
class MetaGraph:
    """One meta-graph scheme.

    Attributes
    ----------
    name:
        ``"M0"`` ... ``"M6"``.
    kind:
        ``"intra"`` or ``"inter"``.
    unit_pair:
        For inter meta-graphs, the unordered unit-type pair ``(X, Y)``
        connected across the two records; ``None`` for M0.
    """

    name: str
    kind: str
    unit_pair: tuple[NodeType, NodeType] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("intra", "inter"):
            raise ValueError(f"kind must be 'intra' or 'inter', got {self.kind!r}")
        if self.kind == "inter" and self.unit_pair is None:
            raise ValueError("inter meta-graphs need a unit_pair")


M0 = MetaGraph(name="M0", kind="intra")

# Six unordered pairs over {T, L, W}; M4 pinned to (T, W) per the paper's
# running example, remaining labels assigned in a stable documented order.
INTER_META_GRAPHS: tuple[MetaGraph, ...] = (
    MetaGraph("M1", "inter", (NodeType.TIME, NodeType.TIME)),
    MetaGraph("M2", "inter", (NodeType.LOCATION, NodeType.LOCATION)),
    MetaGraph("M3", "inter", (NodeType.WORD, NodeType.WORD)),
    MetaGraph("M4", "inter", (NodeType.TIME, NodeType.WORD)),
    MetaGraph("M5", "inter", (NodeType.TIME, NodeType.LOCATION)),
    MetaGraph("M6", "inter", (NodeType.LOCATION, NodeType.WORD)),
)

ALL_META_GRAPHS: tuple[MetaGraph, ...] = (M0, *INTER_META_GRAPHS)

_UNIT_EDGE: dict[NodeType, EdgeType] = {
    NodeType.TIME: EdgeType.UT,
    NodeType.LOCATION: EdgeType.UL,
    NodeType.WORD: EdgeType.UW,
}


def count_inter_instances(built: BuiltGraphs, meta: MetaGraph) -> int:
    """Count instances of an inter-record meta-graph in the built graphs.

    An instance of meta-graph ``(X, Y)`` is a path
    ``x -- a -- b -- y`` where ``(a, b)`` is a user-interaction edge, ``x``
    is an X-unit adjacent to ``a`` and ``y`` a Y-unit adjacent to ``b``
    (units counted distinctly; both orientations for ``X != Y``).  These
    paths contain more than two hops, which is exactly why the paper calls
    the encoded proximity *high-order*.
    """
    if meta.kind != "inter":
        raise ValueError(f"{meta.name} is not an inter-record meta-graph")
    type_x, type_y = meta.unit_pair  # type: ignore[misc]
    deg_x = _distinct_unit_neighbors(built, type_x)
    deg_y = _distinct_unit_neighbors(built, type_y)

    interaction = built.interaction
    interaction.finalize()
    total = 0
    activity = built.activity
    for a_idx, b_idx in zip(interaction.edge_set.src, interaction.edge_set.dst):
        name_a = interaction.users[int(a_idx)]
        name_b = interaction.users[int(b_idx)]
        if not (
            activity.has_node(NodeType.USER, name_a)
            and activity.has_node(NodeType.USER, name_b)
        ):
            continue
        a = activity.index_of(NodeType.USER, name_a)
        b = activity.index_of(NodeType.USER, name_b)
        if type_x is type_y:
            total += deg_x.get(a, 0) * deg_x.get(b, 0)
        else:
            total += deg_x.get(a, 0) * deg_y.get(b, 0)
            total += deg_y.get(a, 0) * deg_x.get(b, 0)
    return total


def _distinct_unit_neighbors(
    built: BuiltGraphs, unit_type: NodeType
) -> dict[int, int]:
    """Per-user count of distinct adjacent units of ``unit_type``."""
    edge_set = built.activity.edge_set(_UNIT_EDGE[unit_type])
    counts: dict[int, int] = {}
    for user_node in edge_set.src:  # U is always the src side of U-edges
        counts[int(user_node)] = counts.get(int(user_node), 0) + 1
    return counts
