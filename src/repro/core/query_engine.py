"""Vectorized batch query engine for cross-modal prediction serving.

The scalar query surface of :class:`~repro.core.prediction.GraphEmbeddingModel`
embeds one unit at a time: a KD-tree snap per timestamp, a vector lookup per
word, an ``np.stack`` per candidate list.  That is fine for a single
interactive query but dominates MRR evaluation and any serving workload with
interpreter overhead.  :class:`QueryEngine` performs the same computation in
bulk:

* all query times / locations are snapped with **one**
  ``assign_temporal`` / ``assign_spatial`` call;
* word bags are embedded through a flattened keyword-row gather plus a
  single ``np.add.reduceat`` segment sum (the sort+reduceat idiom of
  :mod:`repro.embedding.sgns`, applied CSR-style: ``offsets`` play the role
  of the indptr array) — no per-word NumPy calls, no ``np.add.at``;
* an ``(n_queries, n_candidates)`` score block is one matrix product over
  pre-L2-normalized modality matrices.  These are gathered from the
  embedding store's cached normalized view and invalidated by the store's
  monotonic ``version`` counter, which every mutation path (refit, stream
  growth, in-place SGD bursts, eviction) advances — see
  :attr:`~repro.core.prediction.GraphEmbeddingModel.query_version` and
  :meth:`repro.storage.base.EmbeddingStore.normalized`.

The scalar path remains the reference implementation; :meth:`rank_batch` is
guaranteed rank-parity with :func:`repro.eval.mrr.query_rank` (enforced by
property tests): exact ties — identical candidate values, zero vectors —
resolve by original position in both paths, and non-tied scores differ by
far more than the last-ulp noise between matrix-product shapes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Hashable, Sequence
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.core.prediction import (
    TARGETS,
    GraphEmbeddingModel,
    normalize_rows,
)
from repro.utils.logging import NULL_LOGGER
from repro.utils.metrics import MetricsRegistry
from repro.utils.tracing import NULL_TRACER

__all__ = ["QueryEngine", "dedup_candidates"]


def dedup_candidates(flat: Sequence) -> tuple[list, np.ndarray]:
    """First-seen unique candidates plus the inverse gather indices.

    Serving traffic repeats hot candidates heavily (the load generator's
    Zipf popularity makes the same venues/timestamps ride along in most
    coalesced batches), so the ragged scorer embeds each distinct value
    once and scatters the rows back through ``inverse``.  Candidate
    embedding is content-deterministic row by row, which makes the
    dedup + gather bit-identical to embedding the full flattened list.

    Values are keyed by their own hash; unhashable sequences (lists,
    arrays) fall back to a flattened-tuple key.  Returns
    ``(unique, inverse)`` with ``unique[inverse[i]]`` the i-th original
    candidate.
    """
    index_of: dict = {}
    unique: list = []
    inverse = np.empty(len(flat), dtype=np.int64)
    for i, cand in enumerate(flat):
        key: Hashable
        try:
            hash(cand)
            key = cand
        except TypeError:
            key = tuple(np.asarray(cand).ravel().tolist())
        pos = index_of.get(key)
        if pos is None:
            pos = index_of[key] = len(unique)
            unique.append(cand)
        inverse[i] = pos
    return unique, inverse


class QueryEngine:
    """Batched scoring/ranking over a fitted :class:`GraphEmbeddingModel`.

    Parameters
    ----------
    model:
        Any fitted embedding model exposing the shared query surface
        (ACTOR, OnlineActor, CrossMap, LINE, metapath2vec, QueryModel).
    metrics:
        Optional :class:`~repro.utils.metrics.MetricsRegistry`; falls back
        to the model's own registry when it has one, else a private one.
        Timers ``query.embed``, ``query.score`` and counter
        ``query.queries`` record the serving load; latency histograms
        ``query.snap_seconds`` / ``query.gather_seconds`` /
        ``query.score_seconds`` / ``query.batch_seconds`` break each batch
        into its hotspot-snap, word-gather and scoring phases.
    tracer:
        Optional :class:`~repro.utils.tracing.Tracer`.  Each batch emits a
        ``query.rank_batch`` / ``query.score_batch`` span with
        ``query.snap`` / ``query.gather`` / ``query.score`` children.
        Defaults to the no-op tracer.
    slow_query_threshold:
        Batch wall-time threshold in **seconds**; batches slower than this
        are appended to :attr:`slow_queries` (and counted under
        ``query.slow_batches``).  ``None`` disables the slow-query log.
    slow_query_log_size:
        Maximum retained slow-query entries (oldest evicted first).
    logger:
        Optional :class:`~repro.utils.logging.StructuredLogger`; slow
        batches additionally emit a rate-limited ``query.slow_batch``
        warning.  Defaults to the no-op
        :data:`~repro.utils.logging.NULL_LOGGER`.
    """

    def __init__(
        self,
        model: GraphEmbeddingModel,
        *,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        slow_query_threshold: float | None = None,
        slow_query_log_size: int = 32,
        logger=None,
    ) -> None:
        if metrics is None:
            metrics = getattr(model, "metrics", None)
        self.model = model
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.logger = logger if logger is not None else NULL_LOGGER
        if slow_query_threshold is not None and slow_query_threshold < 0:
            raise ValueError(
                f"slow_query_threshold must be >= 0, got {slow_query_threshold}"
            )
        self.slow_query_threshold = slow_query_threshold
        self.slow_queries: deque[dict] = deque(maxlen=int(slow_query_log_size))
        self._stage_local = threading.local()

    def __getstate__(self) -> dict:
        """Pickle support: the thread-local stage sink is dropped (models
        cache their engine, so ``Actor.save`` pickles it along)."""
        state = self.__dict__.copy()
        del state["_stage_local"]
        return state

    def __setstate__(self, state: dict) -> None:
        """Pickle support: a fresh thread-local sink is created on load."""
        self.__dict__.update(state)
        self._stage_local = threading.local()

    @property
    def dim(self) -> int:
        """Embedding dimension of the underlying model."""
        return self.model.dim

    # -------------------------------------------------------- stage collection

    @contextmanager
    def collect_stages(self) -> Iterator[dict]:
        """Collect this thread's per-stage timings for one dispatch.

        Yields a dict that accumulates ``{"snap": seconds, "gather": ...,
        "score": ...}`` (plus non-duration observations under a
        ``values`` sub-dict, e.g. the ANN probed fraction) for every
        engine call made by the *calling thread* inside the block.  The
        sink is thread-local, so concurrent dispatches — the coalescing
        dispatcher and a non-coalesced handler — never mix stages.
        Nests safely: the previous sink is restored on exit.
        """
        sink: dict = {}
        previous = getattr(self._stage_local, "sink", None)
        self._stage_local.sink = sink
        try:
            yield sink
        finally:
            self._stage_local.sink = previous

    def _observe_stage(self, name: str, seconds: float) -> None:
        """Observe ``query.<name>_seconds`` + feed the active stage sink."""
        self.metrics.histogram(f"query.{name}_seconds").observe(seconds)
        sink = getattr(self._stage_local, "sink", None)
        if sink is not None:
            sink[name] = sink.get(name, 0.0) + seconds

    def _note_stage_value(self, key: str, value: float) -> None:
        """Record a non-duration observation on the active stage sink."""
        sink = getattr(self._stage_local, "sink", None)
        if sink is not None:
            sink.setdefault("values", {})[key] = value

    # ------------------------------------------------------------ unit level

    def embed_times(
        self, times: Sequence[float] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embed many timestamps with one ``assign_temporal`` call.

        Returns ``(vectors, found)``: vectors of shape ``(n, d)`` (zero
        rows where the snapped hotspot never became a graph node) and the
        boolean ``found`` mask.
        """
        with self.tracer.span("query.snap", modality="time"):
            start = time.perf_counter()
            cache = self.model.modality_cache("time")
            values = np.asarray(times, dtype=float).ravel()
            idx = self.model.built.detector.assign_temporal(values)
            positions = cache.index_map[idx]
            found = positions >= 0
            vectors = np.zeros((values.shape[0], self.dim))
            vectors[found] = cache.matrix[positions[found]]
            self._observe_stage("snap", time.perf_counter() - start)
        return vectors, found

    def embed_locations(
        self, locations: Sequence | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embed many ``(x, y)`` pairs with one ``assign_spatial`` call."""
        with self.tracer.span("query.snap", modality="location"):
            start = time.perf_counter()
            cache = self.model.modality_cache("location")
            coords = np.asarray(locations, dtype=float).reshape(-1, 2)
            idx = self.model.built.detector.assign_spatial(coords)
            positions = cache.index_map[idx]
            found = positions >= 0
            vectors = np.zeros((coords.shape[0], self.dim))
            vectors[found] = cache.matrix[positions[found]]
            self._observe_stage("snap", time.perf_counter() - start)
        return vectors, found

    def embed_word_bags(self, bags: Sequence[Sequence[str]]) -> np.ndarray:
        """Mean word vector per bag (zeros where no word is in-vocabulary).

        The bags are flattened CSR-style — one row-index array plus
        offsets — so the per-bag means come from a single gather and one
        ``np.add.reduceat`` segment sum, matching
        :meth:`GraphEmbeddingModel.words_vector` bag by bag.
        """
        with self.tracer.span("query.gather", bags=len(bags)):
            start = time.perf_counter()
            try:
                return self._embed_word_bags(bags)
            finally:
                self._observe_stage("gather", time.perf_counter() - start)

    def _embed_word_bags(self, bags: Sequence[Sequence[str]]) -> np.ndarray:
        """Uninstrumented body of :meth:`embed_word_bags`."""
        cache = self.model.modality_cache("word")
        get = cache.position_of.get
        bag_sizes = np.fromiter(
            (len(bag) for bag in bags), dtype=np.int64, count=len(bags)
        )
        # One C-level pass over every word: vocabulary row or -1 for OOV.
        rows = np.fromiter(
            (get(word, -1) for bag in bags for word in bag),
            dtype=np.int64,
            count=int(bag_sizes.sum()),
        )
        out = np.zeros((len(bags), self.dim))
        valid = rows >= 0
        nonzero = bag_sizes > 0
        if not valid.any():
            return out
        # `rows` holds only words of non-empty bags, in bag order, so the
        # bag-size offsets segment both the OOV mask and the kept rows.
        offsets = np.concatenate(([0], np.cumsum(bag_sizes[nonzero][:-1])))
        lengths = np.zeros(len(bags), dtype=np.int64)
        lengths[nonzero] = np.add.reduceat(valid.astype(np.int64), offsets)
        nonempty = np.flatnonzero(lengths)
        offsets = np.concatenate(([0], np.cumsum(lengths[nonempty][:-1])))
        sums = np.add.reduceat(cache.matrix[rows[valid]], offsets, axis=0)
        out[nonempty] = sums / lengths[nonempty][:, None]
        return out

    # ----------------------------------------------------------- query level

    def query_matrix(
        self,
        *,
        times: Sequence[float | None] | None = None,
        locations: Sequence | None = None,
        words: Sequence[Sequence[str] | None] | None = None,
        n_queries: int | None = None,
    ) -> np.ndarray:
        """Query vectors for a batch, one row per query.

        Each of ``times`` / ``locations`` / ``words`` is either ``None``
        (modality absent for the whole batch) or a length-``n`` sequence
        whose entries may individually be ``None``.  Per query the
        available modality vectors are averaged exactly like
        :meth:`GraphEmbeddingModel.query_vector`: snapped units missing
        from the graph are skipped, while a present-but-fully-OOV word bag
        still contributes a zero vector to the average.
        """
        sizes = {
            len(part)
            for part in (times, locations, words)
            if part is not None
        }
        if n_queries is not None:
            sizes.add(n_queries)
        if len(sizes) != 1:
            raise ValueError(
                f"query modality batches must agree on length, got {sizes}"
            )
        n = sizes.pop()
        total = np.zeros((n, self.dim))
        count = np.zeros(n)
        if times is not None:
            present = np.asarray([t is not None for t in times])
            if present.any():
                rows = np.flatnonzero(present)
                vectors, found = self.embed_times(
                    [times[int(i)] for i in rows]
                )
                total[rows[found]] += vectors[found]
                count[rows[found]] += 1
        if locations is not None:
            present = np.asarray([loc is not None for loc in locations])
            if present.any():
                rows = np.flatnonzero(present)
                vectors, found = self.embed_locations(
                    [locations[int(i)] for i in rows]
                )
                total[rows[found]] += vectors[found]
                count[rows[found]] += 1
        if words is not None:
            present = np.asarray([bag is not None for bag in words])
            if present.any():
                rows = np.flatnonzero(present)
                vectors = self.embed_word_bags([words[int(i)] for i in rows])
                total[rows] += vectors
                count[rows] += 1
        out = np.zeros((n, self.dim))
        np.divide(total, count[:, None], out=out, where=count[:, None] > 0)
        return out

    def candidate_matrix(self, target: str, candidates: Sequence) -> np.ndarray:
        """Embed every candidate of ``target`` — the batched
        :meth:`GraphEmbeddingModel.candidate_vector`."""
        if target == "text":
            return self.embed_word_bags(candidates)
        if target == "location":
            vectors, _found = self.embed_locations(candidates)
        elif target == "time":
            vectors, _found = self.embed_times(candidates)
        else:
            raise ValueError(f"target must be one of {TARGETS}, got {target!r}")
        return vectors

    # ----------------------------------------------------------- score level

    def score_candidates_batch(
        self,
        *,
        target: str,
        candidates: Sequence,
        times: Sequence[float | None] | None = None,
        locations: Sequence | None = None,
        words: Sequence[Sequence[str] | None] | None = None,
    ) -> np.ndarray:
        """Cosine scores of a shared candidate list for many queries.

        Returns an ``(n_queries, n_candidates)`` block computed as one
        matrix product between the normalized query and candidate
        matrices.  Row ``i`` equals
        :meth:`GraphEmbeddingModel.score_candidates` for query ``i`` up to
        last-ulp rounding (exact ties are preserved bit-for-bit).
        """
        with self.tracer.span(
            "query.score_batch", target=target, n_candidates=len(candidates)
        ):
            start = time.perf_counter()
            with self.metrics.time("query.embed"):
                queries = normalize_rows(
                    self.query_matrix(
                        times=times, locations=locations, words=words
                    )
                )
                cands = normalize_rows(
                    self.candidate_matrix(target, candidates)
                )
            with self.metrics.time("query.score"), self.tracer.span(
                "query.score"
            ):
                score_start = time.perf_counter()
                block = queries @ cands.T
                self._observe_stage("score", time.perf_counter() - score_start)
            self.metrics.counter("query.queries").inc(queries.shape[0])
            n = int(queries.shape[0])
            self._record_batch(
                op="score_candidates_batch",
                target=target,
                n_queries=n,
                seconds=time.perf_counter() - start,
                modalities={
                    "time": sum(1 for t in times if t is not None)
                    if times is not None
                    else 0,
                    "location": sum(1 for l in locations if l is not None)
                    if locations is not None
                    else 0,
                    "word": sum(1 for w in words if w is not None)
                    if words is not None
                    else 0,
                },
            )
        return block

    def score_ragged_batch(
        self,
        *,
        target: str,
        candidates: Sequence[Sequence],
        times: Sequence[float | None] | None = None,
        locations: Sequence | None = None,
        words: Sequence[Sequence[str] | None] | None = None,
    ) -> list[np.ndarray]:
        """Cosine scores when every query brings its *own* candidate list.

        The serving path's workhorse: :meth:`score_candidates_batch`
        requires one shared candidate list, but coalesced client requests
        each carry their own.  The candidate lists are flattened into a
        single :meth:`candidate_matrix` gather and scored with one
        row-wise ``einsum`` against the repeated query rows, then split
        back per query.

        Every per-row operation (snap, CSR word gather, row
        normalization, sequential einsum dot) is content-deterministic,
        so element ``i`` of the result is **bit-identical** to calling
        this method with query ``i`` alone — the exact-parity contract
        the request coalescer relies on (enforced by tests).
        """
        counts = np.asarray([len(c) for c in candidates], dtype=np.int64)
        if (counts == 0).any():
            raise ValueError("every query needs at least one candidate")
        with self.tracer.span(
            "query.score_ragged_batch",
            target=target,
            n_queries=len(candidates),
        ):
            start = time.perf_counter()
            with self.metrics.time("query.embed"):
                query_mat = normalize_rows(
                    self.query_matrix(
                        times=times,
                        locations=locations,
                        words=words,
                        n_queries=len(candidates),
                    )
                )
                flat = [c for group in candidates for c in group]
                # Zipf-shaped serving traffic repeats hot candidates:
                # embed each distinct value once, gather rows back.
                unique, inverse = dedup_candidates(flat)
                cand_mat = normalize_rows(
                    self.candidate_matrix(target, unique)
                )[inverse]
                self.metrics.counter("query.candidates_deduped").inc(
                    len(flat) - len(unique)
                )
            with self.metrics.time("query.score"), self.tracer.span(
                "query.score", target=target
            ):
                score_start = time.perf_counter()
                scores = np.einsum(
                    "nd,nd->n", cand_mat, np.repeat(query_mat, counts, axis=0)
                )
                self._observe_stage("score", time.perf_counter() - score_start)
            self.metrics.counter("query.queries").inc(len(candidates))
            splits = np.cumsum(counts[:-1])
            out = [np.asarray(block) for block in np.split(scores, splits)]
            self._record_batch(
                op="score_ragged_batch",
                target=target,
                n_queries=len(candidates),
                seconds=time.perf_counter() - start,
                modalities={
                    "time": sum(1 for t in times if t is not None)
                    if times is not None
                    else 0,
                    "location": sum(1 for l in locations if l is not None)
                    if locations is not None
                    else 0,
                    "word": sum(1 for w in words if w is not None)
                    if words is not None
                    else 0,
                },
            )
        return out

    def neighbors(
        self, query_vec, modality: str, k: int = 10
    ) -> list[tuple[Hashable, float]]:
        """Exact top-``k`` nearest units of ``modality`` to a raw vector.

        Delegates to the model's cached dense scan
        (:meth:`~repro.core.prediction.GraphEmbeddingModel.neighbors`).
        This is the serving seam the ANN layer plugs into:
        :class:`~repro.ann.engine.IndexedQueryEngine` overrides it with a
        sub-linear IVF probe, so :class:`~repro.serving.service
        .QueryService` routes every neighbor request through the engine
        and picks up whichever retrieval mode the engine implements.
        """
        return self.model.neighbors(query_vec, modality, k)

    def rank_batch(self, queries: Sequence) -> np.ndarray:
        """1-based truth ranks for a batch of ``PredictionQuery`` objects.

        Rank-parity with the scalar reference
        (:func:`repro.eval.mrr.query_rank`): the rank of the ground truth
        is 1 + the number of strictly better candidates + the number of
        tied candidates at earlier positions, which is exactly what
        :func:`~repro.core.prediction.rank_descending`'s stable sort
        produces.  Candidate lists may differ per query and per target.
        """
        with self.tracer.span("query.rank_batch", n_queries=len(queries)):
            start = time.perf_counter()
            ranks = np.empty(len(queries), dtype=np.int64)
            by_target: dict[str, list[int]] = {}
            for i, query in enumerate(queries):
                by_target.setdefault(query.target, []).append(i)
            for target, indices in by_target.items():
                group = [queries[i] for i in indices]
                ranks[indices] = self._rank_group(target, group)
            self._record_batch(
                op="rank_batch",
                target="+".join(sorted(by_target)),
                n_queries=len(queries),
                seconds=time.perf_counter() - start,
                modalities={
                    "time": sum(1 for q in queries if q.time is not None),
                    "location": sum(
                        1 for q in queries if q.location is not None
                    ),
                    "word": sum(1 for q in queries if q.words is not None),
                },
            )
        return ranks

    def _record_batch(
        self,
        *,
        op: str,
        target: str,
        n_queries: int,
        seconds: float,
        modalities: dict[str, int],
    ) -> None:
        """Record one batch's wall time; log it when slower than threshold."""
        self.metrics.histogram("query.batch_seconds").observe(seconds)
        threshold = self.slow_query_threshold
        if threshold is not None and seconds > threshold:
            self.metrics.counter("query.slow_batches").inc()
            entry = {
                "op": op,
                "target": target,
                "n_queries": int(n_queries),
                "seconds": round(seconds, 6),
                "per_query_ms": round(
                    seconds * 1e3 / max(1, n_queries), 4
                ),
                "modalities": modalities,
            }
            self.slow_queries.append(entry)
            self.logger.warning("query.slow_batch", **entry)

    def _rank_group(self, target: str, queries: Sequence) -> np.ndarray:
        """Truth ranks for queries sharing one target modality."""
        with self.metrics.time("query.embed"):
            query_mat = normalize_rows(
                self.query_matrix(
                    times=[q.time for q in queries],
                    locations=[q.location for q in queries],
                    words=[q.words for q in queries],
                )
            )
            counts = np.asarray(
                [len(q.candidates) for q in queries], dtype=np.int64
            )
            flat_candidates = [c for q in queries for c in q.candidates]
            cand_mat = normalize_rows(
                self.candidate_matrix(target, flat_candidates)
            )
        with self.metrics.time("query.score"), self.tracer.span(
            "query.score", target=target
        ):
            score_start = time.perf_counter()
            scores = np.einsum(
                "nd,nd->n", cand_mat, np.repeat(query_mat, counts, axis=0)
            )
            starts = np.concatenate(([0], np.cumsum(counts[:-1])))
            truth_pos = np.asarray(
                [q.truth_index for q in queries], dtype=np.int64
            )
            truth_scores = scores[starts + truth_pos]
            expanded_truth = np.repeat(truth_scores, counts)
            position = np.arange(scores.shape[0]) - np.repeat(starts, counts)
            beats = (scores > expanded_truth) | (
                (scores == expanded_truth)
                & (position < np.repeat(truth_pos, counts))
            )
            ranks = 1 + np.add.reduceat(beats.astype(np.int64), starts)
            self._observe_stage("score", time.perf_counter() - score_start)
        self.metrics.counter("query.queries").inc(len(queries))
        return ranks

    # ---------------------------------------------------------- metric level

    def mean_reciprocal_rank(self, queries: Sequence) -> float:
        """Batched MRR (Eq. 15) over ``PredictionQuery`` objects."""
        if not len(queries):
            raise ValueError("queries must be non-empty")
        return float(np.mean(1.0 / self.rank_batch(queries)))

    def hits_at_k(self, queries: Sequence, k: int = 1) -> float:
        """Batched fraction of queries with the truth in the top ``k``."""
        if not len(queries):
            raise ValueError("queries must be non-empty")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return float(np.mean(self.rank_batch(queries) <= k))
