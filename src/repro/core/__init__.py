"""ACTOR core: config, meta-graphs, hierarchical embedding, prediction."""

from repro.core.actor import Actor
from repro.core.config import ActorConfig
from repro.core.drift import (
    DriftWatchdog,
    EwmaZScore,
    make_probe_queries,
    population_stability_index,
)
from repro.core.meta_graph import (
    ALL_META_GRAPHS,
    INTER_EDGE_TYPES,
    INTER_META_GRAPHS,
    INTRA_EDGE_TYPES,
    M0,
    MetaGraph,
    count_inter_instances,
)
from repro.core.neighbor import (
    NeighborResult,
    spatial_query,
    temporal_query,
    textual_query,
)
from repro.core.prediction import (
    GraphEmbeddingModel,
    ModalityCache,
    cosine_similarities,
    normalize_rows,
    rank_descending,
    top_k,
)
from repro.core.query_engine import QueryEngine
from repro.core.serialize import (
    BundleFormatError,
    QueryModel,
    load_bundle,
    load_online_checkpoint,
    save_bundle,
    save_online_checkpoint,
)
from repro.core.streaming import OnlineActor, RecencyBuffer

__all__ = [
    "Actor",
    "ActorConfig",
    "MetaGraph",
    "M0",
    "ALL_META_GRAPHS",
    "INTER_META_GRAPHS",
    "INTER_EDGE_TYPES",
    "INTRA_EDGE_TYPES",
    "count_inter_instances",
    "GraphEmbeddingModel",
    "ModalityCache",
    "QueryEngine",
    "DriftWatchdog",
    "EwmaZScore",
    "population_stability_index",
    "make_probe_queries",
    "cosine_similarities",
    "normalize_rows",
    "rank_descending",
    "top_k",
    "OnlineActor",
    "QueryModel",
    "BundleFormatError",
    "save_bundle",
    "load_bundle",
    "save_online_checkpoint",
    "load_online_checkpoint",
    "RecencyBuffer",
    "NeighborResult",
    "spatial_query",
    "temporal_query",
    "textual_query",
]
