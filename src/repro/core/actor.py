"""The ACTOR model facade — Algorithm 1 end to end.

    from repro import Actor, ActorConfig, generate_dataset

    data = generate_dataset("utgeo2011", n_records=8000, seed=7)
    model = Actor(ActorConfig(dim=64, epochs=20)).fit(data.train)
    scores = model.score_candidates(
        target="location", candidates=[...], time=21.5, words=["harbor_00"]
    )

``fit`` runs the four stages of the paper:

1. hotspot detection (mean shift on locations and times-of-day);
2. graph construction (activity graph + user interaction graph);
3. hierarchical initialization (LINE on the interaction graph, Section
   5.2.1) — skipped when ``use_inter`` / ``init_from_users`` are off or the
   corpus has no mentions;
4. alternating meta-graph SGNS training (Section 5.2.2-5.2.3).

The ablations of Table 4 are just configs: ``ActorConfig(use_inter=False)``
is *ACTOR w/o inter* and ``ActorConfig(use_intra_bow=False)`` is *ACTOR w/o
intra*.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path

import numpy as np

from repro.core.config import ActorConfig
from repro.core.hierarchical import initialize_from_users, random_init
from repro.core.prediction import GraphEmbeddingModel
from repro.core.trainer import ActorTrainer
from repro.data.records import Corpus
from repro.data.text import Vocabulary
from repro.embedding.line import LineEmbedding
from repro.graphs.builder import GraphBuilder
from repro.hotspots.detector import HotspotDetector
from repro.storage import make_store
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.tracing import NULL_TRACER

__all__ = ["Actor"]


class Actor(GraphEmbeddingModel):
    """Hierarchical cross-modal embedding model (the paper's contribution).

    Parameters
    ----------
    config:
        Hyper-parameters; defaults are laptop-scaled versions of the
        paper's Section 6.1.3 settings.
    """

    name = "ACTOR"
    supports_time = True

    def __init__(self, config: ActorConfig | None = None) -> None:
        self.config = config or ActorConfig()
        self.user_embeddings: np.ndarray | None = None
        self.trainer: ActorTrainer | None = None
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    def fit(
        self, corpus: Corpus, *, detector=None, metrics=None, tracer=None
    ) -> "Actor":
        """Run hotspot detection, graph building, initialization, training.

        Parameters
        ----------
        corpus:
            Training records.
        detector:
            Optional discretization front-end replacing the default
            mean-shift :class:`HotspotDetector` — e.g. a
            :class:`~repro.hotspots.grid.GridDetector` for the
            discretization ablation.  Must expose the detector interface
            (``fit`` / ``assign_*`` / ``*_hotspots``).
        metrics:
            Optional :class:`~repro.utils.metrics.MetricsRegistry`.
            Forwarded to the trainer (per-epoch loss/time under
            ``train.*``), the hotspot detector (``hotspot.*``) and used
            for stage timers (``fit.build_graphs`` etc.) plus graph-size
            gauges (``graph.*``).
        tracer:
            Optional :class:`~repro.utils.tracing.Tracer`.  Emits an
            ``actor.fit`` span with ``actor.build_graphs`` /
            ``actor.line_pretrain`` / ``actor.init`` / ``actor.train``
            children (hotspot detection nests under the graph-build
            span).  Detached again before :meth:`fit` returns so pickled
            models never embed span forests.
        """
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        build_rng, line_rng, init_rng, train_rng = spawn_rng(rng, 4)
        del build_rng  # graph construction is deterministic
        tracer = tracer if tracer is not None else NULL_TRACER

        if detector is None:
            detector = HotspotDetector(
                spatial_bandwidth=cfg.spatial_bandwidth,
                temporal_bandwidth=cfg.temporal_bandwidth,
                min_support=cfg.min_hotspot_support,
            )
        # Attach the observability sinks to the detector (duck-typed so a
        # GridDetector ablation without the attributes still works).
        if hasattr(detector, "metrics"):
            detector.metrics = metrics
        if hasattr(detector, "tracer"):
            detector.tracer = tracer
        vocab = Vocabulary(
            min_count=cfg.vocab_min_count, max_size=cfg.vocab_max_size
        )
        builder = GraphBuilder(
            detector=detector,
            vocab=vocab,
            link_mentions=cfg.link_mentions,
            mention_link_weight=cfg.mention_link_weight,
            include_users=True,
        )
        with tracer.span("actor.fit", records=len(corpus)) as fit_span:
            with tracer.span("actor.build_graphs") as build_span:
                build_start = time.perf_counter()
                self.built = builder.build(corpus)
                build_s = time.perf_counter() - build_start
                build_span.set(
                    nodes=self.built.activity.n_nodes,
                    edges=self.built.activity.n_edges,
                )
            if metrics is not None:
                metrics.timer("fit.build_graphs").observe(build_s)
                metrics.gauge("graph.activity_nodes").set(
                    self.built.activity.n_nodes
                )
                metrics.gauge("graph.activity_edges").set(
                    self.built.activity.n_edges
                )
                metrics.gauge("graph.interaction_edges").set(
                    self.built.interaction.n_edges
                )

            # Stage 3: LINE pretraining of the user interaction graph.
            # Only meaningful when the corpus has interaction edges *and*
            # the hierarchical machinery is enabled.
            pretrain = (
                cfg.use_inter
                and cfg.init_from_users
                and self.built.interaction.n_edges > 0
            )
            init_start = time.perf_counter()
            if pretrain:
                with tracer.span("actor.line_pretrain"):
                    line = LineEmbedding(
                        cfg.dim,
                        order=2,
                        negatives=cfg.line_negatives,
                        lr=cfg.lr,
                        batch_size=cfg.batch_size,
                    ).fit(
                        self.built.interaction.edge_set,
                        self.built.interaction.n_users,
                        n_samples=cfg.line_samples,
                        seed=line_rng,
                    )
                    self.user_embeddings = line.embeddings
                with tracer.span("actor.init"):
                    center, context = initialize_from_users(
                        self.built.activity,
                        self.built.interaction,
                        self.user_embeddings,
                        cfg.dim,
                        seed=init_rng,
                        noise=cfg.init_noise,
                    )
            else:
                with tracer.span("actor.init"):
                    center, context = random_init(
                        self.built.activity.n_nodes, cfg.dim, init_rng
                    )
            init_s = time.perf_counter() - init_start
            if metrics is not None:
                metrics.timer("fit.initialize").observe(init_s)

            # Install (or refresh) the embedding storage.  A refit reuses
            # the existing store so its version counter keeps moving
            # monotonically — downstream caches can never mistake the new
            # matrices for the old ones.
            store = self.__dict__.get("_store")
            if store is None:
                store = make_store(
                    cfg.store_backend,
                    directory=cfg.store_dir,
                    n_shards=cfg.store_shards,
                )
                self.adopt_store(store)
            store.set_matrix("center", center)
            store.set_matrix("context", context)
            self.trainer = ActorTrainer(
                self.built, cfg, store=store, metrics=metrics,
                tracer=tracer,
            )
            with tracer.span("actor.train"):
                train_start = time.perf_counter()
                self.trainer.train(seed=train_rng)
                train_s = time.perf_counter() - train_start
            if metrics is not None:
                metrics.timer("fit.train").observe(train_s)
            fit_span.set(pretrained=bool(pretrain))
        # Detach the tracer before the model can be pickled: spans hold a
        # growing forest, and save() serializes trainer + detector.
        if hasattr(detector, "tracer"):
            detector.tracer = NULL_TRACER
        self.trainer.tracer = NULL_TRACER
        self._fitted = True
        return self

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path) -> None:
        """Pickle the fitted model to ``path``.

        The file embeds the full graph/hotspot/vocabulary state, so a loaded
        model answers queries identically.  Standard pickle caveats apply
        (only load files you wrote).
        """
        if not self._fitted:
            raise RuntimeError("cannot save an unfitted model")
        path = Path(path)
        with path.open("wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str | Path) -> "Actor":
        """Load a model previously written by :meth:`save`."""
        path = Path(path)
        with path.open("rb") as handle:
            model = pickle.load(handle)
        if not isinstance(model, cls):
            raise TypeError(f"{path} does not contain an Actor model")
        return model
