"""Online / streaming ACTOR: recency-aware continued training.

The paper's own follow-up work (ReAct, reference [8]: "processes continuous
data streams and reveals recency-aware spatiotemporal activities") motivates
an online variant.  :class:`OnlineActor` warm-starts from a fully trained
:class:`~repro.core.actor.Actor` and then consumes new records in batches:

1. each new record is discretized with the *frozen* hotspot detector
   (hotspots are not re-detected online — the documented ReAct-style
   simplification) and its keywords are resolved against a *growable*
   vocabulary;
2. unseen words and users get fresh embedding rows (random init);
3. the record's co-occurrence and user edges enter a **recency buffer**
   whose sampling weights decay exponentially with age
   (``weight * 0.5^(age / half_life)``), so recent activity dominates;
4. a burst of SGNS steps over the buffer updates the embeddings in place.

The full query surface (prediction, neighbor search) keeps working
throughout, including for the streamed-in units.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.core.actor import Actor
from repro.core.prediction import GraphEmbeddingModel
from repro.data.records import Record
from repro.embedding.alias import AliasTable
from repro.embedding.sgns import sgns_step
from repro.graphs.types import NodeType
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["RecencyBuffer", "OnlineActor"]


class RecencyBuffer:
    """Edge buffer with exponential recency decay.

    Stores (src, dst, weight, born) tuples; sampling probability is
    ``weight * 0.5^((clock - born) / half_life)``.  The alias table is
    rebuilt lazily when the buffer changed since the last sample call —
    append-heavy workloads pay O(n) rebuild once per training burst.

    Parameters
    ----------
    half_life:
        Age (in clock ticks — one tick per ingested batch) at which an
        edge's sampling weight halves.
    max_size:
        Oldest edges are evicted beyond this capacity.
    """

    def __init__(self, *, half_life: float = 10.0, max_size: int = 200_000) -> None:
        check_positive("half_life", half_life)
        check_positive("max_size", max_size)
        self.half_life = float(half_life)
        self.max_size = int(max_size)
        self._src: list[int] = []
        self._dst: list[int] = []
        self._weight: list[float] = []
        self._born: list[int] = []
        self.clock = 0
        self._table: AliasTable | None = None
        self._table_clock = -1

    def __len__(self) -> int:
        return len(self._src)

    def tick(self) -> None:
        """Advance the clock (call once per ingested batch)."""
        self.clock += 1

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Buffer one undirected edge with the current clock as birth time."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._src.append(int(src))
        self._dst.append(int(dst))
        self._weight.append(float(weight))
        self._born.append(self.clock)
        self._table = None
        if len(self._src) > self.max_size:
            excess = len(self._src) - self.max_size
            del self._src[:excess]
            del self._dst[:excess]
            del self._weight[:excess]
            del self._born[:excess]

    def decayed_weights(self) -> np.ndarray:
        """Current sampling weights (recency decay applied)."""
        born = np.asarray(self._born, dtype=float)
        weight = np.asarray(self._weight, dtype=float)
        age = self.clock - born
        return weight * np.power(0.5, age / self.half_life)

    def sample(
        self, size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``size`` edges ∝ decayed weight; random orientation."""
        if not self._src:
            raise ValueError("buffer is empty")
        if self._table is None or self._table_clock != self.clock:
            self._table = AliasTable(np.maximum(self.decayed_weights(), 1e-12))
            self._table_clock = self.clock
        idx = self._table.sample(size, seed=rng)
        src = np.asarray(self._src, dtype=np.int64)[idx]
        dst = np.asarray(self._dst, dtype=np.int64)[idx]
        flip = rng.random(size) < 0.5
        return np.where(flip, dst, src), np.where(flip, src, dst)


class OnlineActor(GraphEmbeddingModel):
    """Streaming wrapper around a warm-started :class:`Actor`.

    Parameters
    ----------
    base:
        A fitted Actor; its embeddings are copied (the base model is not
        mutated) and then updated online.
    half_life:
        Recency half-life of the edge buffer, in ingested batches.
    online_lr:
        Learning rate for the online SGNS bursts.
    steps_per_batch:
        SGNS mini-batches run per :meth:`partial_fit` call.
    """

    def __init__(
        self,
        base: Actor,
        *,
        half_life: float = 10.0,
        online_lr: float = 0.01,
        steps_per_batch: int = 50,
        batch_size: int = 256,
        negatives: int = 2,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not base.is_fitted:
            raise ValueError("base Actor must be fitted before going online")
        check_positive("online_lr", online_lr)
        check_positive("steps_per_batch", steps_per_batch)
        self.built = base.built
        self.config = base.config
        self.center = np.array(base.center)      # private copies
        self.context = np.array(base.context)
        self.buffer = RecencyBuffer(half_life=half_life)
        self.online_lr = float(online_lr)
        self.steps_per_batch = int(steps_per_batch)
        self.batch_size = int(batch_size)
        self.negatives = int(negatives)
        self._rng = ensure_rng(seed)
        # Rows appended beyond the base graph's node count, keyed like
        # activity-graph handles.  The finalized base graph stays immutable.
        self._extra_nodes: dict[tuple[NodeType, Hashable], int] = {}
        self.n_ingested = 0

    # ------------------------------------------------------------- node space

    def _node_of(self, modality: str, value) -> int | None:
        node = super()._node_of(modality, value)
        if node is not None:
            return node
        node_type = {
            "word": NodeType.WORD,
            "user": NodeType.USER,
        }.get(modality)
        if node_type is None:
            return None
        return self._extra_nodes.get((node_type, value))

    def _get_or_create(self, node_type: NodeType, key: Hashable) -> int:
        """Resolve a unit to a row, appending a fresh row when unseen."""
        if self.built.activity.has_node(node_type, key):
            return self.built.activity.index_of(node_type, key)
        handle = (node_type, key)
        existing = self._extra_nodes.get(handle)
        if existing is not None:
            return existing
        row = self.center.shape[0]
        scale = 0.5 / self.dim
        self.center = np.vstack(
            [self.center, self._rng.uniform(-scale, scale, size=(1, self.dim))]
        )
        self.context = np.vstack(
            [self.context, self._rng.uniform(-scale, scale, size=(1, self.dim))]
        )
        self._extra_nodes[handle] = row
        if node_type is NodeType.WORD:
            self.built.vocab.add_word(key)
        return row

    def modality_vectors(self, modality: str):
        """Like the base method, but includes streamed-in extra units."""
        keys, matrix = super().modality_vectors(modality)
        node_type = {
            "time": NodeType.TIME,
            "location": NodeType.LOCATION,
            "word": NodeType.WORD,
            "user": NodeType.USER,
        }[modality]
        extra = [
            (key, row)
            for (t, key), row in self._extra_nodes.items()
            if t is node_type
        ]
        if extra:
            keys = keys + [key for key, _row in extra]
            matrix = np.vstack(
                [matrix, self.center[[row for _key, row in extra]]]
            )
        return keys, matrix

    # ------------------------------------------------------------- streaming

    def partial_fit(self, records: Iterable[Record]) -> "OnlineActor":
        """Ingest a batch of new records and run an online training burst."""
        detector = self.built.detector
        vocab = self.built.vocab
        count = 0
        for record in records:
            count += 1
            s_idx, t_idx = detector.assign_record(
                record.location, record.timestamp
            )
            t_node = self._get_or_create(NodeType.TIME, t_idx)
            l_node = self._get_or_create(NodeType.LOCATION, s_idx)
            word_nodes = []
            for word in record.words:
                if word in vocab or self._should_admit(word):
                    word_nodes.append(self._get_or_create(NodeType.WORD, word))
            self.buffer.add_edge(t_node, l_node)
            for w in word_nodes:
                self.buffer.add_edge(l_node, w)
                self.buffer.add_edge(w, t_node)
            distinct = list(dict.fromkeys(word_nodes))
            for i, w1 in enumerate(distinct):
                for w2 in distinct[i + 1 :]:
                    self.buffer.add_edge(w1, w2)
            linked = [record.user, *record.mentions]
            for name in dict.fromkeys(linked):
                u_node = self._get_or_create(NodeType.USER, name)
                self.buffer.add_edge(u_node, t_node)
                self.buffer.add_edge(u_node, l_node)
                for w in distinct:
                    self.buffer.add_edge(u_node, w)
        if count == 0:
            return self
        self.n_ingested += count
        self.buffer.tick()
        self._train_burst()
        return self

    def _should_admit(self, word: str) -> bool:
        """Whether an out-of-vocabulary word gets a fresh embedding row.

        Capped vocabularies refuse growth; everything else is admitted.
        """
        vocab = self.built.vocab
        return vocab.max_size is None or len(vocab) < vocab.max_size

    def _train_burst(self) -> None:
        """Run the online SGNS steps over the recency buffer."""
        if len(self.buffer) == 0:
            return
        n_rows = self.center.shape[0]
        for _ in range(self.steps_per_batch):
            src, dst = self.buffer.sample(self.batch_size, self._rng)
            # Negatives: uniform over all known rows — the buffer's node
            # population is small and shifting, so degree-based noise is
            # not meaningful online.
            neg = self._rng.integers(
                0, n_rows, size=(self.batch_size, self.negatives)
            )
            sgns_step(self.center, self.context, src, dst, neg, self.online_lr)
